//! Property test: policy (de)serialisation round-trips. A randomly
//! generated model renders to text, parses back, and re-renders to the
//! **identical** normalised text — so the ID-interned decision state is
//! fully reconstructible from the on-disk policy format.

use stacl_ids::prop::forall;
use stacl_ids::rng::SplitMix64;
use stacl_rbac::policy::{parse_policy, render_policy};
use stacl_rbac::{AccessPattern, HistoryScope, Permission, RbacModel};
use stacl_srac::parser::parse_constraint;
use stacl_temporal::BaseTimeScheme;

const PATTERNS: &[&str] = &["read:db:*", "exec:rsw:*", "*:*:*", "verify:mod:s1"];
const CONSTRAINTS: &[&str] = &[
    "count(0, 3, resource=db)",
    "count(1, 5, op=read)",
    "count(0, 7, server=s1)",
];
const SCHEMES: &[BaseTimeScheme] = &[BaseTimeScheme::WholeLifetime, BaseTimeScheme::CurrentServer];

fn random_model(rng: &mut SplitMix64) -> RbacModel {
    let mut m = RbacModel::new();
    let users = 1 + (rng.next_u64() % 4) as usize;
    let roles = 1 + (rng.next_u64() % 4) as usize;
    let perms = 1 + (rng.next_u64() % 5) as usize;
    for u in 0..users {
        m.add_user(format!("u{u}"));
    }
    for r in 0..roles {
        m.add_role(format!("r{r}"));
    }
    // Acyclic inheritance: seniors only point at higher-numbered juniors.
    for senior in 0..roles {
        for junior in (senior + 1)..roles {
            if rng.next_u64().is_multiple_of(4) {
                let _ = m.add_inheritance(&format!("r{senior}"), &format!("r{junior}"));
            }
        }
    }
    for p in 0..perms {
        let pattern = PATTERNS[(rng.next_u64() % PATTERNS.len() as u64) as usize];
        let mut perm = Permission::new(format!("p{p}"), AccessPattern::parse(pattern).unwrap());
        if rng.next_u64().is_multiple_of(2) {
            let c = CONSTRAINTS[(rng.next_u64() % CONSTRAINTS.len() as u64) as usize];
            perm = perm.with_spatial(parse_constraint(c).unwrap());
        }
        if rng.next_u64().is_multiple_of(2) {
            // Integer-valued durations render and re-parse exactly.
            let dur = (rng.next_u64() % 10_000) as f64;
            let scheme = SCHEMES[(rng.next_u64() % SCHEMES.len() as u64) as usize];
            perm = perm.with_validity(dur, scheme);
        }
        if rng.next_u64().is_multiple_of(3) {
            perm = perm.with_scope(HistoryScope::Team);
        }
        if rng.next_u64().is_multiple_of(3) {
            perm = perm.with_class(format!("class-{}", rng.next_u64() % 3));
        }
        m.add_permission(perm).unwrap();
        let role = rng.next_u64() % roles as u64;
        m.assign_permission(&format!("r{role}"), &format!("p{p}"))
            .unwrap();
    }
    for u in 0..users {
        let role = rng.next_u64() % roles as u64;
        m.assign_user(&format!("u{u}"), &format!("r{role}"))
            .unwrap();
    }
    m
}

#[test]
fn render_parse_render_is_identity() {
    forall("render_parse_render_is_identity", 0x4a0, 128, |rng| {
        let model = random_model(rng);
        let text = render_policy(&model);
        let reparsed = parse_policy(&text)
            .unwrap_or_else(|e| panic!("rendered policy must parse: {e}\n{text}"));
        let text2 = render_policy(&reparsed);
        assert_eq!(text, text2, "normalised policy text must be a fixpoint");
    });
}

#[test]
fn reparsed_model_answers_queries_identically() {
    forall(
        "reparsed_model_answers_queries_identically",
        0x51c,
        64,
        |rng| {
            let model = random_model(rng);
            let reparsed = parse_policy(&render_policy(&model)).unwrap();
            let users: Vec<_> = model.all_users().collect();
            let roles: Vec<_> = model.all_roles().collect();
            assert_eq!(users, reparsed.all_users().collect::<Vec<_>>());
            assert_eq!(roles, reparsed.all_roles().collect::<Vec<_>>());
            for u in &users {
                assert_eq!(model.roles_of(u), reparsed.roles_of(u), "roles of {u}");
            }
            for r in &roles {
                assert_eq!(
                    model.permissions_of_role(r),
                    reparsed.permissions_of_role(r),
                    "permissions of {r}"
                );
                for r2 in &roles {
                    assert_eq!(model.inherits(r, r2), reparsed.inherits(r, r2));
                }
            }
            for p in model.permissions() {
                let q = reparsed.permission(&p.name).expect("permission survives");
                assert_eq!(p, q, "permission attributes survive the round-trip");
            }
        },
    );
}
