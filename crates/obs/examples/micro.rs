//! Microbenchmark of the `stacl-obs` record-path primitives, used to
//! budget the E13 telemetry-overhead ablation (EXPERIMENTS.md):
//!
//! ```sh
//! cargo run --release -p stacl-obs --example micro
//! ```
//!
//! Reference numbers from the E13 host (single-core container):
//! `count()` ~2 ns (plain load + store on an exclusive stripe) vs
//! ~0.4 ns disabled; the sampled decide-timer pair ~5 ns amortised;
//! two `Instant::now()` reads ~70 ns (why latency is sampled 1 in
//! [`stacl_obs::SAMPLE_EVERY`] rather than measured per decision).

use std::time::Instant;

fn main() {
    let n = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..n {
        stacl_obs::count(stacl_obs::Counter::VerdictGranted);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("count():         {per:.2} ns/op");

    stacl_obs::set_telemetry(false);
    let t = Instant::now();
    for _ in 0..n {
        stacl_obs::count(stacl_obs::Counter::VerdictGranted);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("count() [off]:   {per:.2} ns/op");
    stacl_obs::set_telemetry(true);

    let t = Instant::now();
    for _ in 0..n {
        let s = stacl_obs::decide_timer();
        stacl_obs::observe_decide(s);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!(
        "timer pair:      {per:.2} ns/op (amortised, 1/{} sampled)",
        stacl_obs::SAMPLE_EVERY
    );

    let m = 2_000_000u64;
    let t = Instant::now();
    let mut acc = 0u128;
    for _ in 0..m {
        acc = acc.wrapping_add(Instant::now().elapsed().as_nanos());
    }
    let per = t.elapsed().as_nanos() as f64 / m as f64;
    println!("2x Instant::now: {per:.2} ns  (sink {acc})");
    println!(
        "recorded:        {} granted",
        stacl_obs::snapshot().counter(stacl_obs::Counter::VerdictGranted)
    );
}
