//! `stacl-obs` — allocation-free telemetry for the decision path.
//!
//! The decision core (DESIGN.md §8) is a layered fast path: per-permission
//! DFA cursors, a constraint-compilation cache, a read-mostly permission
//! snapshot and a sharded proof store. This crate makes every verdict
//! attributable to a counted cause without perturbing the thing it measures:
//!
//! * **Single-writer striped counters.** A fixed set of [`Counter`]s is kept
//!   in cache-line-aligned stripes of `AtomicU64`s. Each thread claims an
//!   *exclusive* stripe from a bitmap on first use and releases it on thread
//!   exit, so the record path is a plain relaxed load + store — no
//!   `lock`-prefixed read-modify-write, roughly 3× cheaper per event. Threads
//!   beyond the stripe pool (more than [`EXCLUSIVE_STRIPES`] alive at once)
//!   fall back to `fetch_add` on a shared overflow stripe. Reads
//!   ([`snapshot`]) sum across stripes.
//! * **Fixed log₂-bucket latency histograms** for `decide` (sampled 1 in
//!   [`SAMPLE_EVERY`] to keep clock reads off the common path) and
//!   `decide_batch` (every batch, plus a batch-size distribution).
//! * **No allocation on the steady-state record path** — only plain stores
//!   to static storage. The one-time stripe claim on a thread's *first*
//!   event registers a TLS destructor (which may allocate once per thread);
//!   after that the grant path is zero-allocation with telemetry enabled
//!   (pinned by `naplet/tests/alloc_free.rs`).
//!
//! Ablation: [`set_telemetry`]`(false)` turns every record function into a
//! single relaxed load; compiling with the `off` feature removes even that.
//! This crate deliberately has **zero dependencies** so that every layer from
//! `srac` upward can record into it.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// One decide-latency sample is recorded for every `SAMPLE_EVERY` calls to
/// [`decide_timer`]. Sampling keeps the two `Instant::now()` clock reads off
/// the common grant path; counters remain exact.
pub const SAMPLE_EVERY: u64 = 16;

/// Number of exclusive (single-writer) counter stripes. The registry holds
/// one more: a shared overflow stripe for threads that start while all
/// exclusive stripes are claimed.
pub const EXCLUSIVE_STRIPES: usize = 64;

/// Index of the shared overflow stripe (the last registry slot).
const SHARED: usize = EXCLUSIVE_STRIPES;

/// Number of log₂ histogram buckets; bucket `i` holds values in
/// `[2^i, 2^(i+1))`, with the last bucket absorbing everything larger.
pub const BUCKETS: usize = 32;

/// Every event the decision path counts. Labels (used as JSON keys) are
/// stable: dashboards and the CI schema check key off them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Verdict: access granted.
    VerdictGranted = 0,
    /// Verdict: denied — no role grants the permission (or guard recovered
    /// from an internal error and denied fail-safe).
    VerdictDeniedNoPermission,
    /// Verdict: denied — spatial constraint not satisfied by the proof history.
    VerdictDeniedSpatial,
    /// Verdict: denied — temporal validity (or clock regression) failure.
    VerdictDeniedTemporal,
    /// Verdict: denied — request names an unknown object/server.
    VerdictDeniedUnknownTarget,
    /// Verdict: denied fail-safe — the object's custody is in flight,
    /// resident elsewhere, or the coordination layer could not answer.
    VerdictDeniedCoordination,
    /// Cursor answered the spatial check in O(|residual|) (DESIGN.md §8 fast path).
    CursorFastPathHit,
    /// No cursor existed yet for this (object, permission); built from scratch.
    CursorColdStart,
    /// Decline rule 1: cursor's interning-table version no longer matches.
    CursorDeclineTableVersion,
    /// Decline rule 2: cursor consumed more proofs than the store's watermark
    /// (object shard was replaced or truncated).
    CursorDeclineWatermark,
    /// Decline rule 3: a proof's access has no symbol in the cursor's
    /// alphabet, or the residual check could not answer.
    CursorDeclineUnknownSymbol,
    /// Decline rule 4: security-model generation changed since cursor build.
    CursorDeclineGeneration,
    /// Decline rule 5: team-scoped history is always checked from scratch.
    CursorDeclineTeamScope,
    /// Constraint-compilation cache hit (`ConstraintCache::get_or_compile`).
    CacheHit,
    /// Constraint-compilation cache miss (DFA compiled and inserted).
    CacheMiss,
    /// Read-mostly `Snapshot<PermTable>` rebuilt after a model change.
    SnapshotRebuild,
    /// A proof was appended to an object shard, advancing its watermark.
    WatermarkAdvance,
    /// A timeline event arrived with a timestamp earlier than the latest
    /// recorded one (per-server clock skew); rejected instead of panicking.
    ClockRegression,
    /// A panicking per-request decision inside `decide_batch` was caught and
    /// converted into a fail-safe denial.
    BatchPanicRecovered,
    /// A wire frame was sent (daemon or client side).
    NetFrameTx,
    /// A wire frame was received.
    NetFrameRx,
    /// Payload bytes sent over the wire (length prefixes excluded).
    NetBytesTx,
    /// Payload bytes received over the wire (length prefixes excluded).
    NetBytesRx,
    /// A failed handoff attempt was retried after backoff.
    NetRetry,
    /// A custody handoff was pulled from a peer and applied.
    NetHandoffApplied,
    /// A custody handoff gave up after exhausting its retry budget.
    NetHandoffFailed,
    /// A client could not reach a daemon and synthesised a fail-safe
    /// `DeniedCoordination` verdict locally.
    NetFailsafeDenial,
    /// A policy epoch was prepared (tables and automata built off the hot
    /// path, awaiting activation).
    EpochPrepare,
    /// A prepared policy epoch was activated (snapshot flipped).
    EpochActivate,
    /// A coalition member detected an epoch desynchronisation (activate
    /// without a matching prepare, or a stale proposal) and fail-safed.
    EpochDesync,
    /// An entry was appended to the hash-chained audit ledger.
    LedgerAppend,
    /// The daemon event loop woke from readiness polling with work to do
    /// (frames per wakeup = `net.frame-rx` / `net.wakeup`).
    NetWakeup,
    /// The event loop flushed a connection's coalesced write buffer (one
    /// flush may carry many reply frames; coalescing factor =
    /// `net.frame-tx` / `net.write-flush`).
    NetWriteFlush,
    /// A connection stalled mid-frame past the partial-frame deadline and
    /// was evicted by the event loop (slow-loris defence).
    NetPartialEviction,
    /// A freshly compiled constraint automaton was structurally identical
    /// to a cached one and got pointer-shared instead of stored twice
    /// (`ConstraintCache` hash-consing).
    CacheHashConsHit,
    /// A cursor consulted with a symbol outside its compressed-alphabet
    /// class map (interned after the cursor was built); the cursor
    /// declined rather than guess. Diagnostic sub-cause of
    /// `cursor.decline.unknown-symbol`, not a sixth decline rule.
    CursorOutOfClass,
    /// One proof event advanced a whole bank of lockstep cursor leaves in
    /// a single structure-of-arrays sweep (`CursorBank::advance_synced`).
    CursorSoaBatchAdvance,
    /// A helper-thread handoff completion arrived after its originating
    /// connection died; the imported custody was re-parked on the event
    /// loop instead of being silently discarded.
    NetOrphanedCompletion,
    /// A decide reached a member that is not the object's rendezvous home
    /// and was answered with a `Redirect` frame instead of a verdict.
    PlacementRedirect,
    /// A custody rebalance drain moved one object toward its new
    /// rendezvous home after a membership change.
    PlacementRebalance,
    /// A custody claim was rejected because the placement ring homes the
    /// object on a different member (racing-arrival double-claim defence).
    PlacementClaimRejected,
    /// One execution proof was folded out of a shard's live vector into
    /// its sealed prefix summary (`ProofStore::compact_prefix`).
    ProofCompaction,
    /// An attribute-policy spatial rule (CIDR allow/deny set) failed to
    /// lower — the permission gets a fail-safe always-deny constraint.
    AbacLowerErrorSpatial,
    /// An attribute-policy temporal rule (cron window + duration) failed
    /// to lower — the permission gets a fail-safe zero validity budget.
    AbacLowerErrorTemporal,
}

/// Number of distinct counters.
pub const COUNTERS: usize = 44;

impl Counter {
    /// All counters, in declaration order (matches the `[u64; COUNTERS]`
    /// layout of [`MetricsSnapshot::counters`]).
    pub const ALL: [Counter; COUNTERS] = [
        Counter::VerdictGranted,
        Counter::VerdictDeniedNoPermission,
        Counter::VerdictDeniedSpatial,
        Counter::VerdictDeniedTemporal,
        Counter::VerdictDeniedUnknownTarget,
        Counter::VerdictDeniedCoordination,
        Counter::CursorFastPathHit,
        Counter::CursorColdStart,
        Counter::CursorDeclineTableVersion,
        Counter::CursorDeclineWatermark,
        Counter::CursorDeclineUnknownSymbol,
        Counter::CursorDeclineGeneration,
        Counter::CursorDeclineTeamScope,
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::SnapshotRebuild,
        Counter::WatermarkAdvance,
        Counter::ClockRegression,
        Counter::BatchPanicRecovered,
        Counter::NetFrameTx,
        Counter::NetFrameRx,
        Counter::NetBytesTx,
        Counter::NetBytesRx,
        Counter::NetRetry,
        Counter::NetHandoffApplied,
        Counter::NetHandoffFailed,
        Counter::NetFailsafeDenial,
        Counter::EpochPrepare,
        Counter::EpochActivate,
        Counter::EpochDesync,
        Counter::LedgerAppend,
        Counter::NetWakeup,
        Counter::NetWriteFlush,
        Counter::NetPartialEviction,
        Counter::CacheHashConsHit,
        Counter::CursorOutOfClass,
        Counter::CursorSoaBatchAdvance,
        Counter::NetOrphanedCompletion,
        Counter::PlacementRedirect,
        Counter::PlacementRebalance,
        Counter::PlacementClaimRejected,
        Counter::ProofCompaction,
        Counter::AbacLowerErrorSpatial,
        Counter::AbacLowerErrorTemporal,
    ];

    /// The five cursor decline reasons of DESIGN.md §8, in rule order.
    pub const DECLINES: [Counter; 5] = [
        Counter::CursorDeclineTableVersion,
        Counter::CursorDeclineWatermark,
        Counter::CursorDeclineUnknownSymbol,
        Counter::CursorDeclineGeneration,
        Counter::CursorDeclineTeamScope,
    ];

    /// The verdict counters, one per `DecisionKind`.
    pub const VERDICTS: [Counter; 6] = [
        Counter::VerdictGranted,
        Counter::VerdictDeniedNoPermission,
        Counter::VerdictDeniedSpatial,
        Counter::VerdictDeniedTemporal,
        Counter::VerdictDeniedUnknownTarget,
        Counter::VerdictDeniedCoordination,
    ];

    /// Stable label used as the JSON key for this counter.
    pub const fn label(self) -> &'static str {
        match self {
            Counter::VerdictGranted => "verdict.granted",
            Counter::VerdictDeniedNoPermission => "verdict.denied-no-permission",
            Counter::VerdictDeniedSpatial => "verdict.denied-spatial",
            Counter::VerdictDeniedTemporal => "verdict.denied-temporal",
            Counter::VerdictDeniedUnknownTarget => "verdict.denied-unknown-target",
            Counter::VerdictDeniedCoordination => "verdict.denied-coordination",
            Counter::CursorFastPathHit => "cursor.fast-path-hit",
            Counter::CursorColdStart => "cursor.cold-start",
            Counter::CursorDeclineTableVersion => "cursor.decline.table-version",
            Counter::CursorDeclineWatermark => "cursor.decline.watermark",
            Counter::CursorDeclineUnknownSymbol => "cursor.decline.unknown-symbol",
            Counter::CursorDeclineGeneration => "cursor.decline.generation",
            Counter::CursorDeclineTeamScope => "cursor.decline.team-scope",
            Counter::CacheHit => "cache.hit",
            Counter::CacheMiss => "cache.miss",
            Counter::SnapshotRebuild => "snapshot.rebuild",
            Counter::WatermarkAdvance => "proof.watermark-advance",
            Counter::ClockRegression => "clock.regression",
            Counter::BatchPanicRecovered => "batch.panic-recovered",
            Counter::NetFrameTx => "net.frame-tx",
            Counter::NetFrameRx => "net.frame-rx",
            Counter::NetBytesTx => "net.bytes-tx",
            Counter::NetBytesRx => "net.bytes-rx",
            Counter::NetRetry => "net.retry",
            Counter::NetHandoffApplied => "net.handoff-applied",
            Counter::NetHandoffFailed => "net.handoff-failed",
            Counter::NetFailsafeDenial => "net.failsafe-denial",
            Counter::EpochPrepare => "epoch.prepare",
            Counter::EpochActivate => "epoch.activate",
            Counter::EpochDesync => "epoch.desync",
            Counter::LedgerAppend => "ledger.append",
            Counter::NetWakeup => "net.wakeup",
            Counter::NetWriteFlush => "net.write-flush",
            Counter::NetPartialEviction => "net.partial-eviction",
            Counter::CacheHashConsHit => "cache.hash-cons-hit",
            Counter::CursorOutOfClass => "cursor.out-of-class",
            Counter::CursorSoaBatchAdvance => "cursor.soa-batch-advance",
            Counter::NetOrphanedCompletion => "net.orphaned-completion",
            Counter::PlacementRedirect => "placement.redirect",
            Counter::PlacementRebalance => "placement.rebalance",
            Counter::PlacementClaimRejected => "placement.claim-rejected",
            Counter::ProofCompaction => "proof.compaction",
            Counter::AbacLowerErrorSpatial => "abac.lower-error.spatial",
            Counter::AbacLowerErrorTemporal => "abac.lower-error.temporal",
        }
    }
}

/// One stripe of telemetry storage, cache-line aligned so stripes owned by
/// different threads never share a line.
#[repr(align(128))]
struct Stripe {
    counters: [AtomicU64; COUNTERS],
    decide_ns: [AtomicU64; BUCKETS],
    batch_ns: [AtomicU64; BUCKETS],
    batch_size: [AtomicU64; BUCKETS],
    handoff_ns: [AtomicU64; BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Stripe {
    #[allow(clippy::declare_interior_mutable_const)]
    const NEW: Stripe = Stripe {
        counters: [ZERO; COUNTERS],
        decide_ns: [ZERO; BUCKETS],
        batch_ns: [ZERO; BUCKETS],
        batch_size: [ZERO; BUCKETS],
        handoff_ns: [ZERO; BUCKETS],
    };
}

static REGISTRY: [Stripe; EXCLUSIVE_STRIPES + 1] = [Stripe::NEW; EXCLUSIVE_STRIPES + 1];
static ENABLED: AtomicBool = AtomicBool::new(true);
/// Bitmap of claimed exclusive stripes (bit i set = stripe i has an owner).
static CLAIMED: AtomicU64 = AtomicU64::new(0);

/// Claim the lowest free exclusive stripe, or [`SHARED`] if the pool is
/// exhausted. `Acquire` pairs with the `Release` in [`release_stripe`] so a
/// new owner observes the previous owner's plain (non-RMW) stores.
fn claim_stripe() -> usize {
    loop {
        let cur = CLAIMED.load(Ordering::Relaxed);
        if cur == u64::MAX {
            return SHARED;
        }
        let bit = (!cur).trailing_zeros() as usize;
        if CLAIMED
            .compare_exchange_weak(cur, cur | (1 << bit), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return bit;
        }
    }
}

fn release_stripe(idx: usize) {
    if idx < EXCLUSIVE_STRIPES {
        CLAIMED.fetch_and(!(1u64 << idx), Ordering::Release);
    }
}

/// Owns this thread's exclusive stripe; returns it to the pool on thread
/// exit (counts are cumulative — the stripe is NOT zeroed on release).
struct StripeGuard(usize);

impl Drop for StripeGuard {
    fn drop(&mut self) {
        release_stripe(self.0);
    }
}

thread_local! {
    // Hot-path cache of the claimed stripe index. usize::MAX = "unassigned";
    // const-initialised so steady-state access performs no lazy
    // initialisation (and therefore no allocation).
    static STRIPE_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    // Lazily claimed on the first recorded event of each thread (this one
    // registers a TLS destructor, which may allocate — once per thread,
    // never on the steady-state record path).
    static STRIPE_GUARD: StripeGuard = StripeGuard(claim_stripe());
}

/// This thread's stripe index, claimed on first use.
#[inline]
fn stripe_idx() -> usize {
    let v = STRIPE_IDX.with(Cell::get);
    if v != usize::MAX {
        return v;
    }
    // If the guard TLS is already destroyed (an event recorded from another
    // TLS destructor during thread teardown), fall back to the shared stripe.
    let idx = STRIPE_GUARD.try_with(|g| g.0).unwrap_or(SHARED);
    STRIPE_IDX.with(|s| s.set(idx));
    idx
}

/// Add 1 to `slot`. Exclusive stripes have a single writer, so a plain
/// relaxed load + store suffices (~3× cheaper than a `lock`-prefixed
/// `fetch_add`); the shared overflow stripe needs the real RMW.
#[inline]
fn bump(idx: usize, slot: &AtomicU64) {
    if idx < EXCLUSIVE_STRIPES {
        slot.store(slot.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    } else {
        slot.fetch_add(1, Ordering::Relaxed);
    }
}

/// Turn telemetry recording on or off at runtime (default: on). Off turns
/// every record function into a single relaxed load.
pub fn set_telemetry(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently recording. Always `false` when the crate
/// is compiled with the `off` feature.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Record one occurrence of `c`. Allocation-free: a thread-local read plus
/// one relaxed load + store on this thread's exclusive stripe.
#[inline]
pub fn count(c: Counter) {
    if enabled() {
        let idx = stripe_idx();
        bump(idx, &REGISTRY[idx].counters[c as usize]);
    }
}

/// Record `n` occurrences of `c` in one store (used by the wire layer to
/// account whole-frame byte counts without a per-byte loop).
#[inline]
pub fn add(c: Counter, n: u64) {
    if enabled() {
        let idx = stripe_idx();
        let slot = &REGISTRY[idx].counters[c as usize];
        if idx < EXCLUSIVE_STRIPES {
            slot.store(slot.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        } else {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Histogram bucket for `v`: `floor(log2(max(v, 1)))`, clamped to the last
/// bucket.
#[inline]
pub fn bucket(v: u64) -> usize {
    (v.max(1).ilog2() as usize).min(BUCKETS - 1)
}

thread_local! {
    // Per-thread decide-call tick driving the 1-in-SAMPLE_EVERY latency
    // sampling. Thread-local (not striped) so the common path pays a plain
    // Cell increment, not an atomic RMW.
    static DECIDE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Start timing a single `decide` call. Returns `Some` for one call in
/// [`SAMPLE_EVERY`] (per thread) when telemetry is enabled; pass the result
/// to [`observe_decide`] when the decision completes.
#[inline]
pub fn decide_timer() -> Option<Instant> {
    if !enabled() {
        return None;
    }
    let tick = DECIDE_TICK.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v
    });
    tick.is_multiple_of(SAMPLE_EVERY).then(Instant::now)
}

/// Record a sampled `decide` latency started by [`decide_timer`].
#[inline]
pub fn observe_decide(start: Option<Instant>) {
    if let Some(t0) = start {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let idx = stripe_idx();
        bump(idx, &REGISTRY[idx].decide_ns[bucket(ns)]);
    }
}

/// Start timing a `decide_batch` call (every batch is timed — batches are
/// rare relative to decisions). Pass the result to [`observe_batch`].
#[inline]
pub fn batch_timer() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Record a `decide_batch` latency and its batch size.
#[inline]
pub fn observe_batch(start: Option<Instant>, batch_len: usize) {
    if let Some(t0) = start {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let idx = stripe_idx();
        let s = &REGISTRY[idx];
        bump(idx, &s.batch_ns[bucket(ns)]);
        bump(idx, &s.batch_size[bucket(batch_len.max(1) as u64)]);
    }
}

/// Start timing a custody handoff (every handoff is timed — handoffs are
/// rare, one per migration). Pass the result to [`observe_handoff`].
#[inline]
pub fn handoff_timer() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Record a custody-handoff latency started by [`handoff_timer`].
#[inline]
pub fn observe_handoff(start: Option<Instant>) {
    if let Some(t0) = start {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let idx = stripe_idx();
        bump(idx, &REGISTRY[idx].handoff_ns[bucket(ns)]);
    }
}

/// A consistent-enough point-in-time aggregation of all stripes. Fixed-size
/// (no heap) so taking one is itself allocation-free; only
/// [`MetricsSnapshot::to_json`] allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub telemetry_enabled: bool,
    /// Counter totals, indexed by `Counter as usize` (see [`Counter::ALL`]).
    pub counters: [u64; COUNTERS],
    /// Sampled `decide` latency histogram (nanoseconds, log₂ buckets).
    pub decide_ns: [u64; BUCKETS],
    /// `decide_batch` latency histogram (nanoseconds, log₂ buckets).
    pub batch_ns: [u64; BUCKETS],
    /// `decide_batch` size histogram (requests per batch, log₂ buckets).
    pub batch_size: [u64; BUCKETS],
    /// Custody-handoff latency histogram (nanoseconds, log₂ buckets).
    pub handoff_ns: [u64; BUCKETS],
}

// Derived `Default` stops at 32-element arrays; `COUNTERS` outgrew that.
impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            telemetry_enabled: false,
            counters: [0; COUNTERS],
            decide_ns: [0; BUCKETS],
            batch_ns: [0; BUCKETS],
            batch_size: [0; BUCKETS],
            handoff_ns: [0; BUCKETS],
        }
    }
}

impl MetricsSnapshot {
    /// Total for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Sum of the six verdict counters — the total number of decisions
    /// recorded (every decision produces exactly one verdict).
    pub fn verdict_total(&self) -> u64 {
        Counter::VERDICTS.iter().map(|&c| self.counter(c)).sum()
    }

    /// Sum of the five DESIGN.md §8 cursor decline counters.
    pub fn decline_total(&self) -> u64 {
        Counter::DECLINES.iter().map(|&c| self.counter(c)).sum()
    }

    /// Element-wise saturating difference `self - earlier`: the activity
    /// between two snapshots.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = self.clone();
        for i in 0..COUNTERS {
            d.counters[i] = d.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..BUCKETS {
            d.decide_ns[i] = d.decide_ns[i].saturating_sub(earlier.decide_ns[i]);
            d.batch_ns[i] = d.batch_ns[i].saturating_sub(earlier.batch_ns[i]);
            d.batch_size[i] = d.batch_size[i].saturating_sub(earlier.batch_size[i]);
            d.handoff_ns[i] = d.handoff_ns[i].saturating_sub(earlier.handoff_ns[i]);
        }
        d
    }

    /// Render as a self-describing JSON object, through the workspace's
    /// shared emitter ([`stacl_ids::json`]) — the same path the bench
    /// artifacts use, so new counters serialize identically everywhere.
    pub fn to_json(&self) -> String {
        let mut w = stacl_ids::json::JsonWriter::object();
        w.field_bool("telemetry_enabled", self.telemetry_enabled);
        w.field_u64("sample_every", SAMPLE_EVERY);
        w.open_object("counters");
        for c in Counter::ALL.iter() {
            w.field_u64(c.label(), self.counter(*c));
        }
        w.close();
        for (name, buckets) in [
            ("decide_latency_ns", &self.decide_ns),
            ("batch_latency_ns", &self.batch_ns),
            ("batch_size", &self.batch_size),
            ("handoff_latency_ns", &self.handoff_ns),
        ] {
            w.open_object(name);
            w.field_u64("samples", buckets.iter().sum());
            w.array_u64("log2_buckets", buckets.iter().copied());
            w.close();
        }
        w.finish()
    }
}

/// Aggregate all stripes into a [`MetricsSnapshot`]. Relaxed reads: exact
/// once recording threads are quiescent, approximate while they run.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot {
        telemetry_enabled: enabled(),
        ..MetricsSnapshot::default()
    };
    for s in &REGISTRY {
        for i in 0..COUNTERS {
            snap.counters[i] += s.counters[i].load(Ordering::Relaxed);
        }
        for i in 0..BUCKETS {
            snap.decide_ns[i] += s.decide_ns[i].load(Ordering::Relaxed);
            snap.batch_ns[i] += s.batch_ns[i].load(Ordering::Relaxed);
            snap.batch_size[i] += s.batch_size[i].load(Ordering::Relaxed);
            snap.handoff_ns[i] += s.handoff_ns[i].load(Ordering::Relaxed);
        }
    }
    snap
}

/// Zero every counter and histogram bucket in every stripe. Meant for test
/// and benchmark boundaries: a concurrent exclusive-stripe writer may lose
/// an in-flight increment to the zeroing store.
pub fn reset() {
    for s in &REGISTRY {
        for c in &s.counters {
            c.store(0, Ordering::Relaxed);
        }
        for i in 0..BUCKETS {
            s.decide_ns[i].store(0, Ordering::Relaxed);
            s.batch_ns[i].store(0, Ordering::Relaxed);
            s.batch_size[i].store(0, Ordering::Relaxed);
            s.handoff_ns[i].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(1023), 9);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), COUNTERS, "duplicate counter label");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL must match declaration order");
        }
    }

    #[test]
    fn json_has_required_fields() {
        let snap = MetricsSnapshot::default();
        let json = snap.to_json();
        for key in [
            "telemetry_enabled",
            "sample_every",
            "counters",
            "decide_latency_ns",
            "batch_latency_ns",
            "batch_size",
            "handoff_latency_ns",
            "log2_buckets",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        for c in Counter::ALL {
            assert!(json.contains(c.label()), "missing counter {}", c.label());
        }
    }

    // Stateful assertions share the global registry, so they live in ONE
    // test function: the harness runs #[test]s in parallel threads.
    #[test]
    fn counting_toggle_and_diff() {
        let base = snapshot();
        count(Counter::CacheHit);
        count(Counter::CacheHit);
        count(Counter::WatermarkAdvance);
        let d = snapshot().diff(&base);
        assert_eq!(d.counter(Counter::CacheHit), 2);
        assert_eq!(d.counter(Counter::WatermarkAdvance), 1);

        // Disabled: nothing records, timers return None.
        set_telemetry(false);
        let base = snapshot();
        assert!(!base.telemetry_enabled);
        count(Counter::CacheHit);
        assert!(decide_timer().is_none());
        assert!(batch_timer().is_none());
        observe_decide(None);
        observe_batch(None, 100);
        let d = snapshot().diff(&base);
        assert_eq!(d.counter(Counter::CacheHit), 0);
        set_telemetry(true);

        // Histograms: a timed batch lands one sample in each batch histogram.
        let base = snapshot();
        let t0 = batch_timer();
        assert!(t0.is_some());
        observe_batch(t0, 5);
        let d = snapshot().diff(&base);
        assert_eq!(d.batch_ns.iter().sum::<u64>(), 1);
        assert_eq!(d.batch_size[bucket(5)], 1);

        // decide_timer samples 1 in SAMPLE_EVERY per thread.
        let base = snapshot();
        let mut sampled = 0;
        for _ in 0..(SAMPLE_EVERY * 4) {
            let t = decide_timer();
            if t.is_some() {
                sampled += 1;
            }
            observe_decide(t);
        }
        assert_eq!(sampled, 4);
        let d = snapshot().diff(&base);
        assert_eq!(d.decide_ns.iter().sum::<u64>(), 4);
        assert_eq!(d.verdict_total(), 0);
    }
}
