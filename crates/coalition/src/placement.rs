//! Deterministic custody placement — the rendezvous ring.
//!
//! The paper's coalition (§2) has no directory service: every server
//! enforces policy locally and objects migrate freely. Up to now custody
//! therefore lived "wherever the object last migrated", and locating an
//! object's custodian required either prior knowledge or a broadcast —
//! both of which collapse at the million-object scale. The ring fixes
//! that with **rendezvous (highest-random-weight) hashing** over the
//! member names: every member independently computes the same *home*
//! custodian for every object in O(|members|) with no coordination at
//! all, and a membership change moves exactly the keys whose maximum
//! moved — the keys homed on a departed member, or the ~1/N slice newly
//! won by a joiner. Nothing else shuffles.
//!
//! Scoring reuses the workspace's FNV-1a ([`stacl_trace::hash`]): the
//! score of `(object, member)` is the hash of the object name streamed
//! into the hash of the member name. Ties (astronomically unlikely, but
//! the ring must be a total function) break toward the lexicographically
//! smaller member so every replica agrees byte-for-byte.

use std::hash::Hasher;

use stacl_trace::hash::FnvHasher;

/// A rendezvous-hash ring over coalition member names.
///
/// Construction sorts and dedups the member set, so two rings built from
/// the same members in any order are identical ([`Placement::eq`] is
/// derived structural equality and means "same placement function").
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Placement {
    members: Vec<String>,
}

impl Placement {
    /// Build a ring over `members` (order-insensitive, duplicates
    /// ignored).
    pub fn new<I, S>(members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut members: Vec<String> = members.into_iter().map(Into::into).collect();
        members.sort();
        members.dedup();
        Placement { members }
    }

    /// The member names, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members on the ring.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members (every lookup returns `None`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `member` on the ring?
    pub fn contains(&self, member: &str) -> bool {
        self.members
            .binary_search_by(|m| m.as_str().cmp(member))
            .is_ok()
    }

    /// The rendezvous score of `(object, member)`.
    fn score(object: &str, member: &str) -> u64 {
        let mut h = FnvHasher::default();
        h.write(object.as_bytes());
        // Hash the object's length as a separator so ("ab","c") and
        // ("a","bc") never collide by framing.
        h.write_u64(object.len() as u64);
        h.write(member.as_bytes());
        // FNV-1a mixes bytes multiplicatively but avalanches poorly into
        // the high bits, and rendezvous compares raw magnitudes — finish
        // with a full-avalanche permutation (splitmix64 finalizer) so
        // near-identical member names don't bias the argmax.
        let mut x = h.finish();
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    /// The home custodian for `object`: the member with the highest
    /// rendezvous score. O(|members|); `None` on an empty ring.
    ///
    /// Strict `>` over the sorted member list makes ties land on the
    /// lexicographically smaller name, so the choice is a pure function
    /// of the member *set* and every replica computes the same home.
    pub fn home_of(&self, object: &str) -> Option<&str> {
        let mut best: Option<(&str, u64)> = None;
        for m in &self.members {
            let s = Placement::score(object, m);
            match best {
                Some((_, bs)) if s <= bs => {}
                _ => best = Some((m, s)),
            }
        }
        best.map(|(m, _)| m)
    }

    /// A new ring with `member` added (no-op if already present).
    pub fn with_member(&self, member: &str) -> Placement {
        let mut members = self.members.clone();
        members.push(member.to_string());
        Placement::new(members)
    }

    /// A new ring with `member` removed (no-op if absent).
    pub fn without_member(&self, member: &str) -> Placement {
        Placement::new(
            self.members
                .iter()
                .filter(|m| m.as_str() != member)
                .cloned(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic xorshift64* — the workspace is dependency-free, so
    /// property sweeps draw from a seeded generator instead of proptest.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("obj-{i}")).collect()
    }

    #[test]
    fn order_insensitive_and_deterministic() {
        let a = Placement::new(["d2", "d0", "d1", "d0"]);
        let b = Placement::new(["d0", "d1", "d2"]);
        assert_eq!(a, b);
        assert_eq!(a.members(), &["d0", "d1", "d2"]);
        assert!(a.contains("d1"));
        assert!(!a.contains("d9"));
        for k in keys(64) {
            assert_eq!(a.home_of(&k), b.home_of(&k));
            assert!(a.contains(a.home_of(&k).unwrap()));
        }
    }

    #[test]
    fn empty_ring_has_no_home() {
        let p = Placement::new(Vec::<String>::new());
        assert!(p.is_empty());
        assert_eq!(p.home_of("anything"), None);
    }

    #[test]
    fn single_member_owns_everything() {
        let p = Placement::new(["only"]);
        for k in keys(32) {
            assert_eq!(p.home_of(&k), Some("only"));
        }
    }

    /// Property (satellite): on *leave*, the keys that move are exactly
    /// the keys that were homed on the removed member — everything else
    /// keeps its custodian. Swept over random member sets and key
    /// populations.
    #[test]
    fn leave_moves_exactly_the_departed_members_keys() {
        let mut rng = Rng(0x5eed_0001);
        for round in 0..32 {
            let n = 2 + rng.below(7) as usize; // 2..=8 members
            let members: Vec<String> = (0..n).map(|i| format!("m{round}-{i}")).collect();
            let ring = Placement::new(members.clone());
            let leaver = &members[rng.below(n as u64) as usize];
            let shrunk = ring.without_member(leaver);
            assert_eq!(shrunk.len(), n - 1);
            for k in keys(256) {
                let before = ring.home_of(&k).unwrap();
                let after = shrunk.home_of(&k).unwrap();
                if before == leaver {
                    assert_ne!(after, leaver, "key must leave the departed member");
                } else {
                    assert_eq!(before, after, "key {k} moved although its home stayed");
                }
            }
        }
    }

    /// Property (satellite): on *join*, the only keys that move are the
    /// ones the joiner now wins — roughly a 1/N slice — and they all move
    /// *to* the joiner.
    #[test]
    fn join_moves_only_the_joiners_slice() {
        let mut rng = Rng(0x5eed_0002);
        for round in 0..32 {
            let n = 1 + rng.below(7) as usize; // 1..=7 members
            let members: Vec<String> = (0..n).map(|i| format!("j{round}-{i}")).collect();
            let ring = Placement::new(members.clone());
            let joiner = format!("j{round}-new");
            let grown = ring.with_member(&joiner);
            assert_eq!(grown.len(), n + 1);
            let ks = keys(512);
            let mut moved = 0usize;
            for k in &ks {
                let before = ring.home_of(k).unwrap();
                let after = grown.home_of(k).unwrap();
                if before != after {
                    assert_eq!(after, joiner, "a moved key must move to the joiner");
                    moved += 1;
                }
            }
            // The joiner's expected share is 1/(n+1); allow a generous
            // band since 512 keys is a small sample.
            let expected = ks.len() / (n + 1);
            assert!(
                moved <= expected * 3 + 8,
                "join reshuffled too much: {moved} of {} keys (expected ~{expected})",
                ks.len()
            );
        }
    }

    /// The ring spreads keys roughly evenly — no member is starved or
    /// doubly loaded beyond a loose band.
    #[test]
    fn placement_is_roughly_balanced() {
        let members: Vec<String> = (0..8).map(|i| format!("d{i}")).collect();
        let ring = Placement::new(members.clone());
        let mut load: HashMap<&str, usize> = HashMap::new();
        let ks = keys(8000);
        for k in &ks {
            *load.entry(ring.home_of(k).unwrap()).or_default() += 1;
        }
        for m in &members {
            let l = load.get(m.as_str()).copied().unwrap_or(0);
            let fair = ks.len() / members.len();
            assert!(
                l > fair / 2 && l < fair * 2,
                "member {m} holds {l} of {} keys (fair share {fair})",
                ks.len()
            );
        }
    }
}
