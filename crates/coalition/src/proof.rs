//! Execution proofs — the paper's `Pr_x(·)`.
//!
//! §2: "when an access request to a shared resource is executed by a
//! coalition server, an execution proof will be issued to the mobile
//! object. It records the information of (o, op, r, s) for the access, and
//! the execution time." The proof store carries the proofs a mobile object
//! has accumulated across servers; `Pr_x(a)` is true iff a proof for `a`
//! exists.

use std::sync::Arc;

use parking_lot::RwLock;
use stacl_sral::ast::Name;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::{AccessTable, Trace};

/// One execution proof: who did what, where, when.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecutionProof {
    /// The mobile object the proof was issued to.
    pub object: Name,
    /// The proven access (op, resource, server).
    pub access: Access,
    /// The server-local execution time.
    pub time: TimePoint,
    /// Monotone sequence number within the store (issue order).
    pub seq: u64,
}

/// A mobile object's collection of execution proofs, in issue order.
#[derive(Clone, Default, Debug)]
pub struct ProofStore {
    inner: Arc<RwLock<Vec<ExecutionProof>>>,
}

impl ProofStore {
    /// An empty store.
    pub fn new() -> Self {
        ProofStore::default()
    }

    /// Issue a proof for `access` by `object` at `time`, returning it.
    pub fn issue(&self, object: impl AsRef<str>, access: Access, time: TimePoint) -> ExecutionProof {
        let mut v = self.inner.write();
        let proof = ExecutionProof {
            object: stacl_sral::ast::name(object),
            access,
            time,
            seq: v.len() as u64,
        };
        v.push(proof.clone());
        proof
    }

    /// `Pr_x(a)`: does a proof for this exact access exist (for any
    /// object)?
    pub fn proven(&self, access: &Access) -> bool {
        self.inner.read().iter().any(|p| &p.access == access)
    }

    /// `Pr_x(a)` restricted to one mobile object.
    pub fn proven_by(&self, object: &str, access: &Access) -> bool {
        self.inner
            .read()
            .iter()
            .any(|p| &*p.object == object && &p.access == access)
    }

    /// The history trace of one object (its proven accesses in issue
    /// order), interned through `table`.
    pub fn history_of(&self, object: &str, table: &mut AccessTable) -> Trace {
        Trace::from_ids(
            self.inner
                .read()
                .iter()
                .filter(|p| &*p.object == object)
                .map(|p| table.intern(&p.access)),
        )
    }

    /// The combined history of *all* objects in issue order — the
    /// coalition-wide view used for teamwork constraints ("the previous
    /// access actions of the device and even of its companions", §1).
    pub fn combined_history(&self, table: &mut AccessTable) -> Trace {
        Trace::from_ids(self.inner.read().iter().map(|p| table.intern(&p.access)))
    }

    /// Count proven accesses matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&ExecutionProof) -> bool) -> usize {
        self.inner.read().iter().filter(|p| pred(p)).count()
    }

    /// Total number of proofs.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no proofs have been issued.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A snapshot of all proofs, in issue order.
    pub fn snapshot(&self) -> Vec<ExecutionProof> {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn issue_and_query() {
        let store = ProofStore::new();
        let a = Access::new("read", "db", "s1");
        assert!(!store.proven(&a));
        store.issue("naplet-1", a.clone(), tp(1.0));
        assert!(store.proven(&a));
        assert!(store.proven_by("naplet-1", &a));
        assert!(!store.proven_by("naplet-2", &a));
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let store = ProofStore::new();
        let p0 = store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let p1 = store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(p0.seq, 0);
        assert_eq!(p1.seq, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn history_preserves_order_and_object_filter() {
        let store = ProofStore::new();
        store.issue("o1", Access::new("a", "r", "s1"), tp(0.0));
        store.issue("o2", Access::new("x", "r", "s1"), tp(0.5));
        store.issue("o1", Access::new("b", "r", "s2"), tp(1.0));
        let mut table = AccessTable::new();
        let h = store.history_of("o1", &mut table);
        assert_eq!(h.len(), 2);
        assert_eq!(table.resolve(h.0[0]), &Access::new("a", "r", "s1"));
        assert_eq!(table.resolve(h.0[1]), &Access::new("b", "r", "s2"));
        let all = store.combined_history(&mut table);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn count_matching_by_server() {
        let store = ProofStore::new();
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(0.0));
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(1.0));
        store.issue("o", Access::new("exec", "rsw", "s2"), tp(2.0));
        let on_s1 = store.count_matching(|p| &*p.access.server == "s1");
        assert_eq!(on_s1, 2);
    }

    #[test]
    fn snapshot_is_stable() {
        let store = ProofStore::new();
        store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let snap = store.snapshot();
        store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(snap.len(), 1);
        assert_eq!(store.len(), 2);
    }
}
