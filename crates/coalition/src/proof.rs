//! Execution proofs — the paper's `Pr_x(·)`.
//!
//! §2: "when an access request to a shared resource is executed by a
//! coalition server, an execution proof will be issued to the mobile
//! object. It records the information of (o, op, r, s) for the access, and
//! the execution time." The proof store carries the proofs a mobile object
//! has accumulated across servers; `Pr_x(a)` is true iff a proof for `a`
//! exists.
//!
//! The store is **sharded per mobile object**: each object's proofs live
//! in their own lock-protected vector, so the dominant query —
//! [`ProofStore::history_of`] for the requesting object — touches only
//! that object's shard and never scans (or contends with) the proofs of
//! its companions. A global atomic sequence number preserves the
//! coalition-wide issue order; cross-object views
//! ([`ProofStore::combined_history`], [`ProofStore::snapshot`]) merge the
//! shards by sequence number.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stacl_ids::sync::RwLock;
use stacl_sral::ast::Name;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::{AccessTable, Trace};

/// One execution proof: who did what, where, when.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecutionProof {
    /// The mobile object the proof was issued to.
    pub object: Name,
    /// The proven access (op, resource, server).
    pub access: Access,
    /// The server-local execution time.
    pub time: TimePoint,
    /// Monotone sequence number within the store (issue order).
    pub seq: u64,
}

type Shard = Arc<RwLock<Vec<ExecutionProof>>>;

#[derive(Default, Debug)]
struct Inner {
    /// Global issue counter: proofs across all shards are totally ordered
    /// by `seq`.
    seq: AtomicU64,
    /// object → its own proof shard.
    shards: RwLock<HashMap<Name, Shard>>,
}

/// A coalition's collection of execution proofs, sharded per mobile
/// object. `Clone` shares the underlying store.
#[derive(Clone, Default, Debug)]
pub struct ProofStore {
    inner: Arc<Inner>,
}

impl ProofStore {
    /// An empty store.
    pub fn new() -> Self {
        ProofStore::default()
    }

    /// The shard for `object`, if it exists.
    fn shard(&self, object: &str) -> Option<Shard> {
        self.inner.shards.read().get(object).cloned()
    }

    /// The shard for `object`, creating it if needed.
    fn shard_or_create(&self, object: &str) -> Shard {
        if let Some(s) = self.shard(object) {
            return s;
        }
        let mut map = self.inner.shards.write();
        map.entry(stacl_sral::ast::name(object))
            .or_default()
            .clone()
    }

    /// Issue a proof for `access` by `object` at `time`, returning it.
    pub fn issue(
        &self,
        object: impl AsRef<str>,
        access: Access,
        time: TimePoint,
    ) -> ExecutionProof {
        let object = object.as_ref();
        let shard = self.shard_or_create(object);
        // The sequence number is drawn under the shard lock so that the
        // per-shard order always agrees with the global order.
        let mut v = shard.write();
        let proof = ExecutionProof {
            object: stacl_sral::ast::name(object),
            access,
            time,
            seq: self.inner.seq.fetch_add(1, Ordering::SeqCst),
        };
        v.push(proof.clone());
        stacl_obs::count(stacl_obs::Counter::WatermarkAdvance);
        proof
    }

    /// `Pr_x(a)`: does a proof for this exact access exist (for any
    /// object)?
    pub fn proven(&self, access: &Access) -> bool {
        let shards = self.inner.shards.read();
        shards
            .values()
            .any(|s| s.read().iter().any(|p| &p.access == access))
    }

    /// `Pr_x(a)` restricted to one mobile object — touches only that
    /// object's shard.
    pub fn proven_by(&self, object: &str, access: &Access) -> bool {
        match self.shard(object) {
            Some(s) => s.read().iter().any(|p| &p.access == access),
            None => false,
        }
    }

    /// The history trace of one object (its proven accesses in issue
    /// order), interned through `table`. Touches only that object's shard.
    pub fn history_of(&self, object: &str, table: &mut AccessTable) -> Trace {
        match self.shard(object) {
            Some(s) => Trace::from_ids(s.read().iter().map(|p| table.intern(&p.access))),
            None => Trace::empty(),
        }
    }

    /// Number of proofs held by one object, without touching other shards.
    pub fn len_of(&self, object: &str) -> usize {
        self.shard(object).map_or(0, |s| s.read().len())
    }

    /// The object's append watermark: how many proofs have been issued
    /// for it so far. Shards are strictly append-only, so the watermark
    /// is monotone — an incremental cursor that has consumed `n ≤
    /// watermark` proofs can catch up by visiting exactly the suffix
    /// `[n, watermark)` (see [`ProofStore::visit_suffix`]); a cursor
    /// with `n > watermark` was built against a *different* store and
    /// must be invalidated.
    pub fn watermark_of(&self, object: &str) -> usize {
        self.len_of(object)
    }

    /// Visit the object's proofs from index `from` (in issue order) —
    /// the subscription primitive incremental cursors use to fold in
    /// accesses proven since they were last advanced. The shard's read
    /// lock is held for the duration of the walk, so `f` must not call
    /// back into this store.
    pub fn visit_suffix(&self, object: &str, from: usize, mut f: impl FnMut(&ExecutionProof)) {
        if let Some(s) = self.shard(object) {
            for p in s.read().iter().skip(from) {
                f(p);
            }
        }
    }

    /// The combined history of *all* objects in issue order — the
    /// coalition-wide view used for teamwork constraints ("the previous
    /// access actions of the device and even of its companions", §1).
    /// Merges the shards by sequence number.
    pub fn combined_history(&self, table: &mut AccessTable) -> Trace {
        Trace::from_ids(self.merged().iter().map(|p| table.intern(&p.access)))
    }

    /// Count proven accesses matching a predicate (across all shards).
    pub fn count_matching(&self, mut pred: impl FnMut(&ExecutionProof) -> bool) -> usize {
        let shards = self.inner.shards.read();
        shards
            .values()
            .map(|s| s.read().iter().filter(|p| pred(p)).count())
            .sum()
    }

    /// Total number of proofs ever issued.
    pub fn len(&self) -> usize {
        self.inner.seq.load(Ordering::SeqCst) as usize
    }

    /// True when no proofs have been issued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all proofs, in issue order.
    pub fn snapshot(&self) -> Vec<ExecutionProof> {
        self.merged()
    }

    /// All proofs from all shards, sorted by sequence number.
    fn merged(&self) -> Vec<ExecutionProof> {
        let shards = self.inner.shards.read();
        let mut all: Vec<ExecutionProof> = shards
            .values()
            .flat_map(|s| s.read().iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|p| p.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn issue_and_query() {
        let store = ProofStore::new();
        let a = Access::new("read", "db", "s1");
        assert!(!store.proven(&a));
        store.issue("naplet-1", a.clone(), tp(1.0));
        assert!(store.proven(&a));
        assert!(store.proven_by("naplet-1", &a));
        assert!(!store.proven_by("naplet-2", &a));
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let store = ProofStore::new();
        let p0 = store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let p1 = store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(p0.seq, 0);
        assert_eq!(p1.seq, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn watermark_and_suffix_subscription() {
        let store = ProofStore::new();
        assert_eq!(store.watermark_of("o"), 0);
        store.issue("o", Access::new("a", "r", "s1"), tp(0.0));
        store.issue("other", Access::new("z", "r", "s1"), tp(0.2));
        store.issue("o", Access::new("b", "r", "s1"), tp(0.5));
        let wm = store.watermark_of("o");
        assert_eq!(wm, 2, "other objects' proofs don't move the watermark");
        store.issue("o", Access::new("c", "r", "s2"), tp(1.0));
        // Catching up from the old watermark visits exactly the new suffix.
        let mut seen = Vec::new();
        store.visit_suffix("o", wm, |p| seen.push(p.access.clone()));
        assert_eq!(seen, vec![Access::new("c", "r", "s2")]);
        // From the current watermark there is nothing to visit; unknown
        // objects are empty.
        store.visit_suffix("o", store.watermark_of("o"), |_| {
            panic!("no suffix expected")
        });
        store.visit_suffix("ghost", 0, |_| panic!("no shard expected"));
    }

    #[test]
    fn history_preserves_order_and_object_filter() {
        let store = ProofStore::new();
        store.issue("o1", Access::new("a", "r", "s1"), tp(0.0));
        store.issue("o2", Access::new("x", "r", "s1"), tp(0.5));
        store.issue("o1", Access::new("b", "r", "s2"), tp(1.0));
        let mut table = AccessTable::new();
        let h = store.history_of("o1", &mut table);
        assert_eq!(h.len(), 2);
        assert_eq!(table.resolve(h.0[0]), &Access::new("a", "r", "s1"));
        assert_eq!(table.resolve(h.0[1]), &Access::new("b", "r", "s2"));
        let all = store.combined_history(&mut table);
        assert_eq!(all.len(), 3);
        assert_eq!(store.len_of("o1"), 2);
        assert_eq!(store.len_of("o2"), 1);
        assert_eq!(store.len_of("ghost"), 0);
    }

    #[test]
    fn combined_history_merges_by_issue_order() {
        let store = ProofStore::new();
        // Interleave issues across three objects.
        for i in 0..9u32 {
            let obj = format!("o{}", i % 3);
            store.issue(&obj, Access::new(format!("op{i}"), "r", "s"), tp(i as f64));
        }
        let mut table = AccessTable::new();
        let all = store.combined_history(&mut table);
        assert_eq!(all.len(), 9);
        // Issue order preserved across shards.
        for (i, id) in all.0.iter().enumerate() {
            assert_eq!(&*table.resolve(*id).op, format!("op{i}"));
        }
        let snap = store.snapshot();
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn count_matching_by_server() {
        let store = ProofStore::new();
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(0.0));
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(1.0));
        store.issue("o", Access::new("exec", "rsw", "s2"), tp(2.0));
        let on_s1 = store.count_matching(|p| &*p.access.server == "s1");
        assert_eq!(on_s1, 2);
    }

    #[test]
    fn snapshot_is_stable() {
        let store = ProofStore::new();
        store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let snap = store.snapshot();
        store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(snap.len(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn concurrent_issues_keep_shards_consistent() {
        let store = ProofStore::new();
        std::thread::scope(|scope| {
            for obj in ["a", "b", "c", "d"] {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..50u32 {
                        store.issue(obj, Access::new(format!("op{i}"), "r", "s"), tp(i as f64));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
        let mut table = AccessTable::new();
        for obj in ["a", "b", "c", "d"] {
            let h = store.history_of(obj, &mut table);
            assert_eq!(h.len(), 50);
            // Per-object issue order is preserved.
            for (i, id) in h.0.iter().enumerate() {
                assert_eq!(&*table.resolve(*id).op, format!("op{i}"));
            }
        }
        // The merged view is totally ordered by seq with no duplicates.
        let snap = store.snapshot();
        assert_eq!(snap.len(), 200);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
