//! Execution proofs — the paper's `Pr_x(·)`.
//!
//! §2: "when an access request to a shared resource is executed by a
//! coalition server, an execution proof will be issued to the mobile
//! object. It records the information of (o, op, r, s) for the access, and
//! the execution time." The proof store carries the proofs a mobile object
//! has accumulated across servers; `Pr_x(a)` is true iff a proof for `a`
//! exists.
//!
//! The store is **sharded per mobile object**: each object's proofs live
//! in their own lock-protected shard, so the dominant query —
//! [`ProofStore::history_of`] for the requesting object — touches only
//! that object's shard and never scans (or contends with) the proofs of
//! its companions. A global atomic sequence number preserves the
//! coalition-wide issue order; cross-object views
//! ([`ProofStore::combined_history`], [`ProofStore::snapshot`]) merge the
//! shards by sequence number.
//!
//! ## Bounded memory: watermark compaction
//!
//! Shards are logically append-only forever, but a million-object daemon
//! cannot keep every `ExecutionProof` materialised. Once every live
//! cursor for an object has consumed past watermark `n`, the prefix
//! `[0, n)` can be folded into a **sealed summary**
//! ([`ProofStore::compact_prefix`]): the distinct accesses are interned
//! once and the folded proofs shrink to three parallel scalars
//! (symbol index, seq, time) — roughly a quarter of the live
//! representation, with no `Arc` per proof. The fold is **lossless**:
//! every query reconstructs the sealed prefix exactly, so compaction can
//! never change a verdict — only the shard's resident footprint
//! ([`ProofStore::live_proof_count`]). [`ProofStore::compaction_base`]
//! exposes how much of a shard is sealed; custody handoffs carry it so
//! the importer can validate the exported watermark against it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stacl_ids::sync::RwLock;
use stacl_sral::ast::Name;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::{AccessTable, Trace};

/// One execution proof: who did what, where, when.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecutionProof {
    /// The mobile object the proof was issued to.
    pub object: Name,
    /// The proven access (op, resource, server).
    pub access: Access,
    /// The server-local execution time.
    pub time: TimePoint,
    /// Monotone sequence number within the store (issue order).
    pub seq: u64,
}

/// The sealed prefix of a shard: proofs folded into a
/// structure-of-arrays summary. Distinct accesses are interned once in
/// `symbols` (first-appearance order); each folded proof is a
/// `(symbol, seq, time)` triple across the three parallel vectors.
#[derive(Default, Debug)]
struct Sealed {
    symbols: Vec<Access>,
    sym: Vec<u32>,
    seqs: Vec<u64>,
    times: Vec<f64>,
}

impl Sealed {
    fn len(&self) -> usize {
        self.sym.len()
    }

    fn intern(&mut self, access: &Access) -> u32 {
        match self.symbols.iter().position(|a| a == access) {
            Some(i) => i as u32,
            None => {
                self.symbols.push(access.clone());
                (self.symbols.len() - 1) as u32
            }
        }
    }

    fn fold(&mut self, p: &ExecutionProof) {
        let s = self.intern(&p.access);
        self.sym.push(s);
        self.seqs.push(p.seq);
        self.times.push(p.time.seconds());
    }

    /// Reconstruct the `i`-th folded proof exactly as it was issued.
    fn rebuild(&self, object: &Name, i: usize) -> ExecutionProof {
        ExecutionProof {
            object: object.clone(),
            access: self.symbols[self.sym[i] as usize].clone(),
            time: TimePoint::new(self.times[i]),
            seq: self.seqs[i],
        }
    }

    fn contains(&self, access: &Access) -> bool {
        self.symbols.iter().any(|a| a == access)
    }
}

/// One object's shard: a sealed prefix plus the live suffix.
#[derive(Default, Debug)]
struct ShardState {
    object: Name,
    sealed: Sealed,
    live: Vec<ExecutionProof>,
}

impl ShardState {
    /// Total logical length (sealed + live) — the shard's watermark.
    fn len(&self) -> usize {
        self.sealed.len() + self.live.len()
    }

    /// Visit proofs from logical index `from` in issue order,
    /// reconstructing sealed ones on the fly.
    fn visit_from(&self, from: usize, f: &mut impl FnMut(&ExecutionProof)) {
        let base = self.sealed.len();
        for i in from..base {
            f(&self.sealed.rebuild(&self.object, i));
        }
        for p in self.live.iter().skip(from.saturating_sub(base)) {
            f(p);
        }
    }
}

type Shard = Arc<RwLock<ShardState>>;

#[derive(Default, Debug)]
struct Inner {
    /// Global issue counter: proofs across all shards are totally ordered
    /// by `seq`.
    seq: AtomicU64,
    /// object → its own proof shard.
    shards: RwLock<HashMap<Name, Shard>>,
}

/// A coalition's collection of execution proofs, sharded per mobile
/// object. `Clone` shares the underlying store.
#[derive(Clone, Default, Debug)]
pub struct ProofStore {
    inner: Arc<Inner>,
}

impl ProofStore {
    /// An empty store.
    pub fn new() -> Self {
        ProofStore::default()
    }

    /// The shard for `object`, if it exists.
    fn shard(&self, object: &str) -> Option<Shard> {
        self.inner.shards.read().get(object).cloned()
    }

    /// The shard for `object`, creating it if needed.
    fn shard_or_create(&self, object: &str) -> Shard {
        if let Some(s) = self.shard(object) {
            return s;
        }
        let mut map = self.inner.shards.write();
        map.entry(stacl_sral::ast::name(object))
            .or_insert_with(|| {
                Arc::new(RwLock::new(ShardState {
                    object: stacl_sral::ast::name(object),
                    ..ShardState::default()
                }))
            })
            .clone()
    }

    /// Issue a proof for `access` by `object` at `time`, returning it.
    pub fn issue(
        &self,
        object: impl AsRef<str>,
        access: Access,
        time: TimePoint,
    ) -> ExecutionProof {
        let object = object.as_ref();
        let shard = self.shard_or_create(object);
        // The sequence number is drawn under the shard lock so that the
        // per-shard order always agrees with the global order.
        let mut v = shard.write();
        let proof = ExecutionProof {
            object: stacl_sral::ast::name(object),
            access,
            time,
            seq: self.inner.seq.fetch_add(1, Ordering::SeqCst),
        };
        v.live.push(proof.clone());
        stacl_obs::count(stacl_obs::Counter::WatermarkAdvance);
        proof
    }

    /// `Pr_x(a)`: does a proof for this exact access exist (for any
    /// object)?
    pub fn proven(&self, access: &Access) -> bool {
        let shards = self.inner.shards.read();
        shards.values().any(|s| {
            let st = s.read();
            st.sealed.contains(access) || st.live.iter().any(|p| &p.access == access)
        })
    }

    /// `Pr_x(a)` restricted to one mobile object — touches only that
    /// object's shard.
    pub fn proven_by(&self, object: &str, access: &Access) -> bool {
        match self.shard(object) {
            Some(s) => {
                let st = s.read();
                st.sealed.contains(access) || st.live.iter().any(|p| &p.access == access)
            }
            None => false,
        }
    }

    /// The history trace of one object (its proven accesses in issue
    /// order), interned through `table`. Touches only that object's shard.
    pub fn history_of(&self, object: &str, table: &mut AccessTable) -> Trace {
        match self.shard(object) {
            Some(s) => {
                let st = s.read();
                // Interning the handful of distinct sealed symbols first
                // turns the sealed prefix into a plain index translation.
                let sym_ids: Vec<_> = st.sealed.symbols.iter().map(|a| table.intern(a)).collect();
                let mut ids: Vec<_> = Vec::with_capacity(st.len());
                ids.extend(st.sealed.sym.iter().map(|&i| sym_ids[i as usize]));
                ids.extend(st.live.iter().map(|p| table.intern(&p.access)));
                Trace::from_ids(ids)
            }
            None => Trace::empty(),
        }
    }

    /// Number of proofs held by one object, without touching other shards.
    pub fn len_of(&self, object: &str) -> usize {
        self.shard(object).map_or(0, |s| s.read().len())
    }

    /// The object's append watermark: how many proofs have been issued
    /// for it so far. Shards are strictly append-only, so the watermark
    /// is monotone — an incremental cursor that has consumed `n ≤
    /// watermark` proofs can catch up by visiting exactly the suffix
    /// `[n, watermark)` (see [`ProofStore::visit_suffix`]); a cursor
    /// with `n > watermark` was built against a *different* store and
    /// must be invalidated. Compaction never moves the watermark: it
    /// only changes how the prefix below it is stored.
    pub fn watermark_of(&self, object: &str) -> usize {
        self.len_of(object)
    }

    /// Visit the object's proofs from index `from` (in issue order) —
    /// the subscription primitive incremental cursors use to fold in
    /// accesses proven since they were last advanced. Sealed proofs below
    /// `from` are skipped without reconstruction; a `from` inside the
    /// sealed prefix is served losslessly by rebuilding it. The shard's
    /// read lock is held for the duration of the walk, so `f` must not
    /// call back into this store.
    pub fn visit_suffix(&self, object: &str, from: usize, mut f: impl FnMut(&ExecutionProof)) {
        if let Some(s) = self.shard(object) {
            s.read().visit_from(from, &mut f);
        }
    }

    /// Fold the object's proofs below logical index `upto` into the
    /// shard's sealed summary, returning how many proofs were folded.
    ///
    /// Safe to call with any `upto`: indices already sealed or beyond the
    /// watermark are clamped. The caller chooses `upto` — typically the
    /// minimum consumed position across the object's live cursors, so no
    /// cursor ever needs a proof that only exists in reconstructed form
    /// on its fast path. Queries remain exact either way; compaction is
    /// purely a representation change.
    pub fn compact_prefix(&self, object: &str, upto: usize) -> usize {
        let Some(s) = self.shard(object) else {
            return 0;
        };
        let mut st = s.write();
        let base = st.sealed.len();
        let n = upto.min(st.len()).saturating_sub(base);
        if n == 0 {
            return 0;
        }
        for p in st.live.drain(..n).collect::<Vec<_>>() {
            st.sealed.fold(&p);
        }
        stacl_obs::add(stacl_obs::Counter::ProofCompaction, n as u64);
        n
    }

    /// How many of the object's proofs are sealed — the compaction base.
    /// Handoffs carry this so the importer can validate the exported
    /// watermark (`base ≤ watermark`) before accepting custody.
    pub fn compaction_base(&self, object: &str) -> usize {
        self.shard(object).map_or(0, |s| s.read().sealed.len())
    }

    /// Number of *live* (unsealed) proofs held for one object — the RSS
    /// proxy the million-object bench reports.
    pub fn live_proof_count(&self, object: &str) -> usize {
        self.shard(object).map_or(0, |s| s.read().live.len())
    }

    /// Total live proofs across all shards.
    pub fn live_proof_total(&self) -> usize {
        let shards = self.inner.shards.read();
        shards.values().map(|s| s.read().live.len()).sum()
    }

    /// The combined history of *all* objects in issue order — the
    /// coalition-wide view used for teamwork constraints ("the previous
    /// access actions of the device and even of its companions", §1).
    /// Merges the shards by sequence number.
    pub fn combined_history(&self, table: &mut AccessTable) -> Trace {
        Trace::from_ids(self.merged().iter().map(|p| table.intern(&p.access)))
    }

    /// Count proven accesses matching a predicate (across all shards).
    pub fn count_matching(&self, mut pred: impl FnMut(&ExecutionProof) -> bool) -> usize {
        let shards = self.inner.shards.read();
        let mut n = 0usize;
        for s in shards.values() {
            s.read().visit_from(0, &mut |p| {
                if pred(p) {
                    n += 1;
                }
            });
        }
        n
    }

    /// Total number of proofs ever issued.
    pub fn len(&self) -> usize {
        self.inner.seq.load(Ordering::SeqCst) as usize
    }

    /// True when no proofs have been issued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all proofs, in issue order.
    pub fn snapshot(&self) -> Vec<ExecutionProof> {
        self.merged()
    }

    /// All proofs from all shards, sorted by sequence number. Sealed
    /// proofs are reconstructed, so the view is identical before and
    /// after compaction.
    fn merged(&self) -> Vec<ExecutionProof> {
        let shards = self.inner.shards.read();
        let mut all: Vec<ExecutionProof> = Vec::new();
        for s in shards.values() {
            s.read().visit_from(0, &mut |p| all.push(p.clone()));
        }
        all.sort_by_key(|p| p.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn issue_and_query() {
        let store = ProofStore::new();
        let a = Access::new("read", "db", "s1");
        assert!(!store.proven(&a));
        store.issue("naplet-1", a.clone(), tp(1.0));
        assert!(store.proven(&a));
        assert!(store.proven_by("naplet-1", &a));
        assert!(!store.proven_by("naplet-2", &a));
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let store = ProofStore::new();
        let p0 = store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let p1 = store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(p0.seq, 0);
        assert_eq!(p1.seq, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn watermark_and_suffix_subscription() {
        let store = ProofStore::new();
        assert_eq!(store.watermark_of("o"), 0);
        store.issue("o", Access::new("a", "r", "s1"), tp(0.0));
        store.issue("other", Access::new("z", "r", "s1"), tp(0.2));
        store.issue("o", Access::new("b", "r", "s1"), tp(0.5));
        let wm = store.watermark_of("o");
        assert_eq!(wm, 2, "other objects' proofs don't move the watermark");
        store.issue("o", Access::new("c", "r", "s2"), tp(1.0));
        // Catching up from the old watermark visits exactly the new suffix.
        let mut seen = Vec::new();
        store.visit_suffix("o", wm, |p| seen.push(p.access.clone()));
        assert_eq!(seen, vec![Access::new("c", "r", "s2")]);
        // From the current watermark there is nothing to visit; unknown
        // objects are empty.
        store.visit_suffix("o", store.watermark_of("o"), |_| {
            panic!("no suffix expected")
        });
        store.visit_suffix("ghost", 0, |_| panic!("no shard expected"));
    }

    #[test]
    fn history_preserves_order_and_object_filter() {
        let store = ProofStore::new();
        store.issue("o1", Access::new("a", "r", "s1"), tp(0.0));
        store.issue("o2", Access::new("x", "r", "s1"), tp(0.5));
        store.issue("o1", Access::new("b", "r", "s2"), tp(1.0));
        let mut table = AccessTable::new();
        let h = store.history_of("o1", &mut table);
        assert_eq!(h.len(), 2);
        assert_eq!(table.resolve(h.0[0]), &Access::new("a", "r", "s1"));
        assert_eq!(table.resolve(h.0[1]), &Access::new("b", "r", "s2"));
        let all = store.combined_history(&mut table);
        assert_eq!(all.len(), 3);
        assert_eq!(store.len_of("o1"), 2);
        assert_eq!(store.len_of("o2"), 1);
        assert_eq!(store.len_of("ghost"), 0);
    }

    #[test]
    fn combined_history_merges_by_issue_order() {
        let store = ProofStore::new();
        // Interleave issues across three objects.
        for i in 0..9u32 {
            let obj = format!("o{}", i % 3);
            store.issue(&obj, Access::new(format!("op{i}"), "r", "s"), tp(i as f64));
        }
        let mut table = AccessTable::new();
        let all = store.combined_history(&mut table);
        assert_eq!(all.len(), 9);
        // Issue order preserved across shards.
        for (i, id) in all.0.iter().enumerate() {
            assert_eq!(&*table.resolve(*id).op, format!("op{i}"));
        }
        let snap = store.snapshot();
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn count_matching_by_server() {
        let store = ProofStore::new();
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(0.0));
        store.issue("o", Access::new("exec", "rsw", "s1"), tp(1.0));
        store.issue("o", Access::new("exec", "rsw", "s2"), tp(2.0));
        let on_s1 = store.count_matching(|p| &*p.access.server == "s1");
        assert_eq!(on_s1, 2);
    }

    #[test]
    fn snapshot_is_stable() {
        let store = ProofStore::new();
        store.issue("o", Access::new("a", "r", "s"), tp(0.0));
        let snap = store.snapshot();
        store.issue("o", Access::new("b", "r", "s"), tp(1.0));
        assert_eq!(snap.len(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn concurrent_issues_keep_shards_consistent() {
        let store = ProofStore::new();
        std::thread::scope(|scope| {
            for obj in ["a", "b", "c", "d"] {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..50u32 {
                        store.issue(obj, Access::new(format!("op{i}"), "r", "s"), tp(i as f64));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
        let mut table = AccessTable::new();
        for obj in ["a", "b", "c", "d"] {
            let h = store.history_of(obj, &mut table);
            assert_eq!(h.len(), 50);
            // Per-object issue order is preserved.
            for (i, id) in h.0.iter().enumerate() {
                assert_eq!(&*table.resolve(*id).op, format!("op{i}"));
            }
        }
        // The merged view is totally ordered by seq with no duplicates.
        let snap = store.snapshot();
        assert_eq!(snap.len(), 200);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    /// Compaction is a pure representation change: every query answers
    /// identically before and after folding the prefix.
    #[test]
    fn compaction_is_lossless() {
        let store = ProofStore::new();
        for i in 0..20u32 {
            // Few distinct accesses, many proofs — the compression case.
            let a = Access::new(format!("op{}", i % 3), "r", format!("s{}", i % 2));
            store.issue("o", a, tp(i as f64));
        }
        store.issue("other", Access::new("z", "r", "s9"), tp(99.0));

        let mut t1 = AccessTable::new();
        let before_hist = store.history_of("o", &mut t1);
        let before_snap = store.snapshot();
        let before_all = store.combined_history(&mut t1);
        let wm = store.watermark_of("o");

        let folded = store.compact_prefix("o", 12);
        assert_eq!(folded, 12);
        assert_eq!(store.compaction_base("o"), 12);
        assert_eq!(store.live_proof_count("o"), 8);
        assert_eq!(
            store.watermark_of("o"),
            wm,
            "compaction keeps the watermark"
        );

        let mut t2 = AccessTable::new();
        assert_eq!(store.history_of("o", &mut t2).0, before_hist.0);
        assert_eq!(store.snapshot(), before_snap);
        assert_eq!(store.combined_history(&mut t2).0, before_all.0);
        assert!(store.proven_by("o", &Access::new("op0", "r", "s0")));
        assert!(!store.proven_by("o", &Access::new("op9", "r", "s0")));

        // visit_suffix from inside the sealed prefix rebuilds it exactly.
        let mut seen = Vec::new();
        store.visit_suffix("o", 10, |p| seen.push((p.seq, p.access.clone(), p.time)));
        assert_eq!(seen.len(), wm - 10);
        for (i, (seq, access, time)) in seen.iter().enumerate() {
            let j = 10 + i;
            assert_eq!(*seq, j as u64);
            assert_eq!(access, &before_snap[j].access);
            assert_eq!(*time, before_snap[j].time);
        }
    }

    #[test]
    fn compaction_clamps_and_is_idempotent() {
        let store = ProofStore::new();
        assert_eq!(store.compact_prefix("ghost", 10), 0, "no shard, no fold");
        for i in 0..5u32 {
            store.issue("o", Access::new("a", "r", "s"), tp(i as f64));
        }
        assert_eq!(store.compact_prefix("o", 100), 5, "clamped to watermark");
        assert_eq!(store.compact_prefix("o", 100), 0, "idempotent");
        assert_eq!(store.compact_prefix("o", 3), 0, "below base is a no-op");
        assert_eq!(store.live_proof_count("o"), 0);
        assert_eq!(store.compaction_base("o"), 5);
        // New issues land live again and fold on the next pass.
        store.issue("o", Access::new("b", "r", "s"), tp(9.0));
        assert_eq!(store.live_proof_count("o"), 1);
        assert_eq!(store.compact_prefix("o", 6), 1);
        assert_eq!(store.live_proof_total(), 0);
    }

    /// Sweep: random interleavings of issue/compact keep every view
    /// byte-identical to an uncompacted twin store.
    #[test]
    fn compaction_sweep_matches_uncompacted_twin() {
        let mut state = 0x9e37_79b9_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let compacted = ProofStore::new();
        let plain = ProofStore::new();
        for step in 0..400u32 {
            let obj = format!("o{}", rng() % 5);
            let a = Access::new(format!("op{}", rng() % 4), "r", format!("s{}", rng() % 3));
            compacted.issue(&obj, a.clone(), tp(step as f64));
            plain.issue(&obj, a, tp(step as f64));
            if rng() % 7 == 0 {
                let wm = compacted.watermark_of(&obj);
                compacted.compact_prefix(&obj, wm.saturating_sub((rng() % 4) as usize));
            }
        }
        assert_eq!(compacted.snapshot(), plain.snapshot());
        let mut t1 = AccessTable::new();
        let mut t2 = AccessTable::new();
        for i in 0..5 {
            let obj = format!("o{i}");
            assert_eq!(
                compacted.history_of(&obj, &mut t1).0,
                plain.history_of(&obj, &mut t2).0
            );
        }
        assert!(compacted.live_proof_total() < plain.live_proof_total());
    }
}
