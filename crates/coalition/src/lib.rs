//! # stacl-coalition — the coalition environment substrate
//!
//! Section 2 of the paper models a coalition as a set of cooperating,
//! mutually-trusting servers `S` exposing shared resources `R` on which
//! operations `OP` may be exercised, plus channels `Z`, variables `V` and
//! signals `E` for coordination among mobile objects. No third party
//! administers trust: each server enforces the coordinated access-control
//! policy locally, using execution proofs issued by its peers.
//!
//! This crate is the substrate the Naplet emulation (and the benches) run
//! on:
//!
//! * [`env`] — the server/resource registry ([`env::CoalitionEnv`]);
//! * [`clock`] — a shared continuous [`clock::VirtualClock`] (the paper's
//!   ℝ-time line; virtual so runs are reproducible and fast);
//! * [`channel`] — named FIFO channels with the `ch?x` / `ch!e` semantics
//!   of Definition 3.1 (non-blocking data structures; blocking behaviour
//!   is provided by the agent scheduler);
//! * [`signal`] — the `signal(ξ)` / `wait(ξ)` synchronisation board;
//! * [`proof`] — execution proofs `Pr_x` ([`proof::ProofStore`]): every
//!   granted access is recorded with its time and issuing server, and the
//!   store answers the queries Definition 3.6 needs;
//! * [`log`] — the audit log of granted/denied access decisions;
//! * [`ledger`] — the append-only, hash-chained audit ledger recording
//!   policy changes and sampled verdicts, verifiable offline;
//! * [`placement`] — the rendezvous-hash custody ring
//!   ([`placement::Placement`]): every member computes every object's
//!   home custodian deterministically, with no broadcast or directory;
//! * [`event`] — a generic discrete-event queue for the simulation core.
//!
//! All shared state is wrapped in lightweight in-tree (`stacl_ids::sync`) locks so a single
//! environment can be shared across worker threads in benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod clock;
pub mod env;
pub mod event;
pub mod ledger;
pub mod log;
pub mod placement;
pub mod proof;
pub mod signal;

pub use channel::ChannelHub;
pub use clock::VirtualClock;
pub use env::CoalitionEnv;
pub use event::EventQueue;
pub use ledger::{Ledger, LedgerEntry, LedgerKind};
pub use log::{AccessLog, Decision, DecisionKind, Verdict};
pub use placement::Placement;
pub use proof::{ExecutionProof, ProofStore};
pub use signal::SignalBoard;
