//! The coalition server/resource registry.
//!
//! Tracks which coalition servers exist, which shared resources each one
//! hosts, and which operations each resource supports. Private resources
//! (§2: "private resources in a site can be accessed under local control")
//! are out of scope — only *shared* resources are registered here.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use stacl_sral::ast::{name, Name};
use stacl_sral::Access;

/// A shared resource hosted by a server: its name and supported operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceInfo {
    /// The resource name.
    pub resource: Name,
    /// Operations the resource supports (e.g. read/write/execute).
    pub ops: BTreeSet<Name>,
}

/// The static topology of a coalition environment.
#[derive(Clone, Default, Debug)]
pub struct CoalitionEnv {
    /// server → resource → supported ops.
    servers: BTreeMap<Name, BTreeMap<Name, BTreeSet<Name>>>,
}

/// Errors raised when resolving an access against the environment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EnvError {
    /// The named server is not part of the coalition.
    UnknownServer(String),
    /// The server exists but does not host the resource.
    UnknownResource(String, String),
    /// The resource exists but does not support the operation.
    UnsupportedOp(String, String, String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::UnknownServer(s) => write!(f, "unknown coalition server `{s}`"),
            EnvError::UnknownResource(s, r) => {
                write!(f, "server `{s}` hosts no shared resource `{r}`")
            }
            EnvError::UnsupportedOp(s, r, op) => {
                write!(
                    f,
                    "resource `{r}` at `{s}` does not support operation `{op}`"
                )
            }
        }
    }
}

impl std::error::Error for EnvError {}

impl CoalitionEnv {
    /// An empty coalition.
    pub fn new() -> Self {
        CoalitionEnv::default()
    }

    /// Add a server (idempotent).
    pub fn add_server(&mut self, server: impl AsRef<str>) -> &mut Self {
        self.servers.entry(name(server)).or_default();
        self
    }

    /// Register a shared resource on a server with its supported
    /// operations, creating the server if needed. Repeated registration
    /// unions the operation sets.
    pub fn add_resource<S: AsRef<str>>(
        &mut self,
        server: impl AsRef<str>,
        resource: impl AsRef<str>,
        ops: impl IntoIterator<Item = S>,
    ) -> &mut Self {
        let entry = self
            .servers
            .entry(name(server))
            .or_default()
            .entry(name(resource))
            .or_default();
        for op in ops {
            entry.insert(name(op));
        }
        self
    }

    /// Does the coalition contain this server?
    pub fn has_server(&self, server: &str) -> bool {
        self.servers.contains_key(server)
    }

    /// Validate an access against the topology: the server must exist,
    /// host the resource, and support the operation.
    pub fn resolve(&self, access: &Access) -> Result<(), EnvError> {
        let resources = self
            .servers
            .get(&access.server)
            .ok_or_else(|| EnvError::UnknownServer(access.server.to_string()))?;
        let ops = resources.get(&access.resource).ok_or_else(|| {
            EnvError::UnknownResource(access.server.to_string(), access.resource.to_string())
        })?;
        if ops.contains(&access.op) {
            Ok(())
        } else {
            Err(EnvError::UnsupportedOp(
                access.server.to_string(),
                access.resource.to_string(),
                access.op.to_string(),
            ))
        }
    }

    /// All servers, in name order.
    pub fn servers(&self) -> impl Iterator<Item = &Name> {
        self.servers.keys()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The resources hosted by `server`, in name order.
    pub fn resources_of(&self, server: &str) -> impl Iterator<Item = ResourceInfo> + '_ {
        self.servers
            .get(server)
            .into_iter()
            .flat_map(|m| m.iter())
            .map(|(r, ops)| ResourceInfo {
                resource: r.clone(),
                ops: ops.clone(),
            })
    }

    /// Which servers host a resource with this name (resources may be
    /// replicated or sharded across the coalition).
    pub fn servers_hosting(&self, resource: &str) -> Vec<Name> {
        self.servers
            .iter()
            .filter(|(_, m)| m.contains_key(resource))
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// Every valid access in the environment, enumerated deterministically
    /// (useful for workload generation).
    pub fn all_accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for (s, resources) in &self.servers {
            for (r, ops) in resources {
                for op in ops {
                    out.push(Access {
                        op: op.clone(),
                        resource: r.clone(),
                        server: s.clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> CoalitionEnv {
        let mut e = CoalitionEnv::new();
        e.add_resource("s1", "db", ["read", "write"])
            .add_resource("s1", "app", ["exec"])
            .add_resource("s2", "db", ["read"])
            .add_server("s3");
        e
    }

    #[test]
    fn resolve_valid_access() {
        let e = env();
        assert!(e.resolve(&Access::new("read", "db", "s1")).is_ok());
        assert!(e.resolve(&Access::new("exec", "app", "s1")).is_ok());
    }

    #[test]
    fn resolve_errors_are_specific() {
        let e = env();
        assert!(matches!(
            e.resolve(&Access::new("read", "db", "s9")),
            Err(EnvError::UnknownServer(_))
        ));
        assert!(matches!(
            e.resolve(&Access::new("read", "app", "s2")),
            Err(EnvError::UnknownResource(_, _))
        ));
        assert!(matches!(
            e.resolve(&Access::new("write", "db", "s2")),
            Err(EnvError::UnsupportedOp(_, _, _))
        ));
    }

    #[test]
    fn registration_is_idempotent_and_unioning() {
        let mut e = env();
        e.add_resource("s1", "db", ["read"]); // already there
        e.add_resource("s1", "db", ["delete"]); // union in a new op
        assert!(e.resolve(&Access::new("delete", "db", "s1")).is_ok());
        assert_eq!(e.server_count(), 3);
    }

    #[test]
    fn servers_hosting_finds_replicas() {
        let e = env();
        let hosts = e.servers_hosting("db");
        assert_eq!(hosts.len(), 2);
        assert!(e.servers_hosting("nothing").is_empty());
    }

    #[test]
    fn empty_server_has_no_resources() {
        let e = env();
        assert!(e.has_server("s3"));
        assert_eq!(e.resources_of("s3").count(), 0);
    }

    #[test]
    fn all_accesses_enumeration() {
        let e = env();
        let all = e.all_accesses();
        // s1: db(read,write) + app(exec) = 3; s2: db(read) = 1.
        assert_eq!(all.len(), 4);
        assert!(all.contains(&Access::new("write", "db", "s1")));
    }
}
