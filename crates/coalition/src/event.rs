//! A generic discrete-event queue for the simulation core.
//!
//! Events are ordered by virtual time, with a monotone sequence number as
//! the tiebreaker so that simultaneous events fire in submission order —
//! this keeps every run fully deterministic regardless of hash-map
//! iteration or thread scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use stacl_temporal::TimePoint;

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: TimePoint,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn schedule(&mut self, time: TimePoint, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Remove and return the earliest event with its time.
    pub fn pop(&mut self) -> Option<(TimePoint, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<TimePoint> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(tp(3.0), "c");
        q.schedule(tp(1.0), "a");
        q.schedule(tp(2.0), "b");
        assert_eq!(q.pop(), Some((tp(1.0), "a")));
        assert_eq!(q.pop(), Some((tp(2.0), "b")));
        assert_eq!(q.pop(), Some((tp(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut q = EventQueue::new();
        q.schedule(tp(1.0), "first");
        q.schedule(tp(1.0), "second");
        q.schedule(tp(1.0), "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(tp(5.0), ());
        assert_eq!(q.peek_time(), Some(tp(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(tp(2.0), 2);
        assert_eq!(q.pop(), Some((tp(2.0), 2)));
        q.schedule(tp(1.0), 1);
        q.schedule(tp(3.0), 3);
        assert_eq!(q.pop(), Some((tp(1.0), 1)));
        assert_eq!(q.pop(), Some((tp(3.0), 3)));
        assert!(q.is_empty());
    }
}
