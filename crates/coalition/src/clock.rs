//! The shared virtual clock.
//!
//! The paper assumes a continuous time model with *no global physical
//! clock*; each server timestamps proofs with its local view. The
//! emulation uses one shared virtual clock advanced by the scheduler,
//! which both keeps runs reproducible and models the paper's time line ℝ
//! directly. An optional per-server skew can be applied to model the
//! absence of a global clock.

use stacl_ids::sync::Mutex;
use std::sync::Arc;

use stacl_temporal::{TimeDelta, TimePoint};

/// A monotone virtual clock shared by every component of a simulation.
#[derive(Clone, Debug)]
pub struct VirtualClock {
    inner: Arc<Mutex<TimePoint>>,
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        VirtualClock {
            inner: Arc::new(Mutex::new(TimePoint::ZERO)),
        }
    }

    /// A clock starting at an arbitrary origin.
    pub fn starting_at(t: TimePoint) -> Self {
        VirtualClock {
            inner: Arc::new(Mutex::new(t)),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> TimePoint {
        *self.inner.lock()
    }

    /// Advance the clock by a non-negative delta, returning the new time.
    pub fn advance(&self, by: TimeDelta) -> TimePoint {
        assert!(by.is_non_negative(), "clock cannot run backwards");
        let mut t = self.inner.lock();
        *t += by;
        *t
    }

    /// Jump the clock forward to `target` (no-op if already past it).
    pub fn advance_to(&self, target: TimePoint) -> TimePoint {
        let mut t = self.inner.lock();
        if target > *t {
            *t = target;
        }
        *t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), TimePoint::ZERO);
    }

    #[test]
    fn advances() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(TimeDelta::new(2.5)), TimePoint::new(2.5));
        assert_eq!(c.advance(TimeDelta::new(0.5)), TimePoint::new(3.0));
        assert_eq!(c.now(), TimePoint::new(3.0));
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::starting_at(TimePoint::new(10.0));
        assert_eq!(c.advance_to(TimePoint::new(5.0)), TimePoint::new(10.0));
        assert_eq!(c.advance_to(TimePoint::new(12.0)), TimePoint::new(12.0));
    }

    #[test]
    fn clones_share_state() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(TimeDelta::new(1.0));
        assert_eq!(c2.now(), TimePoint::new(1.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(TimeDelta::new(-1.0));
    }
}
