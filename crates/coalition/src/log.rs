//! The access-decision audit log.
//!
//! Every grant or denial made by a security guard is recorded with its
//! reason — the raw material for the overhead experiments (E4/E6) and for
//! demonstrating *who wins where* against the baseline models.

use std::fmt;
use std::sync::Arc;

use stacl_ids::sync::RwLock;
use stacl_sral::ast::Name;
use stacl_sral::Access;
use stacl_temporal::TimePoint;

/// The outcome class of an access decision.
///
/// Deliberately a fieldless `Copy` enum: the guard hot path returns it
/// without allocating. Human-readable detail (the failed constraint, the
/// exhausted budget, the topology error) travels separately as the
/// optional `reason` of a [`Verdict`] / [`Decision`] and is only
/// materialised on the denial path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DecisionKind {
    /// Granted: all checks passed.
    Granted,
    /// Denied: the requesting subject holds no role granting the
    /// permission.
    DeniedNoPermission,
    /// Denied: a spatial (SRAC) constraint failed.
    DeniedSpatial,
    /// Denied: the temporal validity duration was exhausted or the
    /// permission was not yet valid.
    DeniedTemporal,
    /// Denied: the access does not resolve in the coalition topology.
    DeniedUnknownTarget,
    /// Denied fail-safe: the object's custody is in flight between
    /// coalition members, resident on another member, or the coordination
    /// layer could not be reached.
    DeniedCoordination,
}

impl DecisionKind {
    /// True for `Granted`.
    pub fn is_granted(self) -> bool {
        matches!(self, DecisionKind::Granted)
    }

    /// A short stable label (used by logs and the CLI).
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Granted => "granted",
            DecisionKind::DeniedNoPermission => "denied-no-permission",
            DecisionKind::DeniedSpatial => "denied-spatial",
            DecisionKind::DeniedTemporal => "denied-temporal",
            DecisionKind::DeniedUnknownTarget => "denied-unknown-target",
            DecisionKind::DeniedCoordination => "denied-coordination",
        }
    }

    /// The telemetry counter this verdict kind increments (one per kind, so
    /// summing the verdict counters yields the total number of decisions).
    pub fn counter(self) -> stacl_obs::Counter {
        match self {
            DecisionKind::Granted => stacl_obs::Counter::VerdictGranted,
            DecisionKind::DeniedNoPermission => stacl_obs::Counter::VerdictDeniedNoPermission,
            DecisionKind::DeniedSpatial => stacl_obs::Counter::VerdictDeniedSpatial,
            DecisionKind::DeniedTemporal => stacl_obs::Counter::VerdictDeniedTemporal,
            DecisionKind::DeniedUnknownTarget => stacl_obs::Counter::VerdictDeniedUnknownTarget,
            DecisionKind::DeniedCoordination => stacl_obs::Counter::VerdictDeniedCoordination,
        }
    }
}

impl fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A guard's answer to one interception: the outcome class plus an
/// optional human-readable reason (populated only on denials — grants are
/// allocation-free).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// The outcome class.
    pub kind: DecisionKind,
    /// The [`stacl_ids::PolicyEpoch`] the decision was made under. Every
    /// decision runs against exactly one activated policy snapshot; the
    /// stamp makes that auditable (and lets the differential harness
    /// prove no decision ever mixes tables from two epochs). Verdicts
    /// synthesised outside a policy gate (topology denials, transport
    /// fail-safes) carry epoch 0.
    pub epoch: stacl_ids::PolicyEpoch,
    /// Detail for denials (failed constraint, exhausted budget, …).
    pub reason: Option<String>,
}

impl Verdict {
    /// An allocation-free grant.
    pub fn granted() -> Self {
        Verdict {
            kind: DecisionKind::Granted,
            epoch: 0,
            reason: None,
        }
    }

    /// A denial with a reason.
    pub fn denied(kind: DecisionKind, reason: impl Into<String>) -> Self {
        debug_assert!(!kind.is_granted(), "denied() called with Granted");
        Verdict {
            kind,
            epoch: 0,
            reason: Some(reason.into()),
        }
    }

    /// Stamp the policy epoch the decision was made under.
    pub fn with_epoch(mut self, epoch: stacl_ids::PolicyEpoch) -> Self {
        self.epoch = epoch;
        self
    }

    /// True for `Granted`.
    pub fn is_granted(&self) -> bool {
        self.kind.is_granted()
    }

    /// The reason text, or an empty string.
    pub fn reason_str(&self) -> &str {
        self.reason.as_deref().unwrap_or("")
    }
}

impl From<DecisionKind> for Verdict {
    fn from(kind: DecisionKind) -> Self {
        Verdict {
            kind,
            epoch: 0,
            reason: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            Some(r) => write!(f, "{} ({r})", self.kind),
            None => self.kind.fmt(f),
        }
    }
}

/// One audit-log entry: the unified decision record threaded through the
/// coalition log, the Naplet system and the CLI.
#[derive(Clone, PartialEq, Debug)]
pub struct Decision {
    /// The requesting mobile object.
    pub object: Name,
    /// The requested access.
    pub access: Access,
    /// When the decision was made.
    pub time: TimePoint,
    /// The outcome class.
    pub kind: DecisionKind,
    /// Detail for denials (failed constraint, exhausted budget, …).
    pub reason: Option<String>,
}

/// A shared, append-only audit log.
#[derive(Clone, Default, Debug)]
pub struct AccessLog {
    inner: Arc<RwLock<Vec<Decision>>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// Append a decision. Accepts a [`Verdict`] or a bare
    /// [`DecisionKind`].
    pub fn record(
        &self,
        object: impl AsRef<str>,
        access: Access,
        time: TimePoint,
        verdict: impl Into<Verdict>,
    ) {
        let v = verdict.into();
        self.inner.write().push(Decision {
            object: stacl_sral::ast::name(object),
            access,
            time,
            kind: v.kind,
            reason: v.reason,
        });
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Number of grants.
    pub fn granted_count(&self) -> usize {
        self.inner
            .read()
            .iter()
            .filter(|d| d.kind.is_granted())
            .count()
    }

    /// Number of denials.
    pub fn denied_count(&self) -> usize {
        self.len() - self.granted_count()
    }

    /// A snapshot of all decisions in order.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.inner.read().clone()
    }

    /// Decisions for one object, in order.
    pub fn for_object(&self, object: &str) -> Vec<Decision> {
        self.inner
            .read()
            .iter()
            .filter(|d| &*d.object == object)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn record_and_count() {
        let log = AccessLog::new();
        log.record(
            "o",
            Access::new("read", "r", "s"),
            tp(0.0),
            DecisionKind::Granted,
        );
        log.record(
            "o",
            Access::new("write", "r", "s"),
            tp(1.0),
            Verdict::denied(DecisionKind::DeniedSpatial, "count(0, 5, resource=r)"),
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.granted_count(), 1);
        assert_eq!(log.denied_count(), 1);
        let snap = log.snapshot();
        assert_eq!(snap[0].reason, None);
        assert_eq!(snap[1].reason.as_deref(), Some("count(0, 5, resource=r)"));
    }

    #[test]
    fn filter_by_object() {
        let log = AccessLog::new();
        log.record(
            "a",
            Access::new("x", "r", "s"),
            tp(0.0),
            DecisionKind::Granted,
        );
        log.record(
            "b",
            Access::new("y", "r", "s"),
            tp(0.0),
            DecisionKind::Granted,
        );
        assert_eq!(log.for_object("a").len(), 1);
        assert_eq!(log.for_object("c").len(), 0);
    }

    #[test]
    fn decision_kinds_classify() {
        assert!(DecisionKind::Granted.is_granted());
        assert!(!DecisionKind::DeniedNoPermission.is_granted());
        assert!(Verdict::granted().is_granted());
        let v = Verdict::denied(DecisionKind::DeniedTemporal, "expired");
        assert!(!v.is_granted());
        assert_eq!(v.to_string(), "denied-temporal (expired)");
    }

    #[test]
    fn verdict_from_kind_has_no_reason() {
        let v: Verdict = DecisionKind::DeniedNoPermission.into();
        assert_eq!(v.reason, None);
        assert_eq!(v.reason_str(), "");
    }
}
