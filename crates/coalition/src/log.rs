//! The access-decision audit log.
//!
//! Every grant or denial made by a security guard is recorded with its
//! reason — the raw material for the overhead experiments (E4/E6) and for
//! demonstrating *who wins where* against the baseline models.

use std::sync::Arc;

use parking_lot::RwLock;
use stacl_sral::ast::Name;
use stacl_sral::Access;
use stacl_temporal::TimePoint;

/// Why an access was granted or denied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecisionKind {
    /// Granted: all checks passed.
    Granted,
    /// Denied: the requesting subject holds no role granting the
    /// permission.
    DeniedNoPermission,
    /// Denied: a spatial (SRAC) constraint failed.
    DeniedSpatial {
        /// Rendering of the failed constraint.
        constraint: String,
    },
    /// Denied: the temporal validity duration was exhausted or the
    /// permission was not yet valid.
    DeniedTemporal {
        /// Human-readable reason (e.g. "validity duration exhausted").
        reason: String,
    },
    /// Denied: the access does not resolve in the coalition topology.
    DeniedUnknownTarget {
        /// The topology error text.
        reason: String,
    },
}

impl DecisionKind {
    /// True for `Granted`.
    pub fn is_granted(&self) -> bool {
        matches!(self, DecisionKind::Granted)
    }
}

/// One audit-log entry.
#[derive(Clone, PartialEq, Debug)]
pub struct Decision {
    /// The requesting mobile object.
    pub object: Name,
    /// The requested access.
    pub access: Access,
    /// When the decision was made.
    pub time: TimePoint,
    /// The outcome.
    pub kind: DecisionKind,
}

/// A shared, append-only audit log.
#[derive(Clone, Default, Debug)]
pub struct AccessLog {
    inner: Arc<RwLock<Vec<Decision>>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// Append a decision.
    pub fn record(&self, object: impl AsRef<str>, access: Access, time: TimePoint, kind: DecisionKind) {
        self.inner.write().push(Decision {
            object: stacl_sral::ast::name(object),
            access,
            time,
            kind,
        });
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Number of grants.
    pub fn granted_count(&self) -> usize {
        self.inner.read().iter().filter(|d| d.kind.is_granted()).count()
    }

    /// Number of denials.
    pub fn denied_count(&self) -> usize {
        self.len() - self.granted_count()
    }

    /// A snapshot of all decisions in order.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.inner.read().clone()
    }

    /// Decisions for one object, in order.
    pub fn for_object(&self, object: &str) -> Vec<Decision> {
        self.inner
            .read()
            .iter()
            .filter(|d| &*d.object == object)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn record_and_count() {
        let log = AccessLog::new();
        log.record("o", Access::new("read", "r", "s"), tp(0.0), DecisionKind::Granted);
        log.record(
            "o",
            Access::new("write", "r", "s"),
            tp(1.0),
            DecisionKind::DeniedSpatial {
                constraint: "count(0, 5, resource=r)".into(),
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.granted_count(), 1);
        assert_eq!(log.denied_count(), 1);
    }

    #[test]
    fn filter_by_object() {
        let log = AccessLog::new();
        log.record("a", Access::new("x", "r", "s"), tp(0.0), DecisionKind::Granted);
        log.record("b", Access::new("y", "r", "s"), tp(0.0), DecisionKind::Granted);
        assert_eq!(log.for_object("a").len(), 1);
        assert_eq!(log.for_object("c").len(), 0);
    }

    #[test]
    fn decision_kinds_classify() {
        assert!(DecisionKind::Granted.is_granted());
        assert!(!DecisionKind::DeniedNoPermission.is_granted());
        assert!(!DecisionKind::DeniedTemporal {
            reason: "expired".into()
        }
        .is_granted());
    }
}
