//! Named FIFO channels — the `Z` of the system model and the `ch?x` /
//! `ch!e` constructs of Definition 3.1.
//!
//! Semantics from the paper: `ch?x` takes a value from the channel,
//! *waiting* while it is empty; `ch!e` appends a value and wakes waiters.
//! The hub itself is non-blocking (`try_recv` returns `None` on empty);
//! the agent scheduler implements the waiting by parking the agent until
//! the channel becomes non-empty.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use stacl_ids::sync::Mutex;
use stacl_sral::ast::{name, Name};
use stacl_sral::Value;

/// A hub of named channels, shareable across threads.
#[derive(Clone, Default, Debug)]
pub struct ChannelHub {
    inner: Arc<Mutex<HashMap<Name, VecDeque<Value>>>>,
}

impl ChannelHub {
    /// An empty hub; channels are created on first use.
    pub fn new() -> Self {
        ChannelHub::default()
    }

    /// Append `value` to channel `ch` (the `ch!e` action).
    pub fn send(&self, ch: impl AsRef<str>, value: Value) {
        self.inner
            .lock()
            .entry(name(ch))
            .or_default()
            .push_back(value);
    }

    /// Take the oldest value from `ch`, or `None` when the channel is
    /// empty (the scheduler then blocks the agent).
    pub fn try_recv(&self, ch: &str) -> Option<Value> {
        self.inner.lock().get_mut(ch)?.pop_front()
    }

    /// Number of queued values on `ch`.
    pub fn len(&self, ch: &str) -> usize {
        self.inner.lock().get(ch).map_or(0, VecDeque::len)
    }

    /// True when `ch` has no queued values.
    pub fn is_empty(&self, ch: &str) -> bool {
        self.len(ch) == 0
    }

    /// Names of all channels that currently hold at least one value.
    pub fn ready_channels(&self) -> Vec<Name> {
        self.inner
            .lock()
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(n, _)| n.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let hub = ChannelHub::new();
        hub.send("ch", Value::Int(1));
        hub.send("ch", Value::Int(2));
        assert_eq!(hub.try_recv("ch"), Some(Value::Int(1)));
        assert_eq!(hub.try_recv("ch"), Some(Value::Int(2)));
        assert_eq!(hub.try_recv("ch"), None);
    }

    #[test]
    fn empty_and_unknown_channels() {
        let hub = ChannelHub::new();
        assert!(hub.is_empty("nope"));
        assert_eq!(hub.try_recv("nope"), None);
        assert_eq!(hub.len("nope"), 0);
    }

    #[test]
    fn channels_are_independent() {
        let hub = ChannelHub::new();
        hub.send("a", Value::Int(1));
        hub.send("b", Value::Bool(true));
        assert_eq!(hub.try_recv("b"), Some(Value::Bool(true)));
        assert_eq!(hub.len("a"), 1);
    }

    #[test]
    fn ready_channels_lists_nonempty() {
        let hub = ChannelHub::new();
        hub.send("a", Value::Int(1));
        hub.send("b", Value::Int(2));
        let _ = hub.try_recv("b");
        let ready = hub.ready_channels();
        assert_eq!(ready.len(), 1);
        assert_eq!(&*ready[0], "a");
    }

    #[test]
    fn clones_share_queues() {
        let hub = ChannelHub::new();
        let hub2 = hub.clone();
        hub.send("ch", Value::Int(9));
        assert_eq!(hub2.try_recv("ch"), Some(Value::Int(9)));
    }
}
