//! The signal board — `signal(ξ)` / `wait(ξ)` order synchronisation.
//!
//! Definition 3.1: `signal(ξ)` must be performed before `wait(ξ)` can
//! proceed. Signals are sticky (once raised they stay raised), matching
//! the paper's order-synchronisation reading; a consuming variant is also
//! provided for producer/consumer patterns.

use std::collections::HashMap;
use std::sync::Arc;

use stacl_ids::sync::Mutex;
use stacl_sral::ast::{name, Name};

/// A board of named sticky signals, shareable across threads.
#[derive(Clone, Default, Debug)]
pub struct SignalBoard {
    /// signal → number of times raised.
    inner: Arc<Mutex<HashMap<Name, u64>>>,
}

impl SignalBoard {
    /// An empty board.
    pub fn new() -> Self {
        SignalBoard::default()
    }

    /// Raise a signal (the `signal(ξ)` action).
    pub fn raise(&self, sig: impl AsRef<str>) {
        *self.inner.lock().entry(name(sig)).or_insert(0) += 1;
    }

    /// Has the signal been raised at least once? (The `wait(ξ)` guard:
    /// when false, the waiting agent parks.)
    pub fn is_raised(&self, sig: &str) -> bool {
        self.inner.lock().get(sig).copied().unwrap_or(0) > 0
    }

    /// Number of times the signal has been raised.
    pub fn count(&self, sig: &str) -> u64 {
        self.inner.lock().get(sig).copied().unwrap_or(0)
    }

    /// Consume one raising of the signal, returning whether one was
    /// available — for rendezvous-style uses where each `signal` admits
    /// exactly one `wait`.
    pub fn try_consume(&self, sig: &str) -> bool {
        let mut map = self.inner.lock();
        match map.get_mut(sig) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticky_semantics() {
        let b = SignalBoard::new();
        assert!(!b.is_raised("go"));
        b.raise("go");
        assert!(b.is_raised("go"));
        assert!(b.is_raised("go"), "signals stay raised");
    }

    #[test]
    fn counts_accumulate() {
        let b = SignalBoard::new();
        b.raise("x");
        b.raise("x");
        assert_eq!(b.count("x"), 2);
        assert_eq!(b.count("y"), 0);
    }

    #[test]
    fn consume_decrements() {
        let b = SignalBoard::new();
        b.raise("x");
        assert!(b.try_consume("x"));
        assert!(!b.try_consume("x"));
        assert!(!b.is_raised("x"));
    }

    #[test]
    fn clones_share_state() {
        let b = SignalBoard::new();
        let b2 = b.clone();
        b.raise("go");
        assert!(b2.is_raised("go"));
    }
}
