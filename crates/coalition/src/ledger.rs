//! The append-only, hash-chained audit ledger.
//!
//! A coalition renegotiating its policy at run time needs an audit trail
//! that outlives any single member: *which* policy was active when, and
//! *what* was decided under it. The ledger records every policy change
//! and a sample of verdicts as a chain of entries, each carrying the
//! FNV-1a hash of (previous hash ‖ sequence number ‖ kind ‖ payload) —
//! so truncation, reordering or in-place edits of the serialized ledger
//! are detectable offline by anyone holding only the file
//! (`stacl ledger verify`).
//!
//! The chain is *tamper-evident*, not tamper-proof: FNV-1a is not a
//! cryptographic hash, and there is no signing. That matches the paper's
//! trust model — coalition members are mutually trusting; the ledger
//! defends against accidents (lost writes, interleaved appends, file
//! corruption), not adversaries.
//!
//! ## Serialized form
//!
//! One line per entry, `|`-separated, hashes in fixed-width hex:
//!
//! ```text
//! 0|policy|epoch=1 policy-fnv=6b0c9f1e22334455|0000000000000000|9ae16a3b2f90404f
//! 1|verdict|t=3 obj=n0 access=read:r0@s1 verdict=granted epoch=1|9ae16a3b2f90404f|c3a5298e61f4b021
//! ```
//!
//! Payloads never contain `|` or newlines (appends sanitize them away),
//! so the format needs no quoting.

use std::fmt;

use stacl_obs::Counter;

/// The 64-bit FNV-1a hash of a byte string (the workspace is
/// zero-external-dependency; FNV is small, fast and good enough for a
/// tamper-evident — not cryptographic — chain).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What an entry records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerKind {
    /// A policy change: an epoch was activated.
    PolicyChange,
    /// A (sampled) access verdict.
    Verdict,
    /// Free-form annotation (episode boundaries, operator notes).
    Note,
}

impl LedgerKind {
    /// Stable serialized tag.
    pub fn label(self) -> &'static str {
        match self {
            LedgerKind::PolicyChange => "policy",
            LedgerKind::Verdict => "verdict",
            LedgerKind::Note => "note",
        }
    }

    /// Parse the serialized tag.
    pub fn parse(s: &str) -> Option<LedgerKind> {
        match s {
            "policy" => Some(LedgerKind::PolicyChange),
            "verdict" => Some(LedgerKind::Verdict),
            "note" => Some(LedgerKind::Note),
            _ => None,
        }
    }
}

impl fmt::Display for LedgerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One chained entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerEntry {
    /// Position in the chain, starting at 0.
    pub seq: u64,
    /// What the entry records.
    pub kind: LedgerKind,
    /// The record itself (no `|` or newlines).
    pub payload: String,
    /// The previous entry's hash (0 for the first entry).
    pub prev: u64,
    /// FNV-1a over `prev ‖ seq ‖ kind ‖ payload`.
    pub hash: u64,
}

impl LedgerEntry {
    /// Recompute the hash this entry *should* carry given its fields.
    fn expected_hash(&self) -> u64 {
        hash_entry(self.prev, self.seq, self.kind, &self.payload)
    }
}

fn hash_entry(prev: u64, seq: u64, kind: LedgerKind, payload: &str) -> u64 {
    let mut buf = Vec::with_capacity(payload.len() + 32);
    buf.extend_from_slice(&prev.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(kind.label().as_bytes());
    buf.push(b'|');
    buf.extend_from_slice(payload.as_bytes());
    fnv1a(&buf)
}

/// The append-only hash chain.
#[derive(Clone, Default, Debug)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in chain order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Append one entry. The payload is sanitized (`|` and newlines
    /// become spaces) so the line format stays unambiguous.
    pub fn append(&mut self, kind: LedgerKind, payload: impl Into<String>) -> &LedgerEntry {
        let payload: String = payload
            .into()
            .chars()
            .map(|c| {
                if c == '|' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let seq = self.entries.len() as u64;
        let prev = self.entries.last().map(|e| e.hash).unwrap_or(0);
        let hash = hash_entry(prev, seq, kind, &payload);
        stacl_obs::count(Counter::LedgerAppend);
        self.entries.push(LedgerEntry {
            seq,
            kind,
            payload,
            prev,
            hash,
        });
        self.entries.last().expect("just pushed")
    }

    /// Record a policy activation: the epoch and the FNV-1a of the
    /// rendered policy text (the text itself may be large and may contain
    /// arbitrary constraint syntax; the fingerprint is what offline
    /// verification needs).
    pub fn record_policy_change(&mut self, epoch: u64, policy_fnv: u64) {
        self.append(
            LedgerKind::PolicyChange,
            format!("epoch={epoch} policy-fnv={policy_fnv:016x}"),
        );
    }

    /// Record one (sampled) verdict.
    pub fn record_verdict(&mut self, time: f64, object: &str, access: &str, verdict: &Verdict) {
        self.append(
            LedgerKind::Verdict,
            format!(
                "t={time} obj={object} access={access} verdict={} epoch={}",
                verdict.kind.label(),
                verdict.epoch
            ),
        );
    }

    /// Serialize to the line format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}|{}|{}|{:016x}|{:016x}",
                e.seq, e.kind, e.payload, e.prev, e.hash
            );
        }
        out
    }

    /// Parse a serialized ledger. Structural errors (wrong field count,
    /// bad numbers) are reported with their 1-based line; chain
    /// *integrity* is [`Ledger::verify`]'s job.
    pub fn parse(text: &str) -> Result<Ledger, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('|').collect();
            let [seq, kind, payload, prev, hash] = parts.as_slice() else {
                return Err(format!(
                    "ledger line {line_no}: expected 5 `|`-separated fields, found {}",
                    parts.len()
                ));
            };
            let seq: u64 = seq
                .parse()
                .map_err(|_| format!("ledger line {line_no}: bad seq `{seq}`"))?;
            let kind = LedgerKind::parse(kind)
                .ok_or_else(|| format!("ledger line {line_no}: unknown kind `{kind}`"))?;
            let prev = u64::from_str_radix(prev, 16)
                .map_err(|_| format!("ledger line {line_no}: bad prev hash `{prev}`"))?;
            let hash = u64::from_str_radix(hash, 16)
                .map_err(|_| format!("ledger line {line_no}: bad hash `{hash}`"))?;
            entries.push(LedgerEntry {
                seq,
                kind,
                payload: payload.to_string(),
                prev,
                hash,
            });
        }
        Ok(Ledger { entries })
    }

    /// Recompute the whole chain and report the first inconsistency:
    /// a gap or reordering in sequence numbers, a broken `prev` link, or
    /// an entry whose recorded hash does not match its contents.
    pub fn verify(&self) -> Result<(), String> {
        let mut prev = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(format!(
                    "entry {i}: sequence number {} (chain truncated or reordered)",
                    e.seq
                ));
            }
            if e.prev != prev {
                return Err(format!(
                    "entry {i}: prev hash {:016x} does not match predecessor's {prev:016x}",
                    e.prev
                ));
            }
            let expect = e.expected_hash();
            if e.hash != expect {
                return Err(format!(
                    "entry {i}: recorded hash {:016x} != recomputed {expect:016x} \
                     (payload altered?)",
                    e.hash
                ));
            }
            prev = e.hash;
        }
        Ok(())
    }
}

use crate::log::Verdict;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::DecisionKind;

    #[test]
    fn chain_round_trips_and_verifies() {
        let mut l = Ledger::new();
        l.record_policy_change(1, fnv1a(b"role r\n"));
        l.record_verdict(3.0, "n0", "read:r0@s1", &Verdict::granted().with_epoch(1));
        l.append(LedgerKind::Note, "episode seed=7 done");
        assert_eq!(l.len(), 3);
        l.verify().expect("fresh chain verifies");

        let text = l.render();
        let back = Ledger::parse(&text).expect("parses");
        assert_eq!(back.entries(), l.entries());
        back.verify().expect("parsed chain verifies");
    }

    #[test]
    fn tampering_is_detected() {
        let mut l = Ledger::new();
        l.record_policy_change(1, 42);
        l.record_policy_change(2, 43);
        l.record_policy_change(3, 44);
        let text = l.render();

        // Payload edit.
        let edited = text.replace("epoch=2", "epoch=9");
        let bad = Ledger::parse(&edited).unwrap();
        assert!(bad.verify().is_err(), "payload edit must break the chain");

        // Dropped middle line (truncation is caught by seq/prev checks).
        let dropped: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let bad = Ledger::parse(&dropped).unwrap();
        assert!(bad.verify().is_err(), "dropped entry must break the chain");

        // Swapped lines.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(0, 1);
        let swapped = lines.join("\n");
        let bad = Ledger::parse(&swapped).unwrap();
        assert!(bad.verify().is_err(), "reordering must break the chain");
    }

    #[test]
    fn payload_sanitization_keeps_lines_parseable() {
        let mut l = Ledger::new();
        l.append(LedgerKind::Note, "weird|payload\nwith breaks");
        let text = l.render();
        let back = Ledger::parse(&text).unwrap();
        back.verify().unwrap();
        assert_eq!(back.entries()[0].payload, "weird payload with breaks");
    }

    #[test]
    fn verdict_entries_carry_epochs() {
        let mut l = Ledger::new();
        let v = Verdict::denied(DecisionKind::DeniedSpatial, "count(0, 5, all)").with_epoch(4);
        l.record_verdict(1.5, "n1", "write:r1@s0", &v);
        let p = &l.entries()[0].payload;
        assert!(p.contains("verdict=denied-spatial"), "{p}");
        assert!(p.contains("epoch=4"), "{p}");
    }
}
