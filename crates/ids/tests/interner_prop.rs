//! Property tests for the interner: name→id→name round-trips, idempotent
//! interning, dense id allocation, and agreement between the lock-free
//! read path (`get`) and the interning path — across every id kind and
//! under concurrent interning.

use stacl_ids::prop::forall;
use stacl_ids::rng::SplitMix64;
use stacl_ids::{IdKind, Interner, ObjectId, PermId, RoleId};

fn random_name(rng: &mut SplitMix64) -> String {
    // Small universe so re-interning the same name is common.
    format!("name-{}", rng.next_u64() % 64)
}

#[test]
fn intern_resolve_roundtrip() {
    forall("intern_resolve_roundtrip", 0x1d5, 64, |rng| {
        let interner: Interner<ObjectId> = Interner::new();
        for _ in 0..100 {
            let name = random_name(rng);
            let id = interner.intern(&name);
            // resolve inverts intern…
            assert_eq!(&*interner.resolve(id), name.as_str());
            assert_eq!(interner.try_resolve(id).as_deref(), Some(name.as_str()));
            // …and interning is idempotent, with `get` agreeing.
            assert_eq!(interner.intern(&name), id);
            assert_eq!(interner.get(&name), Some(id));
        }
        // Ids are dense: every index below len resolves.
        for i in 0..interner.len() {
            let id = ObjectId::from_index(i as u32);
            assert!(interner.try_resolve(id).is_some());
            assert_eq!(id.as_usize(), i);
        }
    });
}

#[test]
fn distinct_names_get_distinct_ids() {
    forall("distinct_names_get_distinct_ids", 0x2e6, 64, |rng| {
        let interner: Interner<RoleId> = Interner::new();
        let names: Vec<String> = (0..50).map(|_| random_name(rng)).collect();
        let ids: Vec<RoleId> = names.iter().map(|n| interner.intern(n)).collect();
        for (i, (na, ia)) in names.iter().zip(&ids).enumerate() {
            for (nb, ib) in names.iter().zip(&ids).skip(i + 1) {
                assert_eq!(na == nb, ia == ib, "{na} vs {nb}");
            }
        }
        // The snapshot lists every distinct name exactly once, in id order.
        let snapshot = interner.snapshot();
        assert_eq!(snapshot.len(), interner.len());
        for (i, n) in snapshot.iter().enumerate() {
            assert_eq!(interner.get(n), Some(RoleId::from_index(i as u32)));
        }
    });
}

#[test]
fn concurrent_interning_is_consistent() {
    forall("concurrent_interning_is_consistent", 0x3f7, 16, |rng| {
        let interner: Interner<PermId> = Interner::new();
        let names: Vec<String> = (0..32).map(|_| random_name(rng)).collect();
        std::thread::scope(|scope| {
            for offset in 0..4usize {
                let interner = &interner;
                let names = &names;
                scope.spawn(move || {
                    for i in 0..names.len() {
                        interner.intern(&names[(i + offset * 8) % names.len()]);
                    }
                });
            }
        });
        // Whatever the interleaving, the mapping is a bijection.
        for name in &names {
            let id = interner.get(name).expect("every name was interned");
            assert_eq!(&*interner.resolve(id), name.as_str());
        }
        let distinct: std::collections::HashSet<&str> = names.iter().map(|s| s.as_str()).collect();
        assert_eq!(interner.len(), distinct.len());
    });
}
