//! A tiny deterministic pseudo-random generator (SplitMix64) for seeded
//! workload generation and property tests. Not cryptographic; chosen for
//! determinism, speed, and zero dependencies.

use std::ops::Range;

/// Steele, Lea & Flood's SplitMix64: a full-period 64-bit generator with
/// excellent statistical quality for its size.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator (same name as `rand::SeedableRng` for easy
    /// migration of call sites).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from a half-open range (like `rand::Rng::gen_range`
    /// restricted to `low..high` ranges).
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// A Bernoulli draw with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased-enough draw in `[0, bound)` via 128-bit widening
    /// multiplication (Lemire's method without the rejection step — the
    /// residual bias is ≤ 2⁻⁶⁴·bound, irrelevant for tests and benches).
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

/// Types that can be sampled uniformly from a `low..high` range.
pub trait SampleRange: Sized {
    /// Draw a uniform value in `[range.start, range.end)`.
    fn sample(range: Range<Self>, rng: &mut SplitMix64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(range: Range<Self>, rng: &mut SplitMix64) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange for f64 {
    fn sample(range: Range<Self>, rng: &mut SplitMix64) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_all_residues() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
