//! A seeded, deterministic property-test driver.
//!
//! [`forall`] runs a property closure over many independently seeded
//! generator states. Every run of the suite explores the same cases, so a
//! failure reproduces exactly; the panic message names the failing case's
//! seed so it can be replayed in isolation with [`replay`].

use crate::rng::SplitMix64;

/// Derive the per-case seed from the suite seed and the case index.
fn case_seed(seed: u64, case: u64) -> u64 {
    // One SplitMix64 step keeps neighbouring cases decorrelated.
    SplitMix64::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Run `property` against `cases` deterministic generator states.
///
/// On failure the panic is re-raised with the property name, case index
/// and case seed prepended, so the case can be replayed via [`replay`].
pub fn forall<F>(name: &str, seed: u64, cases: u64, mut property: F)
where
    F: FnMut(&mut SplitMix64),
{
    for case in 0..cases {
        let cs = case_seed(seed, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = SplitMix64::seed_from_u64(cs);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} (case seed {cs:#x}); \
                 replay with prop::replay({cs:#x}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single failing case from the seed printed by [`forall`].
pub fn replay<F>(case_seed: u64, mut property: F)
where
    F: FnMut(&mut SplitMix64),
{
    let mut rng = SplitMix64::seed_from_u64(case_seed);
    property(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_quietly() {
        forall("add-commutes", 1, 64, |rng| {
            let a = rng.gen_range(0u32..1000);
            let b = rng.gen_range(0u32..1000);
            assert_eq!(a + b, b + a);
        });
    }

    #[test]
    fn failures_propagate() {
        let r = std::panic::catch_unwind(|| {
            forall("always-fails", 1, 8, |_| panic!("expected"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        forall("record", 9, 16, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        forall("record", 9, 16, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
