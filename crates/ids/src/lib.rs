//! # stacl-ids — the workspace-wide identity layer
//!
//! The `trace` crate interns concrete accesses into dense `u32`
//! [`AccessId`](https://docs.rs)-style symbols so the automata work on
//! integers instead of strings. This crate extends that idea to every
//! name the decision gate touches: mobile objects, coalition servers,
//! roles, permissions and resources each get their own `u32` newtype, and
//! a thread-safe [`Interner`] maps names to ids exactly once — at
//! policy-load or enrollment time — so the per-access hot path hashes and
//! compares machine words, never heap strings.
//!
//! The crate is dependency-free and also hosts the small pieces of
//! infrastructure the rest of the workspace previously pulled from
//! external crates (which are unavailable in hermetic builds):
//!
//! * [`sync`] — `Mutex`/`RwLock` wrappers over `std::sync` with the
//!   ergonomic poison-free guard API the code was written against;
//! * [`rng`] — a tiny deterministic SplitMix64 generator for seeded
//!   workload generation;
//! * [`prop`] — a seeded property-test driver (`forall`) used by the
//!   randomized test suites;
//! * [`json`] — the shared pretty-printed JSON emitter behind metrics
//!   snapshots and bench artifacts.
//!
//! It also defines [`PolicyEpoch`], the coalition-wide version stamp of
//! an activated policy: epoch 0 is the policy a process booted with, and
//! every live rollout activates a strictly larger epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod prop;
pub mod rng;
pub mod sync;

/// The coalition-wide version stamp of an activated policy.
///
/// Plain `u64` semantics by design: epochs are proposed by a coordinator,
/// must strictly increase at every activation, and are compared/stamped on
/// hot paths (every verdict carries the epoch it was decided under), so a
/// transparent alias keeps the stamp allocation- and ceremony-free.
pub type PolicyEpoch = u64;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::sync::RwLock;

/// A dense `u32`-backed identifier kind. Implemented by the typed id
/// newtypes ([`ObjectId`], [`ServerId`], [`RoleId`], [`PermId`],
/// [`ResourceId`]); each kind gets its own [`Interner`] namespace so ids
/// of different kinds cannot be confused.
pub trait IdKind: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Construct from a dense index.
    fn from_index(index: u32) -> Self;
    /// The dense index backing this id.
    fn index(self) -> u32;
    /// The index as `usize`, for direct `Vec` indexing.
    fn as_usize(self) -> usize {
        self.index() as usize
    }
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl IdKind for $name {
            fn from_index(index: u32) -> Self {
                $name(index)
            }
            fn index(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// An interned mobile-object (agent) identity.
    ObjectId
);
define_id!(
    /// An interned coalition-server name.
    ServerId
);
define_id!(
    /// An interned RBAC role name.
    RoleId
);
define_id!(
    /// An interned permission name.
    PermId
);
define_id!(
    /// An interned shared-resource name.
    ResourceId
);
define_id!(
    /// An interned validity-class name (shared temporal budgets).
    ClassId
);

/// A thread-safe string interner producing dense typed ids.
///
/// Names are interned once (write lock) and thereafter resolved by cheap
/// read-locked lookups; [`Interner::get`] and [`Interner::resolve`]
/// never allocate, so they are safe to call on the per-access hot path.
pub struct Interner<I: IdKind> {
    inner: RwLock<Inner>,
    _kind: std::marker::PhantomData<fn() -> I>,
}

struct Inner {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl<I: IdKind> Default for Interner<I> {
    fn default() -> Self {
        Interner {
            inner: RwLock::new(Inner {
                names: Vec::new(),
                index: HashMap::new(),
            }),
            _kind: std::marker::PhantomData,
        }
    }
}

impl<I: IdKind> fmt::Debug for Interner<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Interner")
            .field("len", &inner.names.len())
            .finish()
    }
}

impl<I: IdKind> Interner<I> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern a name, returning its id (existing or freshly assigned).
    pub fn intern(&self, name: &str) -> I {
        if let Some(id) = self.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&raw) = inner.index.get(name) {
            return I::from_index(raw);
        }
        let raw = u32::try_from(inner.names.len()).expect("interner capacity exceeded");
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&shared));
        inner.index.insert(shared, raw);
        I::from_index(raw)
    }

    /// Look up an already-interned name without allocating.
    pub fn get(&self, name: &str) -> Option<I> {
        self.inner
            .read()
            .index
            .get(name)
            .copied()
            .map(I::from_index)
    }

    /// The name behind an id. Panics if the id was not produced by this
    /// interner.
    pub fn resolve(&self, id: I) -> Arc<str> {
        self.try_resolve(id).expect("id not in interner")
    }

    /// The name behind an id, if it belongs to this interner.
    pub fn try_resolve(&self, id: I) -> Option<Arc<str>> {
        self.inner.read().names.get(id.as_usize()).cloned()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all interned names in id order.
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().names.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let it: Interner<ObjectId> = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(it.intern("alpha"), a);
        assert_eq!(it.len(), 2);
        assert_eq!(&*it.resolve(a), "alpha");
        assert_eq!(it.get("beta"), Some(b));
        assert_eq!(it.get("gamma"), None);
    }

    #[test]
    fn kinds_are_distinct_types() {
        let objects: Interner<ObjectId> = Interner::new();
        let roles: Interner<RoleId> = Interner::new();
        let o = objects.intern("x");
        let r = roles.intern("x");
        assert_eq!(o.index(), r.index());
        // (o == r) would not compile: the ids are different types.
    }

    #[test]
    fn concurrent_interning_agrees() {
        let it: Arc<Interner<ServerId>> = Arc::new(Interner::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let it = Arc::clone(&it);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| it.intern(&format!("s{}", (i + t) % 50)).index())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(it.len(), 50);
        // Every name resolves back to itself.
        for i in 0..it.len() as u32 {
            let name = it.resolve(ServerId(i));
            assert_eq!(it.get(&name), Some(ServerId(i)));
        }
    }
}
