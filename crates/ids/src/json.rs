//! A tiny dependency-free JSON emitter shared by every crate that renders
//! machine-readable reports (`stacl-obs` metrics snapshots, the bench
//! bins' `BENCH_*.json` artifacts).
//!
//! One pretty-printed dialect, one implementation: objects put every
//! field on its own line at two-space indentation; arrays render inline.
//! Keys and string values are escaped minimally (quote, backslash,
//! control characters) — the writers only emit identifier-like keys and
//! short labels, but the escaping keeps the output well-formed even if a
//! caller passes something unusual.

use std::fmt::Write as _;

/// Escape a string for embedding inside JSON double quotes.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render an `f64` the way the reports always have: finite values via
/// `{}` (shortest round-trip form), non-finite values as `null` (JSON has
/// no NaN/Inf literals).
pub fn f64_str(x: f64) -> String {
    if x.is_finite() {
        // Ensure a decimal point so consumers see a JSON number that is
        // unambiguously floating-point.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// A streaming pretty-printed JSON writer.
///
/// ```
/// use stacl_ids::json::JsonWriter;
/// let mut w = JsonWriter::object();
/// w.field_str("experiment", "E0");
/// w.open_object("totals");
/// w.field_u64("decisions", 42);
/// w.close();
/// w.array_u64("buckets", [1, 2, 3]);
/// let text = w.finish();
/// assert!(text.starts_with("{\n  \"experiment\": \"E0\","));
/// assert!(text.ends_with("}\n"));
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    /// Whether each currently-open object already holds an entry (drives
    /// comma placement).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Start a root object.
    pub fn object() -> Self {
        JsonWriter {
            out: String::from("{"),
            stack: vec![false],
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Newline + indent + quoted key + `: `, with the comma for the
    /// previous sibling if any.
    fn key(&mut self, key: &str) {
        if let Some(top) = self.stack.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
        self.out.push('\n');
        self.indent();
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\": ");
    }

    /// A field whose value is already rendered JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw);
    }

    /// An unsigned-integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        let _ = write!(self.out, "{v}");
    }

    /// A `usize` field.
    pub fn field_usize(&mut self, key: &str, v: usize) {
        self.field_u64(key, v as u64);
    }

    /// A floating-point field (non-finite renders as `null`).
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.key(key);
        let s = f64_str(v);
        self.out.push_str(&s);
    }

    /// A boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// A string field.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Open a nested object under `key`; close with [`JsonWriter::close`].
    pub fn open_object(&mut self, key: &str) {
        self.key(key);
        self.out.push('{');
        self.stack.push(false);
    }

    /// Close the innermost nested object.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "close() called on the root object");
        self.stack.pop();
        self.out.push('\n');
        self.indent();
        self.out.push('}');
    }

    /// An inline array of unsigned integers.
    pub fn array_u64(&mut self, key: &str, items: impl IntoIterator<Item = u64>) {
        self.key(key);
        self.out.push('[');
        for (i, v) in items.into_iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
    }

    /// An inline array of strings.
    pub fn array_str<'a>(&mut self, key: &str, items: impl IntoIterator<Item = &'a str>) {
        self.key(key);
        self.out.push('[');
        for (i, v) in items.into_iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push('"');
            escape_into(&mut self.out, v);
            self.out.push('"');
        }
        self.out.push(']');
    }

    /// Close every open container and return the document (with a
    /// trailing newline, matching the historical emitters).
    pub fn finish(mut self) -> String {
        while self.stack.len() > 1 {
            self.close();
        }
        self.out.push_str("\n}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_objects_and_arrays() {
        let mut w = JsonWriter::object();
        w.field_bool("on", true);
        w.open_object("counters");
        w.field_u64("a", 1);
        w.field_u64("b", 2);
        w.close();
        w.open_object("hist");
        w.field_u64("samples", 3);
        w.array_u64("log2_buckets", [1, 2]);
        w.close();
        let text = w.finish();
        let expect = "{\n  \"on\": true,\n  \"counters\": {\n    \"a\": 1,\n    \
                      \"b\": 2\n  },\n  \"hist\": {\n    \"samples\": 3,\n    \
                      \"log2_buckets\": [1, 2]\n  }\n}\n";
        assert_eq!(text, expect);
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::object();
        w.field_str("msg", "a\"b\\c\nd");
        let text = w.finish();
        assert!(text.contains("\"msg\": \"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn floats_render_as_numbers_or_null() {
        assert_eq!(f64_str(1.5), "1.5");
        assert_eq!(f64_str(2.0), "2.0");
        assert_eq!(f64_str(f64::NAN), "null");
        assert_eq!(f64_str(f64::INFINITY), "null");
    }

    #[test]
    fn unclosed_containers_are_closed_by_finish() {
        let mut w = JsonWriter::object();
        w.open_object("a");
        w.field_u64("x", 1);
        let text = w.finish();
        assert_eq!(text, "{\n  \"a\": {\n    \"x\": 1\n  }\n}\n");
    }
}
