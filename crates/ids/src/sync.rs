//! Thin wrappers over `std::sync` primitives with the guard-returning,
//! poison-free API the workspace is written against (lock poisoning is
//! not a useful failure mode here: all guarded state keeps its invariants
//! on panic, so a poisoned lock simply propagates the original panic's
//! data).

use std::fmt;
use std::sync::{
    Arc, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A read-mostly published value: the std-only stand-in for an
/// epoch/arc-swap cell. Readers take a briefly-held shared lock to bump
/// an `Arc` refcount and then work entirely lock-free on an immutable
/// snapshot; writers build a replacement off to the side and `publish`
/// it atomically. Readers holding older snapshots are unaffected — they
/// simply keep the epoch they loaded.
///
/// Intended for state that is read on every decision but mutated only
/// at policy-load/enroll frequency (e.g. the dense permission table).
pub struct Snapshot<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> Snapshot<T> {
    /// Publish an initial value.
    pub fn new(value: T) -> Self {
        Snapshot {
            inner: RwLock::new(Arc::new(value)),
        }
    }

    /// Load the current snapshot (an `Arc` bump; never blocks on
    /// readers, and on writers only for the duration of a pointer swap).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read())
    }

    /// Atomically replace the published value. Existing loaded snapshots
    /// keep the epoch they saw.
    pub fn publish(&self, value: T) {
        *self.inner.write() = Arc::new(value);
    }
}

impl<T: Default> Default for Snapshot<T> {
    fn default() -> Self {
        Snapshot::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Snapshot").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn snapshot_readers_keep_their_epoch() {
        let s = Snapshot::new(vec![1, 2]);
        let epoch1 = s.load();
        s.publish(vec![3]);
        // The old reader still sees its epoch; new loads see the new one.
        assert_eq!(*epoch1, vec![1, 2]);
        assert_eq!(*s.load(), vec![3]);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let s = std::sync::Arc::new(Snapshot::new(0u64));
        let mut handles = Vec::new();
        for i in 1..=4u64 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.publish(i);
                *s.load()
            }));
        }
        for h in handles {
            let seen = h.join().unwrap();
            assert!((1..=4).contains(&seen));
        }
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
