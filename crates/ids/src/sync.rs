//! Thin wrappers over `std::sync` primitives with the guard-returning,
//! poison-free API the workspace is written against (lock poisoning is
//! not a useful failure mode here: all guarded state keeps its invariants
//! on panic, so a poisoned lock simply propagates the original panic's
//! data).

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
