//! Epoch-atomicity acceptance: an epoch flip racing `decide_batch` must
//! never yield a decision that mixes tables from two epochs. The
//! observable contract is the verdict's epoch stamp — every verdict
//! carries exactly one activated epoch, bounded by the epochs active
//! just before and just after its batch, and one object's consecutive
//! decisions never see the epoch move backwards.
//!
//! Property-test style: many trials, a live flipper thread, randomized
//! only by OS scheduling — the assertions hold for *every* interleaving,
//! so flaky scheduling can only make the test less sharp, never wrong.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use stacl_coalition::ProofStore;
use stacl_naplet::guard::{BatchRequest, CoordinatedGuard};
use stacl_rbac::policy::parse_policy;
use stacl_rbac::ExtendedRbac;
use stacl_sral::builder::access;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

const OBJECTS: usize = 4;
const FLIPS: u64 = 12;

/// The policy for one epoch. Every epoch keeps the same users and roles
/// (sessions survive the flip) but widens the spatial cap, so each epoch
/// compiles a *different* constraint automaton — a mixed-table decision
/// would be observable, not just stamped wrong.
fn policy_for(epoch: u64) -> String {
    let mut policy = String::new();
    for i in 0..OBJECTS {
        policy.push_str(&format!("user n{i}\n"));
    }
    policy.push_str(&format!(
        "role worker\npermission p grants=exec:rsw:* \
         spatial=\"count(0, {}, resource=rsw)\"\ngrant worker p\n",
        1000 + epoch
    ));
    for i in 0..OBJECTS {
        policy.push_str(&format!("assign n{i} worker\n"));
    }
    policy
}

#[test]
fn epoch_flip_racing_decide_batch_never_mixes_epochs() {
    let guard = CoordinatedGuard::new(ExtendedRbac::new(parse_policy(&policy_for(0)).unwrap()));
    for i in 0..OBJECTS {
        guard.enroll(format!("n{i}"), ["worker"]);
    }

    let names: Vec<String> = (0..OBJECTS).map(|i| format!("n{i}")).collect();
    let a = Access::new("exec", "rsw", "s1");
    let prog = access("exec", "rsw", "s1");
    // Each object appears TWICE per batch: its two requests run
    // sequentially on one worker, so their epochs must be ordered even
    // while the flipper runs.
    let requests: Vec<BatchRequest<'_>> = (0..2 * OBJECTS)
        .map(|k| BatchRequest {
            object: &names[k % OBJECTS],
            access: &a,
            remaining: &prog,
            time: TimePoint::new(k as f64 * 0.001),
        })
        .collect();

    let stop = AtomicBool::new(false);
    // Highest epoch known activated; stored *after* activate_epoch
    // returns, so `activated ≤ guard epoch` always holds.
    let activated = AtomicU64::new(0);

    std::thread::scope(|s| {
        let decider = s.spawn(|| {
            let proofs = ProofStore::new();
            let mut batches = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let floor = activated.load(Ordering::Acquire);
                let verdicts = guard.decide_batch(&requests, &proofs, false);
                let ceil = guard.with_rbac_read(|r| r.epoch());
                batches.push((floor, ceil, verdicts));
            }
            batches
        });

        let mut table = AccessTable::new();
        for epoch in 1..=FLIPS {
            let prepared = guard
                .with_rbac_read(|r| {
                    r.prepare_epoch(
                        parse_policy(&policy_for(epoch)).unwrap(),
                        [],
                        epoch,
                        &mut table,
                    )
                })
                .expect("strictly increasing epochs prepare");
            guard
                .with_rbac(|r| r.activate_epoch(prepared))
                .expect("prepared epoch activates");
            activated.store(epoch, Ordering::Release);
            // Let a few batches run inside each epoch.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);

        let batches = decider.join().expect("decider thread must not panic");
        assert!(!batches.is_empty(), "decider never completed a batch");
        for (floor, ceil, verdicts) in &batches {
            assert_eq!(verdicts.len(), requests.len());
            for v in verdicts {
                assert!(
                    v.is_granted(),
                    "caps were sized to grant everything, got {v}"
                );
                // Mixing tables would stamp an epoch outside the window
                // of epochs activated around this batch.
                assert!(
                    (*floor..=*ceil).contains(&v.epoch),
                    "verdict epoch {} outside activation window [{floor}, {ceil}]",
                    v.epoch
                );
            }
            // One object's sequential decisions: epoch never regresses.
            for i in 0..OBJECTS {
                assert!(
                    verdicts[i].epoch <= verdicts[i + OBJECTS].epoch,
                    "object n{i} saw the epoch move backwards within one batch"
                );
            }
        }
    });

    // Quiescent state: every decision now runs under the final epoch.
    let proofs = ProofStore::new();
    let requests: Vec<BatchRequest<'_>> = (0..OBJECTS)
        .map(|k| BatchRequest {
            object: &names[k],
            access: &a,
            remaining: &prog,
            time: TimePoint::new(100.0),
        })
        .collect();
    for v in guard.decide_batch(&requests, &proofs, false) {
        assert_eq!(v.epoch, FLIPS);
    }
}
