//! Failure-injection and stress tests for the Naplet scheduler: aborted
//! agents must leave consistent state; deadlocks must be detected, not
//! spun on; large agent populations must stay deterministic.

use stacl_coalition::{CoalitionEnv, DecisionKind, ProofStore, Verdict};
use stacl_naplet::guard::{GuardRequest, SecurityGuard};
use stacl_naplet::prelude::*;
use stacl_sral::builder::*;
use stacl_sral::parser::parse_program;
use stacl_sral::Value;
use stacl_trace::AccessTable;

fn env(n: usize) -> CoalitionEnv {
    let mut e = CoalitionEnv::new();
    for i in 0..n {
        e.add_resource(format!("s{i}"), "res", ["op"]);
    }
    e
}

/// A guard that denies the k-th check it sees (then grants for ever).
struct DenyNth {
    countdown: usize,
}

impl SecurityGuard for DenyNth {
    fn check(
        &mut self,
        _req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        if self.countdown == 0 {
            return Verdict::granted();
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            Verdict::denied(DecisionKind::DeniedNoPermission, "injected denial")
        } else {
            Verdict::granted()
        }
    }
}

#[test]
fn abort_mid_parallel_kills_all_strands() {
    // The 3rd access is denied while two strands are in flight: the whole
    // agent dies and no further proofs appear.
    let mut sys = NapletSystem::new(env(4), Box::new(DenyNth { countdown: 3 }));
    let p =
        parse_program("{ op res @ s0 ; op res @ s1 } || { op res @ s2 ; op res @ s3 }").unwrap();
    sys.spawn(NapletSpec::new("n", "s0", p));
    let r = sys.run();
    assert_eq!(r.aborted, 1);
    assert_eq!(r.finished, 0);
    // Exactly the two granted accesses have proofs.
    assert_eq!(sys.proofs().len(), 2);
    assert_eq!(sys.log().denied_count(), 1);
    // No strand keeps running after the kill: steps are bounded.
    assert!(r.steps < 50);
}

#[test]
fn one_agent_abort_does_not_disturb_others() {
    let mut sys = NapletSystem::new(env(2), Box::new(DenyNth { countdown: 2 }));
    // Agent a's second access is the 2nd check → denied; agent b's
    // accesses are checks 3.. → granted.
    sys.spawn(NapletSpec::new(
        "a",
        "s0",
        parse_program("op res @ s0 ; op res @ s0 ; op res @ s0").unwrap(),
    ));
    sys.spawn(NapletSpec::new(
        "b",
        "s1",
        parse_program("op res @ s1 ; op res @ s1").unwrap(),
    ));
    let r = sys.run();
    assert_eq!(r.aborted + r.finished, 2);
    assert_eq!(r.finished, 1);
    let b_proofs = sys.proofs().count_matching(|p| &*p.object == "b");
    assert_eq!(b_proofs, 2, "agent b completes untouched");
}

#[test]
fn deadlocked_ring_is_detected() {
    // Three agents each wait for the next one's signal — a cycle with no
    // initial signal: all deadlock, the scheduler terminates.
    let mut sys = NapletSystem::new(env(1), Box::new(PermissiveGuard));
    for (me, next) in [("a", "b"), ("b", "c"), ("c", "a")] {
        sys.spawn(NapletSpec::new(
            me,
            "s0",
            parse_program(&format!("wait(sig-{next}) ; signal(sig-{me})")).unwrap(),
        ));
    }
    let r = sys.run();
    assert_eq!(r.deadlocked, 3);
    assert_eq!(r.finished, 0);
}

#[test]
fn partial_deadlock_reports_only_stuck_agents() {
    let mut sys = NapletSystem::new(env(1), Box::new(PermissiveGuard));
    sys.spawn(NapletSpec::new(
        "stuck",
        "s0",
        parse_program("wait(never)").unwrap(),
    ));
    sys.spawn(NapletSpec::new(
        "fine",
        "s0",
        parse_program("op res @ s0").unwrap(),
    ));
    let r = sys.run();
    assert_eq!(r.finished, 1);
    assert_eq!(r.deadlocked, 1);
}

#[test]
fn hundred_agents_run_deterministically() {
    let run = || {
        let mut sys = NapletSystem::new(env(8), Box::new(PermissiveGuard));
        for i in 0..100 {
            let servers: Vec<String> = (0..4).map(|k| format!("s{}", (i + k) % 8)).collect();
            let p = seq(servers.iter().map(|s| access("op", "res", s)));
            sys.spawn(NapletSpec::new(format!("agent{i}"), &servers[0], p));
        }
        let r = sys.run();
        assert_eq!(r.finished, 100);
        // A stable fingerprint of the interleaving.
        sys.proofs()
            .snapshot()
            .iter()
            .map(|p| format!("{}@{}", p.object, p.access.server))
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(run(), run());
}

#[test]
fn producer_consumer_pipeline_of_agents() {
    // Three-stage pipeline over channels; ensures no lost wakeups under
    // repeated blocking.
    let mut sys = NapletSystem::new(env(3), Box::new(PermissiveGuard));
    sys.spawn(NapletSpec::new(
        "source",
        "s0",
        parse_program("n := 3 ; while n > 0 do { op res @ s0 ; stage1 ! n ; n := n - 1 }").unwrap(),
    ));
    sys.spawn(NapletSpec::new(
        "relay",
        "s1",
        parse_program(
            "k := 3 ; while k > 0 do { stage1 ? x ; op res @ s1 ; stage2 ! x ; k := k - 1 }",
        )
        .unwrap(),
    ));
    sys.spawn(NapletSpec::new(
        "sink",
        "s2",
        parse_program("j := 3 ; while j > 0 do { stage2 ? y ; op res @ s2 ; j := j - 1 }").unwrap(),
    ));
    let r = sys.run();
    assert_eq!(r.finished, 3, "{:?}", r.statuses);
    assert_eq!(sys.proofs().len(), 9);
    // Channels fully drained.
    assert!(sys.channels().is_empty("stage1"));
    assert!(sys.channels().is_empty("stage2"));
}

#[test]
fn skip_mode_sweeps_past_repeated_denials() {
    struct DenyServer;
    impl SecurityGuard for DenyServer {
        fn check(
            &mut self,
            req: &GuardRequest<'_>,
            _proofs: &ProofStore,
            _table: &mut AccessTable,
        ) -> Verdict {
            if &*req.access.server == "s1" {
                Verdict::denied(DecisionKind::DeniedNoPermission, "s1 is off limits")
            } else {
                Verdict::granted()
            }
        }
    }
    let mut sys = NapletSystem::new(env(3), Box::new(DenyServer));
    let p = parse_program("op res @ s0 ; op res @ s1 ; op res @ s2 ; op res @ s1").unwrap();
    sys.spawn(NapletSpec::new("n", "s0", p).with_on_deny(OnDeny::Skip));
    let r = sys.run();
    assert_eq!(r.finished, 1);
    assert_eq!(sys.log().denied_count(), 2);
    assert_eq!(sys.proofs().len(), 2);
}

#[test]
fn environment_values_flow_between_strands() {
    // Parallel strands of ONE agent share its environment; a value
    // assigned in one branch is visible after the join.
    let mut sys = NapletSystem::new(env(2), Box::new(PermissiveGuard));
    let p = parse_program(
        "{ x := 7 ; op res @ s0 || op res @ s1 } ; \
         if x == 7 then { op res @ s0 } else { skip }",
    )
    .unwrap();
    sys.spawn(NapletSpec::new("n", "s0", p));
    let r = sys.run();
    assert_eq!(r.finished, 1, "{:?}", r.statuses);
    assert_eq!(sys.proofs().len(), 3, "the post-join access must run");
}

#[test]
fn lifecycle_hooks_fire_in_order_with_env_access() {
    use stacl_ids::sync::Mutex;
    use stacl_naplet::agent::Hooks;
    use std::sync::Arc;

    struct Recorder(Arc<Mutex<Vec<String>>>);
    impl Hooks for Recorder {
        fn on_create(&self, env: &mut stacl_sral::Env, server: &str) {
            env.set("hooked", Value::Int(1));
            self.0.lock().push(format!("create@{server}"));
        }
        fn on_arrival(&self, _env: &mut stacl_sral::Env, server: &str) {
            self.0.lock().push(format!("arrive@{server}"));
        }
        fn on_departure(&self, _env: &mut stacl_sral::Env, server: &str) {
            self.0.lock().push(format!("depart@{server}"));
        }
        fn on_finish(&self, env: &stacl_sral::Env) {
            assert_eq!(env.get("hooked"), Some(Value::Int(1)));
            self.0.lock().push("finish".into());
        }
    }

    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sys = NapletSystem::new(env(2), Box::new(PermissiveGuard));
    // The program branches on the variable the create-hook seeded.
    let p =
        parse_program("if hooked == 1 then { op res @ s0 ; op res @ s1 } else { skip }").unwrap();
    sys.spawn(NapletSpec::new("n", "s0", p).with_hooks(Arc::new(Recorder(log.clone()))));
    let r = sys.run();
    assert_eq!(r.finished, 1, "{:?}", r.statuses);
    assert_eq!(
        log.lock().clone(),
        vec!["create@s0", "depart@s0", "arrive@s1", "finish"]
    );
    assert_eq!(sys.proofs().len(), 2, "the hook-seeded branch ran");
}

#[test]
fn scheduled_spawns_fire_at_their_times() {
    use stacl_temporal::TimePoint;
    let mut sys = NapletSystem::new(env(1), Box::new(PermissiveGuard));
    // One immediate agent and two scheduled ones; the last starts after a
    // quiescent gap, forcing the clock to jump.
    sys.spawn(NapletSpec::new(
        "now",
        "s0",
        parse_program("op res @ s0").unwrap(),
    ));
    sys.spawn_at(
        TimePoint::new(10.0),
        NapletSpec::new("later", "s0", parse_program("op res @ s0").unwrap()),
    );
    sys.spawn_at(
        TimePoint::new(50.0),
        NapletSpec::new("latest", "s0", parse_program("op res @ s0").unwrap()),
    );
    let r = sys.run();
    assert_eq!(r.finished, 3, "{:?}", r.statuses);
    let proofs = sys.proofs().snapshot();
    assert_eq!(proofs.len(), 3);
    // Proofs appear in schedule order with non-decreasing times.
    assert_eq!(&*proofs[0].object, "now");
    assert_eq!(&*proofs[1].object, "later");
    assert!(proofs[1].time.seconds() >= 10.0);
    assert_eq!(&*proofs[2].object, "latest");
    assert!(proofs[2].time.seconds() >= 50.0);
}

#[test]
fn scheduled_spawn_can_unblock_a_waiter() {
    use stacl_temporal::TimePoint;
    let mut sys = NapletSystem::new(env(1), Box::new(PermissiveGuard));
    sys.spawn(NapletSpec::new(
        "waiter",
        "s0",
        parse_program("wait(go) ; op res @ s0").unwrap(),
    ));
    sys.spawn_at(
        TimePoint::new(5.0),
        NapletSpec::new("signaller", "s0", parse_program("signal(go)").unwrap()),
    );
    let r = sys.run();
    assert_eq!(r.finished, 2, "{:?}", r.statuses);
    assert_eq!(r.deadlocked, 0);
}

#[test]
fn server_clock_skew_stamps_proofs_locally() {
    // s1 runs 100 seconds ahead of the coalition's virtual time; its
    // proofs carry the local timestamp while scheduling stays global.
    let mut sys =
        NapletSystem::new(env(2), Box::new(PermissiveGuard)).with_server_skew("s1", 100.0);
    let p = parse_program("op res @ s0 ; op res @ s1").unwrap();
    sys.spawn(NapletSpec::new("n", "s0", p));
    let r = sys.run();
    assert_eq!(r.finished, 1);
    let proofs = sys.proofs().snapshot();
    // First proof at global t=0 (s0, no skew); second after 1 access +
    // 1 migration = 6 global seconds, stamped 100 ahead.
    assert_eq!(proofs[0].time.seconds(), 0.0);
    assert_eq!(proofs[1].time.seconds(), 106.0);
    // The global clock itself is unaffected.
    assert_eq!(r.end_time.seconds(), 7.0);
}

#[test]
fn seeded_channel_input_feeds_first_receiver() {
    let mut sys = NapletSystem::new(env(1), Box::new(PermissiveGuard));
    sys.channels().send("boot", Value::Int(42));
    sys.spawn(NapletSpec::new(
        "n",
        "s0",
        parse_program("boot ? v ; if v == 42 then { op res @ s0 } else { skip }").unwrap(),
    ));
    sys.run();
    assert_eq!(sys.proofs().len(), 1);
}
