//! Regression test for the clock-skew panic: a coalition server whose
//! (seeded) skew is negative used to hand the guard a timestamp earlier
//! than events already recorded on a permission timeline, and
//! `Timeline::assert_monotone` panicked inside library code. The guard
//! must instead deny with a reason — counted by the telemetry — and keep
//! working afterwards.
//!
//! The telemetry registry is process-global, so this file holds a SINGLE
//! `#[test]` and asserts on snapshot diffs.

use stacl_coalition::{DecisionKind, ProofStore};
use stacl_ids::rng::SplitMix64;
use stacl_naplet::guard::GuardRequest;
use stacl_naplet::prelude::*;
use stacl_obs::{snapshot, Counter};
use stacl_rbac::{AccessPattern, ExtendedRbac, Permission, RbacModel};
use stacl_sral::builder::access;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

#[test]
fn negative_skew_denies_instead_of_panicking() {
    assert!(stacl_obs::enabled(), "telemetry must default to on");
    // The sim draws per-server skew from a seeded SplitMix64; seed 3 is a
    // pinned draw that lands strictly negative, reproducing a "new server
    // behind the previous server's clock" coalition.
    let mut rng = SplitMix64::seed_from_u64(3);
    let skew = -(rng.gen_f64() * 5.0) - 0.5;
    assert!(skew < 0.0, "the pinned seed must produce negative skew");

    let mut m = RbacModel::new();
    m.add_user("n1");
    m.add_role("r");
    m.add_permission(Permission::new("p", AccessPattern::any()))
        .unwrap();
    m.assign_permission("r", "p").unwrap();
    m.assign_user("n1", "r").unwrap();
    let g = CoordinatedGuard::new(ExtendedRbac::new(m));
    g.enroll("n1", ["r"]);

    let proofs = ProofStore::new();
    let mut table = AccessTable::new();
    let a = Access::new("exec", "rsw", "s1");
    let p = access("exec", "rsw", "s1");
    let req_at = |t: f64| GuardRequest {
        object: "n1",
        access: &a,
        remaining: &p,
        time: TimePoint::new(t),
    };

    // t = 10: first grant activates the permission timeline at 10.
    assert!(g.decide(&req_at(10.0), &proofs, &mut table).is_granted());

    let base = snapshot();
    // The object migrates to a server whose skewed clock reads 10+skew
    // (< 10). Recording the arrival must not panic; the regressed refill
    // is counted and dropped.
    g.note_arrival("n1", TimePoint::new(10.0 + skew));
    // A decision stamped with that skewed clock is denied with a reason
    // instead of panicking in `activate`.
    let v = g.decide(&req_at(10.0 + skew), &proofs, &mut table);
    assert_eq!(v.kind, DecisionKind::DeniedTemporal, "{v:?}");
    assert!(
        v.reason_str().contains("clock regression"),
        "denial must name the cause: {v:?}"
    );
    let d = snapshot().diff(&base);
    assert_eq!(
        d.counter(Counter::ClockRegression),
        2,
        "one regressed timeline refill + one regressed activation: {d:?}"
    );

    // The guard recovered: once the clock moves forward again, grants
    // resume on the same timeline.
    assert!(g.decide(&req_at(12.0), &proofs, &mut table).is_granted());
}
