//! The interning acceptance test: once an object's session is open and
//! its spatial approval and timeline memo are warm, a granted
//! [`CoordinatedGuard::decide`] must perform **zero heap allocations** —
//! every lookup runs on interned ids over dense or `Copy`-keyed state.
//! Telemetry stays ON for the measured window: the `stacl-obs` record
//! path (plain stores to a static single-writer stripe, claimed once per
//! thread during the warm-up below) must itself be allocation-free, and
//! the counters must account for every decision in the window.
//!
//! Lives in `tests/` because the naplet library itself forbids unsafe
//! code and a counting `#[global_allocator]` needs an unsafe impl. Keep
//! this file to a single `#[test]`: other tests in the same binary would
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stacl_coalition::ProofStore;
use stacl_naplet::guard::{CoordinatedGuard, GuardRequest};
use stacl_naplet::prelude::*;
use stacl_rbac::policy::parse_policy;
use stacl_rbac::ExtendedRbac;
use stacl_sral::builder::access;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_grant_allocates_nothing() {
    // Full policy: spatial cap (high enough to keep granting), a temporal
    // budget, and a validity class — the worst-case decision surface.
    let model = parse_policy(
        r#"
        user n1
        role worker
        permission p grants=exec:rsw:* spatial="count(0, 10000, resource=rsw)" \
                     validity=1000000 scheme=whole-lifetime
        grant worker p
        assign n1 worker
        "#,
    )
    .unwrap();
    let guard = CoordinatedGuard::new(ExtendedRbac::new(model))
        .with_mode(EnforcementMode::Preventive)
        .with_approval_reuse(true);
    guard.enroll("n1", ["worker"]);
    guard.note_arrival("n1", TimePoint::new(0.0));

    let proofs = ProofStore::new();
    let mut table = AccessTable::new();
    let a = Access::new("exec", "rsw", "s1");
    let remaining = access("exec", "rsw", "s1");

    // Warm up: opens the session, interns every name, runs the spatial
    // check once (approval is reusable afterwards) and builds the
    // timeline with its validity memo.
    for i in 0..3u32 {
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &remaining,
            time: TimePoint::new(f64::from(i)),
        };
        assert!(guard.decide(&req, &proofs, &mut table).is_granted());
    }

    // Steady state: not one heap allocation across many checks — with
    // telemetry recording every one of them.
    assert!(
        stacl_obs::enabled(),
        "the zero-allocation claim must cover telemetry-on recording"
    );
    let obs_before = stacl_obs::snapshot();
    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 3..103u32 {
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &remaining,
            time: TimePoint::new(f64::from(i)),
        };
        assert!(guard.decide(&req, &proofs, &mut table).is_granted());
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state grants must be allocation-free ({} allocations in 100 checks)",
        after - before
    );
    // Taking a snapshot is fixed-size (no heap); diffing proves the
    // telemetry observed exactly the 100 granted decisions above.
    let d = stacl_obs::snapshot().diff(&obs_before);
    assert_eq!(d.counter(stacl_obs::Counter::VerdictGranted), 100);
    assert_eq!(d.verdict_total(), 100);
}
