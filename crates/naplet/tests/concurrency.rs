//! Concurrency/determinism acceptance: the same multi-object scenario
//! driven through the sharded `&self` path from concurrent threads must
//! produce **byte-identical per-object decision logs** to the sequential
//! `&mut` [`SecurityGuard::check`] adapter — per-object state lives in
//! its own shard, so cross-object interleaving cannot leak into any
//! object's decisions.

use std::sync::Arc;

use stacl_coalition::ProofStore;
use stacl_ids::sync::Mutex;
use stacl_naplet::guard::{CoordinatedGuard, GuardRequest, SecurityGuard};
use stacl_naplet::prelude::*;
use stacl_rbac::policy::parse_policy;
use stacl_rbac::ExtendedRbac;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

const OBJECTS: usize = 4;
const REQUESTS: usize = 8;

/// Per-object spatial cap of 5 plus a 3-second whole-lifetime budget:
/// every object sees grants first, then temporal denials once the
/// budget is drained (the spatial count is evaluated on every check —
/// reactive mode never reuses approvals).
fn scenario_guard() -> CoordinatedGuard {
    let mut policy = String::new();
    for i in 0..OBJECTS {
        policy.push_str(&format!("user n{i}\n"));
    }
    policy.push_str(
        r#"
        role worker
        permission p grants=exec:rsw:* spatial="count(0, 5, resource=rsw)" \
                     validity=3 scheme=whole-lifetime
        grant worker p
        "#,
    );
    for i in 0..OBJECTS {
        policy.push_str(&format!("assign n{i} worker\n"));
    }
    let guard = CoordinatedGuard::new(ExtendedRbac::new(parse_policy(&policy).unwrap()))
        .with_mode(EnforcementMode::Reactive);
    for i in 0..OBJECTS {
        guard.enroll(format!("n{i}"), ["worker"]);
    }
    guard
}

/// The request stream for one object: accesses alternating between two
/// servers at times 0, 1, 2, … (object `i` starts at `i * 0.125` so the
/// streams interleave non-trivially in the sequential schedule).
fn stream(object: usize) -> Vec<(Access, TimePoint)> {
    (0..REQUESTS)
        .map(|k| {
            (
                Access::new("exec", "rsw", if k % 2 == 0 { "s1" } else { "s2" }),
                TimePoint::new(object as f64 * 0.125 + k as f64),
            )
        })
        .collect()
}

/// One decision: run it through the supplied gate, issue the proof on a
/// grant (what the Naplet system does after the gate), and render the
/// log line.
fn drive(
    decide: &mut dyn FnMut(
        &GuardRequest<'_>,
        &ProofStore,
        &mut AccessTable,
    ) -> stacl_coalition::Verdict,
    object: &str,
    access: &Access,
    time: TimePoint,
    proofs: &ProofStore,
    table: &mut AccessTable,
) -> String {
    let remaining = stacl_sral::Program::Access(access.clone());
    let req = GuardRequest {
        object,
        access,
        remaining: &remaining,
        time,
    };
    let v = decide(&req, proofs, table);
    if v.is_granted() {
        proofs.issue(object, access.clone(), time);
    }
    format!("{object} {} t={} -> {v}", access.server, time.seconds())
}

/// Sequential reference run through the `&mut` adapter, round-robin over
/// the objects.
fn sequential_logs() -> Vec<Vec<String>> {
    let mut guard = scenario_guard();
    let proofs = ProofStore::new();
    let mut table = AccessTable::new();
    let streams: Vec<_> = (0..OBJECTS).map(stream).collect();
    let mut logs = vec![Vec::new(); OBJECTS];
    for k in 0..REQUESTS {
        for (i, s) in streams.iter().enumerate() {
            let (a, t) = &s[k];
            // The reference run goes through the `&mut` trait adapter.
            let mut gate = |r: &GuardRequest<'_>, p: &ProofStore, tb: &mut AccessTable| {
                SecurityGuard::check(&mut guard, r, p, tb)
            };
            logs[i].push(drive(
                &mut gate,
                &format!("n{i}"),
                a,
                *t,
                &proofs,
                &mut table,
            ));
        }
    }
    logs
}

/// Concurrent run: one thread per object against a shared `&self` guard,
/// each with its own access table.
fn concurrent_logs() -> Vec<Vec<String>> {
    let guard = Arc::new(scenario_guard());
    let proofs = ProofStore::new();
    let logs: Vec<Mutex<Vec<String>>> = (0..OBJECTS).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for i in 0..OBJECTS {
            let guard = Arc::clone(&guard);
            let proofs = &proofs;
            let logs = &logs;
            scope.spawn(move || {
                let mut table = AccessTable::new();
                let mut gate = |r: &GuardRequest<'_>, p: &ProofStore, tb: &mut AccessTable| {
                    guard.decide(r, p, tb)
                };
                let mut out = Vec::new();
                for (a, t) in stream(i) {
                    out.push(drive(
                        &mut gate,
                        &format!("n{i}"),
                        &a,
                        t,
                        proofs,
                        &mut table,
                    ));
                }
                *logs[i].lock() = out;
            });
        }
    });
    logs.into_iter().map(|m| m.into_inner()).collect()
}

#[test]
fn sharded_concurrent_decisions_match_sequential() {
    let seq = sequential_logs();
    // Sanity: the scenario actually exercises all three outcomes.
    let all: Vec<&String> = seq.iter().flatten().collect();
    assert!(all.iter().any(|l| l.contains("granted")));
    assert!(all.iter().any(|l| l.contains("denied-temporal")));
    for _ in 0..3 {
        let conc = concurrent_logs();
        assert_eq!(seq, conc, "per-object decision logs must be identical");
    }
}
