//! Concurrency/determinism acceptance: the same multi-object scenario
//! driven through the sharded `&self` path from concurrent threads must
//! produce **byte-identical per-object decision logs** to the sequential
//! `&mut` [`SecurityGuard::check`] adapter — per-object state lives in
//! its own shard, so cross-object interleaving cannot leak into any
//! object's decisions.

use std::sync::Arc;

use stacl_coalition::ProofStore;
use stacl_ids::sync::Mutex;
use stacl_naplet::guard::{CoordinatedGuard, GuardRequest, SecurityGuard};
use stacl_naplet::prelude::*;
use stacl_rbac::policy::parse_policy;
use stacl_rbac::ExtendedRbac;
use stacl_sral::Access;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

const OBJECTS: usize = 4;
const REQUESTS: usize = 8;

/// Per-object spatial cap of 5 plus a 3-second whole-lifetime budget:
/// every object sees grants first, then temporal denials once the
/// budget is drained (the spatial count is evaluated on every check —
/// reactive mode never reuses approvals).
fn scenario_guard() -> CoordinatedGuard {
    let mut policy = String::new();
    for i in 0..OBJECTS {
        policy.push_str(&format!("user n{i}\n"));
    }
    policy.push_str(
        r#"
        role worker
        permission p grants=exec:rsw:* spatial="count(0, 5, resource=rsw)" \
                     validity=3 scheme=whole-lifetime
        grant worker p
        "#,
    );
    for i in 0..OBJECTS {
        policy.push_str(&format!("assign n{i} worker\n"));
    }
    let guard = CoordinatedGuard::new(ExtendedRbac::new(parse_policy(&policy).unwrap()))
        .with_mode(EnforcementMode::Reactive);
    for i in 0..OBJECTS {
        guard.enroll(format!("n{i}"), ["worker"]);
    }
    guard
}

/// The request stream for one object: accesses alternating between two
/// servers at times 0, 1, 2, … (object `i` starts at `i * 0.125` so the
/// streams interleave non-trivially in the sequential schedule).
fn stream(object: usize) -> Vec<(Access, TimePoint)> {
    (0..REQUESTS)
        .map(|k| {
            (
                Access::new("exec", "rsw", if k % 2 == 0 { "s1" } else { "s2" }),
                TimePoint::new(object as f64 * 0.125 + k as f64),
            )
        })
        .collect()
}

/// One decision: run it through the supplied gate, issue the proof on a
/// grant (what the Naplet system does after the gate), and render the
/// log line.
fn drive(
    decide: &mut dyn FnMut(
        &GuardRequest<'_>,
        &ProofStore,
        &mut AccessTable,
    ) -> stacl_coalition::Verdict,
    object: &str,
    access: &Access,
    time: TimePoint,
    proofs: &ProofStore,
    table: &mut AccessTable,
) -> String {
    let remaining = stacl_sral::Program::Access(access.clone());
    let req = GuardRequest {
        object,
        access,
        remaining: &remaining,
        time,
    };
    let v = decide(&req, proofs, table);
    if v.is_granted() {
        proofs.issue(object, access.clone(), time);
    }
    format!("{object} {} t={} -> {v}", access.server, time.seconds())
}

/// Sequential reference run through the `&mut` adapter, round-robin over
/// the objects.
fn sequential_logs() -> Vec<Vec<String>> {
    let mut guard = scenario_guard();
    let proofs = ProofStore::new();
    let mut table = AccessTable::new();
    let streams: Vec<_> = (0..OBJECTS).map(stream).collect();
    let mut logs = vec![Vec::new(); OBJECTS];
    for k in 0..REQUESTS {
        for (i, s) in streams.iter().enumerate() {
            let (a, t) = &s[k];
            // The reference run goes through the `&mut` trait adapter.
            let mut gate = |r: &GuardRequest<'_>, p: &ProofStore, tb: &mut AccessTable| {
                SecurityGuard::check(&mut guard, r, p, tb)
            };
            logs[i].push(drive(
                &mut gate,
                &format!("n{i}"),
                a,
                *t,
                &proofs,
                &mut table,
            ));
        }
    }
    logs
}

/// Concurrent run: one thread per object against a shared `&self` guard,
/// each with its own access table.
fn concurrent_logs() -> Vec<Vec<String>> {
    let guard = Arc::new(scenario_guard());
    let proofs = ProofStore::new();
    let logs: Vec<Mutex<Vec<String>>> = (0..OBJECTS).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for i in 0..OBJECTS {
            let guard = Arc::clone(&guard);
            let proofs = &proofs;
            let logs = &logs;
            scope.spawn(move || {
                let mut table = AccessTable::new();
                let mut gate = |r: &GuardRequest<'_>, p: &ProofStore, tb: &mut AccessTable| {
                    guard.decide(r, p, tb)
                };
                let mut out = Vec::new();
                for (a, t) in stream(i) {
                    out.push(drive(
                        &mut gate,
                        &format!("n{i}"),
                        &a,
                        t,
                        proofs,
                        &mut table,
                    ));
                }
                *logs[i].lock() = out;
            });
        }
    });
    logs.into_iter().map(|m| m.into_inner()).collect()
}

#[test]
fn sharded_concurrent_decisions_match_sequential() {
    let seq = sequential_logs();
    // Sanity: the scenario actually exercises all three outcomes.
    let all: Vec<&String> = seq.iter().flatten().collect();
    assert!(all.iter().any(|l| l.contains("granted")));
    assert!(all.iter().any(|l| l.contains("denied-temporal")));
    for _ in 0..3 {
        let conc = concurrent_logs();
        assert_eq!(seq, conc, "per-object decision logs must be identical");
    }
}

#[test]
fn decide_batch_matches_sequential_per_object() {
    use stacl_naplet::guard::BatchRequest;
    // Sequential reference through the `&mut` adapter.
    let seq = sequential_logs();

    // One big batch, round-robin interleaved across objects — the exact
    // request multiset of the sequential run. `decide_batch` groups by
    // object preserving order and (with `issue_proofs`) issues each
    // grant's proof before the object's next request, so its output must
    // be byte-identical per object.
    let guard = scenario_guard();
    let proofs = ProofStore::new();
    let streams: Vec<_> = (0..OBJECTS).map(stream).collect();
    let names: Vec<String> = (0..OBJECTS).map(|i| format!("n{i}")).collect();
    let programs: Vec<Vec<stacl_sral::Program>> = streams
        .iter()
        .map(|s| {
            s.iter()
                .map(|(a, _)| stacl_sral::Program::Access(a.clone()))
                .collect()
        })
        .collect();
    let mut reqs = Vec::new();
    for k in 0..REQUESTS {
        for i in 0..OBJECTS {
            let (a, t) = &streams[i][k];
            reqs.push(BatchRequest {
                object: &names[i],
                access: a,
                remaining: &programs[i][k],
                time: *t,
            });
        }
    }
    let verdicts = guard.decide_batch(&reqs, &proofs, true);
    assert_eq!(verdicts.len(), reqs.len());
    let mut logs = vec![Vec::new(); OBJECTS];
    for (r, v) in reqs.iter().zip(&verdicts) {
        let i: usize = r.object[1..].parse().unwrap();
        logs[i].push(format!(
            "{} {} t={} -> {v}",
            r.object,
            r.access.server,
            r.time.seconds()
        ));
    }
    assert_eq!(seq, logs, "batched per-object logs must match sequential");
}

// ---------------------------------------------------------------------
// Mixed interleaving: enroll, decide and note_arrival racing per object.
// ---------------------------------------------------------------------

/// One step of a mixed per-object schedule.
enum MixedOp {
    /// Enroll the object (first contact happens mid-flight, not up
    /// front).
    Enroll,
    /// Arrival notification (refills the per-server budget).
    Arrive(TimePoint),
    /// An access decision.
    Decide(Access, TimePoint),
}

/// A per-server 3-second budget and no spatial constraint: arrivals are
/// load-bearing (each one refills the budget), so an interleaving that
/// loses or misorders a `note_arrival` changes the decision log.
fn mixed_guard() -> CoordinatedGuard {
    let mut policy = String::new();
    for i in 0..OBJECTS {
        policy.push_str(&format!("user n{i}\n"));
    }
    policy.push_str(
        r#"
        role worker
        permission p grants=exec:rsw:* validity=3 scheme=current-server
        grant worker p
        "#,
    );
    for i in 0..OBJECTS {
        policy.push_str(&format!("assign n{i} worker\n"));
    }
    // Objects are NOT enrolled here: enrollment is one of the racing ops.
    CoordinatedGuard::new(ExtendedRbac::new(parse_policy(&policy).unwrap()))
        .with_mode(EnforcementMode::Reactive)
}

/// The mixed schedule for one object: enroll, arrive, drain the budget
/// into a temporal denial, migrate (refill), then drain again.
fn mixed_stream(object: usize) -> Vec<MixedOp> {
    let base = object as f64 * 0.125;
    let access = |s: &str| Access::new("exec", "rsw", s);
    let mut ops = vec![MixedOp::Enroll, MixedOp::Arrive(TimePoint::new(base))];
    for k in 0..4 {
        // Valid on [base+1, base+4): three grants, then denied-temporal.
        ops.push(MixedOp::Decide(
            access("s1"),
            TimePoint::new(base + 1.0 + k as f64),
        ));
    }
    ops.push(MixedOp::Arrive(TimePoint::new(base + 5.0)));
    for k in 0..3 {
        // Refilled on [base+5, base+8): two grants, then denied again.
        ops.push(MixedOp::Decide(
            access("s2"),
            TimePoint::new(base + 6.0 + k as f64),
        ));
    }
    ops
}

/// Run one object's mixed op against the guard, appending to its log.
fn run_mixed_op(
    guard: &CoordinatedGuard,
    op: &MixedOp,
    object: &str,
    proofs: &ProofStore,
    table: &mut AccessTable,
    log: &mut Vec<String>,
) {
    match op {
        MixedOp::Enroll => {
            guard.enroll(object, ["worker"]);
            log.push(format!("{object} enrolled"));
        }
        MixedOp::Arrive(t) => {
            guard.note_arrival(object, *t);
            log.push(format!("{object} arrive t={}", t.seconds()));
        }
        MixedOp::Decide(a, t) => {
            let mut gate =
                |r: &GuardRequest<'_>, p: &ProofStore, tb: &mut AccessTable| guard.decide(r, p, tb);
            log.push(drive(&mut gate, object, a, *t, proofs, table));
        }
    }
}

#[test]
fn mixed_enroll_decide_arrival_interleaving_matches_sequential() {
    // Sequential reference: round-robin over the objects' op streams.
    let seq: Vec<Vec<String>> = {
        let guard = mixed_guard();
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let streams: Vec<_> = (0..OBJECTS).map(mixed_stream).collect();
        let mut logs = vec![Vec::new(); OBJECTS];
        for k in 0..streams[0].len() {
            for (i, s) in streams.iter().enumerate() {
                run_mixed_op(
                    &guard,
                    &s[k],
                    &format!("n{i}"),
                    &proofs,
                    &mut table,
                    &mut logs[i],
                );
            }
        }
        logs
    };

    // The schedule must exercise enroll, refill-driven grants and
    // temporal denials for every object.
    for log in &seq {
        assert!(log.iter().any(|l| l.contains("enrolled")));
        assert!(log.iter().any(|l| l.contains("granted")));
        assert!(log.iter().any(|l| l.contains("denied-temporal")));
    }

    // Concurrent: one thread per object racing enroll/decide/arrive on
    // the shared `&self` guard.
    for _ in 0..3 {
        let guard = Arc::new(mixed_guard());
        let proofs = ProofStore::new();
        let logs: Vec<Mutex<Vec<String>>> = (0..OBJECTS).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for i in 0..OBJECTS {
                let guard = Arc::clone(&guard);
                let proofs = &proofs;
                let logs = &logs;
                scope.spawn(move || {
                    let mut table = AccessTable::new();
                    let mut out = Vec::new();
                    for op in mixed_stream(i) {
                        run_mixed_op(&guard, &op, &format!("n{i}"), proofs, &mut table, &mut out);
                    }
                    *logs[i].lock() = out;
                });
            }
        });
        let conc: Vec<Vec<String>> = logs.into_iter().map(|m| m.into_inner()).collect();
        assert_eq!(seq, conc, "mixed per-object logs must be identical");
    }
}
