//! Agent specifications and run-time status.

use std::sync::Arc;

use stacl_sral::ast::{name, Name};
use stacl_sral::{Env, Program};

/// Application-specific lifecycle hooks — the Naplet object's "hooks for
/// application-specific functions to be performed in different stages of
/// its life cycle in each server" (§5).
///
/// Hooks run synchronously inside the scheduler with mutable access to
/// the agent's variable environment, so applications can seed per-server
/// state (e.g. a guard condition the SRAL program branches on).
/// All methods default to no-ops.
pub trait Hooks: Send + Sync {
    /// The agent was created at its home server.
    fn on_create(&self, _env: &mut Env, _server: &str) {}
    /// The agent arrived at a server after a migration.
    fn on_arrival(&self, _env: &mut Env, _server: &str) {}
    /// The agent is about to leave a server.
    fn on_departure(&self, _env: &mut Env, _server: &str) {}
    /// The agent completed its program (read-only view of its state).
    fn on_finish(&self, _env: &Env) {}
}

/// The no-op hook set.
pub struct NoHooks;

impl Hooks for NoHooks {}

/// What an agent does when the security guard denies one of its accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnDeny {
    /// Abort the whole agent (the Naplet prototype throws a
    /// `SecurityException`). The default.
    #[default]
    Abort,
    /// Skip the denied access and continue with the rest of the program
    /// (useful for best-effort sweeps and for measuring denial rates).
    Skip,
}

/// A specification for one mobile agent: identity, starting server,
/// program and initial variable bindings.
#[derive(Clone)]
pub struct NapletSpec {
    /// The agent's unique name (also its RBAC user identity).
    pub name: Name,
    /// The server where the agent is created (its home).
    pub home: Name,
    /// The SRAL program it executes.
    pub program: Program,
    /// Initial variable environment.
    pub env: Env,
    /// Denial behaviour.
    pub on_deny: OnDeny,
    /// Lifecycle hooks (default: no-ops).
    pub hooks: Arc<dyn Hooks>,
}

impl std::fmt::Debug for NapletSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NapletSpec")
            .field("name", &self.name)
            .field("home", &self.home)
            .field("program", &self.program)
            .field("env", &self.env)
            .field("on_deny", &self.on_deny)
            .finish_non_exhaustive()
    }
}

impl NapletSpec {
    /// A new agent spec with an empty environment and abort-on-deny.
    pub fn new(name_: impl AsRef<str>, home: impl AsRef<str>, program: Program) -> Self {
        NapletSpec {
            name: name(name_),
            home: name(home),
            program,
            env: Env::new(),
            on_deny: OnDeny::Abort,
            hooks: Arc::new(NoHooks),
        }
    }

    /// Set the initial environment.
    pub fn with_env(mut self, env: Env) -> Self {
        self.env = env;
        self
    }

    /// Set the denial behaviour.
    pub fn with_on_deny(mut self, on_deny: OnDeny) -> Self {
        self.on_deny = on_deny;
        self
    }

    /// Attach lifecycle hooks.
    pub fn with_hooks(mut self, hooks: Arc<dyn Hooks>) -> Self {
        self.hooks = hooks;
        self
    }
}

/// The terminal status of an agent after a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AgentStatus {
    /// Ran its whole program.
    Finished,
    /// Aborted after a denied access (the denial reason is in the access
    /// log).
    Aborted,
    /// Still blocked when the system ran out of work — part of a deadlock
    /// (or waiting for a companion that never came).
    Deadlocked,
    /// Stopped because the scheduler hit its step budget.
    OutOfBudget,
    /// A run-time evaluation error (unbound variable, division by zero).
    Faulted(String),
}

impl AgentStatus {
    /// True for `Finished`.
    pub fn is_finished(&self) -> bool {
        matches!(self, AgentStatus::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_sral::builder::access;
    use stacl_sral::Value;

    #[test]
    fn spec_builders() {
        let mut env = Env::new();
        env.set("k", Value::Int(3));
        let spec = NapletSpec::new("n1", "home", access("read", "r", "s"))
            .with_env(env)
            .with_on_deny(OnDeny::Skip);
        assert_eq!(&*spec.name, "n1");
        assert_eq!(&*spec.home, "home");
        assert_eq!(spec.on_deny, OnDeny::Skip);
        assert_eq!(spec.env.get("k"), Some(Value::Int(3)));
    }

    #[test]
    fn status_predicates() {
        assert!(AgentStatus::Finished.is_finished());
        assert!(!AgentStatus::Aborted.is_finished());
        assert!(!AgentStatus::Faulted("x".into()).is_finished());
    }
}
