//! # stacl-naplet — a mobile-agent system emulating mobile computing
//!
//! The paper's prototype (§5) is built on Naplet, a Java mobile-agent
//! framework: agents ("naplets") travel an itinerary across coalition
//! servers, execute recursively-constructed resource-access patterns, and
//! every access is intercepted by a `SecurityManager` that enforces the
//! coordinated spatio-temporal policy. Physical device mobility is
//! *emulated* by agent migration — exactly the substitution the paper
//! itself makes (§2).
//!
//! This crate is the Rust counterpart:
//!
//! * [`agent`] — agent specifications ([`agent::NapletSpec`]) and run-time
//!   status;
//! * [`itinerary`] — structured travel plans (sequential, alternative and
//!   parallel/cloning legs — the paper's "structured navigation facility");
//! * [`pattern`] — the §5.2 access-pattern constructors (`Singleton`,
//!   `SeqPattern`, `ParPattern`, `Loop`) compiling to SRAL programs;
//! * [`guard`] — the [`guard::SecurityGuard`] interception point with a
//!   [`guard::PermissiveGuard`] (no control) and the
//!   [`guard::CoordinatedGuard`] (extended RBAC, the paper's
//!   `NapletSecurityManager`);
//! * [`system`] — [`system::NapletSystem`]: a deterministic cooperative
//!   scheduler executing agents' SRAL programs over the coalition
//!   substrate, with automatic migration, channel/signal blocking,
//!   execution-proof issuance and virtual-time accounting;
//! * [`monitor`] — lifecycle-event monitoring (create/arrive/depart/
//!   block/finish/abort), the "agent monitoring" facility.
//!
//! ## Example
//!
//! ```
//! use stacl_naplet::prelude::*;
//! use stacl_sral::parser::parse_program;
//!
//! let mut env = CoalitionEnv::new();
//! env.add_resource("s1", "db", ["read"]);
//! env.add_resource("s2", "db", ["read"]);
//!
//! let mut sys = NapletSystem::new(env, Box::new(PermissiveGuard));
//! let prog = parse_program("read db @ s1 ; read db @ s2").unwrap();
//! sys.spawn(NapletSpec::new("n1", "s1", prog));
//! let report = sys.run();
//! assert_eq!(report.finished, 1);
//! assert_eq!(sys.proofs().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod guard;
pub mod itinerary;
pub mod monitor;
pub mod pattern;
pub mod system;

/// Convenient re-exports for building Naplet applications.
pub mod prelude {
    pub use crate::agent::{AgentStatus, NapletSpec, OnDeny};
    pub use crate::guard::{
        CoordinatedGuard, Custody, EnforcementMode, ObjectHandoff, PermissiveGuard, SecurityGuard,
    };
    pub use crate::itinerary::Itinerary;
    pub use crate::monitor::{LifecycleEvent, Monitor};
    pub use crate::pattern::{Pattern, Singleton};
    pub use crate::system::{NapletSystem, RunReport, SystemConfig};
    pub use stacl_coalition::{CoalitionEnv, DecisionKind};
}
