//! Recursively-constructed resource-access patterns — the §5.2 SRAL
//! prototype (`AccessPattn` base with `SeqPattern`, `ParPattern` and
//! `Loop` composites).
//!
//! "Its base is a Singleton pattern, comprising of a single shared
//! resource access at a server guarded by a pre-condition. Over the set of
//! access patterns, we define three composite operators … to recursively
//! form resource accesses of regular trace models."
//!
//! Patterns compile to SRAL [`Program`]s via [`Pattern::to_program`]; the
//! guard pre-condition becomes an `if` wrapper, so the compiled program's
//! trace model includes both the guarded and skipped behaviours — exactly
//! what the spatial checker must reason about.

use stacl_sral::ast::Program;
use stacl_sral::expr::Cond;
use stacl_sral::Access;

/// The base pattern: one access, optionally guarded by a pre-condition
/// (the `Checkable` guard of the Naplet API).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Singleton {
    /// The guard that must hold for the access to run; `None` = always.
    pub precondition: Option<Cond>,
    /// The access to perform.
    pub access: Access,
    /// An optional signal raised after the access completes (the
    /// `Observable` report hook of the Naplet API).
    pub report: Option<String>,
}

impl Singleton {
    /// An unguarded access.
    pub fn new(access: Access) -> Self {
        Singleton {
            precondition: None,
            access,
            report: None,
        }
    }

    /// Guard the access with a pre-condition.
    pub fn guarded(cond: Cond, access: Access) -> Self {
        Singleton {
            precondition: Some(cond),
            access,
            report: None,
        }
    }

    /// Raise `signal` after the access (result reporting).
    pub fn reporting(mut self, signal: impl Into<String>) -> Self {
        self.report = Some(signal.into());
        self
    }
}

/// A recursively-constructed access pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// A single (possibly guarded) access.
    Single(Singleton),
    /// `SeqPattern`: patterns in sequence.
    Seq(Vec<Pattern>),
    /// `ParPattern`: patterns in parallel (cloned naplets / strands).
    Par(Vec<Pattern>),
    /// `Loop`: repeat the body while the pre-condition holds.
    Loop {
        /// The loop pre-condition.
        cond: Cond,
        /// The repeated pattern.
        body: Box<Pattern>,
    },
}

impl Pattern {
    /// Shorthand for an unguarded single access.
    pub fn access(op: impl AsRef<str>, resource: impl AsRef<str>, server: impl AsRef<str>) -> Self {
        Pattern::Single(Singleton::new(Access::new(op, resource, server)))
    }

    /// A sequential pattern.
    pub fn seq(parts: impl IntoIterator<Item = Pattern>) -> Self {
        Pattern::Seq(parts.into_iter().collect())
    }

    /// A parallel pattern.
    pub fn par(parts: impl IntoIterator<Item = Pattern>) -> Self {
        Pattern::Par(parts.into_iter().collect())
    }

    /// A loop pattern.
    pub fn repeat_while(cond: Cond, body: Pattern) -> Self {
        Pattern::Loop {
            cond,
            body: Box::new(body),
        }
    }

    /// Compile to an SRAL program.
    pub fn to_program(&self) -> Program {
        match self {
            Pattern::Single(s) => {
                let mut p = Program::Access(s.access.clone());
                if let Some(sig) = &s.report {
                    p = p.then(Program::Signal(stacl_sral::ast::name(sig)));
                }
                match &s.precondition {
                    Some(c) => Program::If {
                        cond: c.clone(),
                        then_branch: Box::new(p),
                        else_branch: Box::new(Program::Skip),
                    },
                    None => p,
                }
            }
            Pattern::Seq(parts) => Program::seq_all(parts.iter().map(Pattern::to_program)),
            Pattern::Par(parts) => Program::par_all(parts.iter().map(Pattern::to_program)),
            Pattern::Loop { cond, body } => Program::While {
                cond: cond.clone(),
                body: Box::new(body.to_program()),
            },
        }
    }

    /// Number of `Singleton` leaves.
    pub fn len(&self) -> usize {
        match self {
            Pattern::Single(_) => 1,
            Pattern::Seq(ps) | Pattern::Par(ps) => ps.iter().map(Pattern::len).sum(),
            Pattern::Loop { body, .. } => body.len(),
        }
    }

    /// True when the pattern performs no access at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build the §5.2 `ApplAgentProg`: `k` parallel legs, each a sequential
/// sweep performing `op` on `resource` at an equal share of `servers`,
/// with an optional per-access guard.
pub fn appl_agent_prog<S: AsRef<str>>(
    op: &str,
    resource: &str,
    servers: impl IntoIterator<Item = S>,
    k: usize,
    guard: Option<Cond>,
) -> Pattern {
    let all: Vec<String> = servers
        .into_iter()
        .map(|s| s.as_ref().to_string())
        .collect();
    let per = all.len().div_ceil(k.max(1));
    let legs: Vec<Pattern> = all
        .chunks(per.max(1))
        .map(|chunk| {
            Pattern::seq(chunk.iter().map(|server| {
                let a = Access::new(op, resource, server);
                Pattern::Single(match &guard {
                    Some(c) => Singleton::guarded(c.clone(), a),
                    None => Singleton::new(a),
                })
            }))
        })
        .collect();
    Pattern::par(legs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_sral::expr::{CmpOp, Expr};

    #[test]
    fn singleton_compiles_to_access() {
        let p = Pattern::access("read", "db", "s1").to_program();
        assert_eq!(p, Program::Access(Access::new("read", "db", "s1")));
    }

    #[test]
    fn guarded_singleton_wraps_in_if() {
        let cond = Cond::cmp(CmpOp::Gt, Expr::var("x"), Expr::Int(0));
        let p = Pattern::Single(Singleton::guarded(cond, Access::new("a", "r", "s"))).to_program();
        match p {
            Program::If { else_branch, .. } => assert_eq!(*else_branch, Program::Skip),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reporting_singleton_appends_signal() {
        let p = Pattern::Single(Singleton::new(Access::new("a", "r", "s")).reporting("done"))
            .to_program();
        match p {
            Program::Seq(_, b) => assert!(matches!(*b, Program::Signal(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seq_par_loop_compile_structurally() {
        let pat = Pattern::repeat_while(
            Cond::cmp(CmpOp::Lt, Expr::var("i"), Expr::Int(2)),
            Pattern::seq([
                Pattern::access("a", "r", "s1"),
                Pattern::par([
                    Pattern::access("b", "r", "s2"),
                    Pattern::access("c", "r", "s3"),
                ]),
            ]),
        );
        let p = pat.to_program();
        assert!(matches!(p, Program::While { .. }));
        assert_eq!(pat.len(), 3);
        assert_eq!(p.accesses().count(), 3);
    }

    #[test]
    fn appl_agent_prog_splits_servers() {
        let pat = appl_agent_prog("verify", "mod", ["s1", "s2", "s3", "s4"], 2, None);
        match &pat {
            Pattern::Par(legs) => {
                assert_eq!(legs.len(), 2);
                assert_eq!(legs[0].len(), 2);
                assert_eq!(legs[1].len(), 2);
            }
            other => panic!("{other:?}"),
        }
        // The compiled program mentions each server exactly once.
        let prog = pat.to_program();
        let servers: std::collections::BTreeSet<String> =
            prog.accesses().map(|a| a.server.to_string()).collect();
        assert_eq!(servers.len(), 4);
    }

    #[test]
    fn appl_agent_prog_with_guard() {
        let cond = Cond::Var(stacl_sral::ast::name("ok"));
        let pat = appl_agent_prog("verify", "mod", ["s1", "s2"], 1, Some(cond));
        let prog = pat.to_program();
        // Each access is wrapped in an if.
        let mut ifs = 0;
        fn count_ifs(p: &Program, n: &mut usize) {
            match p {
                Program::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    *n += 1;
                    count_ifs(then_branch, n);
                    count_ifs(else_branch, n);
                }
                Program::Seq(a, b) | Program::Par(a, b) => {
                    count_ifs(a, n);
                    count_ifs(b, n);
                }
                Program::While { body, .. } => count_ifs(body, n),
                _ => {}
            }
        }
        count_ifs(&prog, &mut ifs);
        assert_eq!(ifs, 2);
    }

    #[test]
    fn empty_pattern_compiles_to_skip() {
        assert_eq!(Pattern::seq([]).to_program(), Program::Skip);
        assert!(Pattern::seq([]).is_empty());
    }
}
