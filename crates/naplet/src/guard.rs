//! The security-guard interception point — the Rust counterpart of the
//! Naplet prototype's `NapletSecurityManager` (§5.2).
//!
//! Every shared-resource access an agent attempts flows through exactly
//! one [`SecurityGuard::check`] call carrying the requesting object, the
//! access, the object's *remaining program* and the current time; the
//! guard also sees the proof store (the object's cross-server history) and
//! may record state of its own.
//!
//! [`CoordinatedGuard`] keeps its per-object state (open session, clean
//! record) in **per-object shards** behind fine-grained locks and exposes
//! a `&self` decision path ([`CoordinatedGuard::decide`]), so one guard
//! can serve concurrent per-object request streams; the
//! [`SecurityGuard`] impl is a thin `&mut` adapter over it. The decision
//! core itself is `&self` too ([`ExtendedRbac::decide`]), held behind a
//! read-write lock that decisions only *read* — writers are the rare
//! policy mutations ([`CoordinatedGuard::with_rbac`]) and first-contact
//! session opens. [`CoordinatedGuard::decide_batch`] fans a batch of
//! requests across object shards on a scoped thread pool.

use stacl_coalition::{DecisionKind, Placement, ProofStore, Verdict};
use stacl_ids::sync::{Mutex, RwLock};
use stacl_rbac::{AccessRequest, ExtendedRbac, ObjectGateExport, SessionId};
use stacl_srac::check::{check_residual_cached, ConstraintCache, Semantics};
use stacl_srac::{Constraint, ConstraintCursor};
use stacl_sral::ast::{name, Name};
use stacl_sral::{Access, Program};
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One interception: everything a guard may consult.
pub struct GuardRequest<'a> {
    /// The requesting mobile object.
    pub object: &'a str,
    /// The access being attempted.
    pub access: &'a Access,
    /// The object's remaining program (declared future behaviour),
    /// including the access being attempted.
    pub remaining: &'a Program,
    /// Current virtual time.
    pub time: TimePoint,
}

/// The interception interface.
pub trait SecurityGuard: Send {
    /// Decide the request. Proof issuance and logging are done by the
    /// system after a grant.
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict;

    /// Notification that `object` arrived at a server (migration or
    /// creation) — lets temporal schemes refill per-server budgets.
    fn note_arrival(&mut self, _object: &str, _time: TimePoint) {}
}

/// A guard that grants everything — the no-access-control baseline and
/// the default for substrate tests.
pub struct PermissiveGuard;

impl SecurityGuard for PermissiveGuard {
    fn check(
        &mut self,
        _req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        Verdict::granted()
    }
}

/// How the coordinated guard interprets the spatial constraint at each
/// interception.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EnforcementMode {
    /// **Preventive** (Eq. 3.1 verbatim): the object's *entire declared
    /// remaining program* must satisfy the constraint on every trace. An
    /// over-committing program is denied at its very first access, before
    /// any damage. The default.
    #[default]
    Preventive,
    /// **Reactive**: only the proven history plus the access being
    /// attempted are checked. Denial happens exactly at the access that
    /// would cross the line — the reading behind the paper's motivating
    /// "overused on s1 ⇒ denied on s2" example.
    Reactive,
}

/// Where an object's custody stands on one coalition member. With
/// custody enforcement enabled ([`CoordinatedGuard::set_custody_enforcement`]),
/// only the member whose custody is [`Custody::Resident`] answers
/// decisions for the object — everyone else denies fail-safe with
/// [`DecisionKind::DeniedCoordination`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Custody {
    /// This member holds the object's state and answers its decisions.
    Resident,
    /// A handoff is being pulled from the previous custodian; decisions
    /// deny fail-safe until it completes.
    InFlight,
    /// Another member is (or was last known to be) the custodian.
    Remote,
}

impl Custody {
    /// A short stable label for reasons and logs.
    pub fn label(self) -> &'static str {
        match self {
            Custody::Resident => "resident",
            Custody::InFlight => "in flight",
            Custody::Remote => "remote",
        }
    }
}

/// The transferable per-object guard state: everything a custodian must
/// hand to the next one for decisions to continue seamlessly. The gate
/// export is keyed by names (see [`ObjectGateExport`]); the clean flag
/// preserves spatial-approval reuse across the migration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObjectHandoff {
    /// True while every decision so far was a grant.
    pub clean: bool,
    /// The object's decision-state shard inside the core.
    pub gate: ObjectGateExport,
}

/// Per-object guard state, one shard per enrolled object.
#[derive(Debug)]
struct ObjectState {
    /// The object's open session, established on first contact.
    session: Option<SessionId>,
    /// True while every decision so far was a grant — the condition under
    /// which preventive-mode spatial approvals may be reused.
    clean: bool,
}

/// The coordinated guard: extended RBAC with spatio-temporal constraints
/// (the paper's model, end to end).
///
/// Each mobile object is an RBAC user; on its first access the guard
/// opens a session and activates the roles registered for the object via
/// [`CoordinatedGuard::enroll`].
///
/// All state lives behind interior locks: each object's session/clean
/// record in its own shard, the decision core behind a read-write lock
/// that the decide path only ever *reads* (the core's own per-object
/// gates provide mutual exclusion where it matters — see
/// `ExtendedRbac`'s module docs). The real decision path is the `&self`
/// [`CoordinatedGuard::decide`]; [`SecurityGuard::check`] simply
/// forwards to it.
pub struct CoordinatedGuard {
    /// The decision core. Decisions take the read lock; policy mutations
    /// ([`CoordinatedGuard::with_rbac`]) and first-contact session opens
    /// take the write lock. Lock order: object shard first, then this —
    /// never the reverse.
    rbac: RwLock<ExtendedRbac>,
    /// object → roles to activate on first contact.
    enrollments: RwLock<HashMap<Name, Vec<Name>>>,
    /// object → its guard-state shard (created lazily, only for enrolled
    /// objects).
    objects: RwLock<HashMap<Name, Arc<Mutex<ObjectState>>>>,
    mode: EnforcementMode,
    /// Whether monotone approval reuse is enabled (on by default; turn
    /// off to measure the unoptimised Eq. 3.1 gate — see E10).
    approval_reuse: bool,
    /// object → custody state on this coalition member. Consulted only
    /// when `custody_enforced` is set; single-process guards never pay
    /// for it.
    custody: RwLock<HashMap<Name, Custody>>,
    /// Whether decisions require resident custody (default off — the
    /// in-process guard is its own sole custodian).
    custody_enforced: AtomicBool,
    /// The coalition's rendezvous placement ring plus this member's own
    /// name on it. When set, custody claims are validated against the
    /// ring: only the object's home may claim residency by arrival
    /// (explicit handoff imports stay authoritative), so two members can
    /// never both claim a racing arrival.
    placement: RwLock<Option<(String, Placement)>>,
    /// Recycled batch-worker interning tables. Verdicts are
    /// table-independent, so a worker may inherit any table; reuse keeps
    /// the interned alphabet warm across [`CoordinatedGuard::decide_batch`]
    /// calls instead of re-growing it per batch.
    table_pool: Mutex<Vec<AccessTable>>,
}

impl CoordinatedGuard {
    /// Wrap a configured extended-RBAC instance (preventive mode).
    pub fn new(rbac: ExtendedRbac) -> Self {
        CoordinatedGuard {
            rbac: RwLock::new(rbac),
            enrollments: RwLock::new(HashMap::new()),
            objects: RwLock::new(HashMap::new()),
            mode: EnforcementMode::Preventive,
            approval_reuse: true,
            custody: RwLock::new(HashMap::new()),
            custody_enforced: AtomicBool::new(false),
            placement: RwLock::new(None),
            table_pool: Mutex::new(Vec::new()),
        }
    }

    /// Select the enforcement mode.
    pub fn with_mode(mut self, mode: EnforcementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable/disable monotone spatial-approval reuse (default on).
    pub fn with_approval_reuse(mut self, on: bool) -> Self {
        self.approval_reuse = on;
        self
    }

    /// Register which roles an object activates when it first appears
    /// (the Naplet authentication + role-activation step of §5.1).
    pub fn enroll<S: AsRef<str>>(
        &self,
        object: impl AsRef<str>,
        roles: impl IntoIterator<Item = S>,
    ) {
        self.enrollments
            .write()
            .insert(name(object), roles.into_iter().map(name).collect());
    }

    /// Run a closure against the underlying RBAC engine (e.g. to inspect
    /// permission states after a run, or to define validity classes).
    /// Takes the core's write lock: concurrent decisions drain first and
    /// observe the mutation's effects afterwards.
    pub fn with_rbac<R>(&self, f: impl FnOnce(&mut ExtendedRbac) -> R) -> R {
        f(&mut self.rbac.write())
    }

    /// Run a closure against the RBAC engine read-only — concurrent
    /// decisions are *not* drained. This is how a coalition member builds
    /// a [`stacl_rbac::PreparedEpoch`] off the hot path: preparation
    /// reads the engine while decisions keep flowing; only the subsequent
    /// [`ExtendedRbac::activate_epoch`] (via
    /// [`CoordinatedGuard::with_rbac`]) takes the write lock, and only
    /// for the cheap flip.
    pub fn with_rbac_read<R>(&self, f: impl FnOnce(&ExtendedRbac) -> R) -> R {
        f(&self.rbac.read())
    }

    /// The state shard for `object`, created on first contact — but only
    /// for enrolled objects, so strangers cannot grow the shard map.
    fn object_state(&self, object: &str) -> Option<Arc<Mutex<ObjectState>>> {
        if let Some(s) = self.objects.read().get(object) {
            return Some(Arc::clone(s));
        }
        if !self.enrollments.read().contains_key(object) {
            return None;
        }
        let mut map = self.objects.write();
        Some(Arc::clone(map.entry(name(object)).or_insert_with(|| {
            Arc::new(Mutex::new(ObjectState {
                session: None,
                clean: true,
            }))
        })))
    }

    /// Open the object's session and activate its enrolled roles. Called
    /// under the object's shard lock with the rbac lock held.
    fn open_session_for(&self, rbac: &mut ExtendedRbac, object: &str) -> Option<SessionId> {
        let enrollments = self.enrollments.read();
        let roles = enrollments.get(object)?;
        let sid = rbac.open_session(object, vec![]).ok()?;
        for role in roles {
            // A role the user isn't authorized for fails activation; the
            // object then simply lacks those permissions.
            let _ = rbac.activate_role(sid, role);
        }
        Some(sid)
    }

    /// Turn custody enforcement on or off (default off). A networked
    /// coalition member turns it on so that decisions for objects it does
    /// not custody deny fail-safe instead of answering from stale state.
    pub fn set_custody_enforcement(&self, on: bool) {
        self.custody_enforced.store(on, Ordering::Relaxed);
    }

    /// Whether decisions require resident custody.
    pub fn custody_enforced(&self) -> bool {
        self.custody_enforced.load(Ordering::Relaxed)
    }

    /// This member's custody state for `object`. Unknown objects are
    /// [`Custody::Remote`]: nobody is custodian until an arrival claims it.
    pub fn custody_of(&self, object: &str) -> Custody {
        self.custody
            .read()
            .get(object)
            .copied()
            .unwrap_or(Custody::Remote)
    }

    /// Install the coalition's placement ring and this member's name on
    /// it. From then on [`CoordinatedGuard::take_custody`] validates
    /// claims: only the object's rendezvous home may claim residency by
    /// arrival. Pass the new ring again on every membership change.
    pub fn set_placement(&self, member: impl Into<String>, ring: Placement) {
        *self.placement.write() = Some((member.into(), ring));
    }

    /// Remove the placement ring: custody claims go back to first-come
    /// (the pre-ring, single-custodian behaviour).
    pub fn clear_placement(&self) {
        *self.placement.write() = None;
    }

    /// The current placement ring, if one is installed.
    pub fn placement(&self) -> Option<Placement> {
        self.placement.read().as_ref().map(|(_, p)| p.clone())
    }

    /// The rendezvous home for `object` under the installed ring, if any.
    pub fn placement_home(&self, object: &str) -> Option<String> {
        self.placement
            .read()
            .as_ref()
            .and_then(|(_, p)| p.home_of(object).map(str::to_string))
    }

    /// Claim custody of `object` on this member because its arrival was
    /// local. With a placement ring installed the claim is validated:
    /// a member that is not the object's rendezvous home gets an error
    /// (counted `placement.claim-rejected`) and custody stays unclaimed —
    /// the caller maps this to a fail-safe
    /// [`DecisionKind::DeniedCoordination`]. Handoff imports do not pass
    /// through here; see [`CoordinatedGuard::import_object`].
    pub fn take_custody(&self, object: &str) -> Result<(), String> {
        if let Some((member, ring)) = self.placement.read().as_ref() {
            match ring.home_of(object) {
                Some(home) if home == member => {}
                Some(home) => {
                    stacl_obs::count(stacl_obs::Counter::PlacementClaimRejected);
                    return Err(format!(
                        "object `{object}` is homed on `{home}`, not on `{member}`"
                    ));
                }
                None => {
                    stacl_obs::count(stacl_obs::Counter::PlacementClaimRejected);
                    return Err(format!(
                        "placement ring is empty; cannot home object `{object}`"
                    ));
                }
            }
        }
        self.claim_custody(object);
        Ok(())
    }

    /// Unconditionally mark `object` resident — the internal path shared
    /// by validated claims and authoritative handoff imports.
    fn claim_custody(&self, object: &str) {
        self.custody.write().insert(name(object), Custody::Resident);
    }

    /// The objects currently resident on this member — the drain list a
    /// custody rebalance walks after a membership change.
    pub fn resident_objects(&self) -> Vec<String> {
        self.custody
            .read()
            .iter()
            .filter(|(_, c)| **c == Custody::Resident)
            .map(|(n, _)| n.to_string())
            .collect()
    }

    /// Mark `object`'s custody as in flight while a handoff is pulled
    /// from its previous custodian. Decisions deny fail-safe until
    /// [`CoordinatedGuard::take_custody`] (or a successful
    /// [`CoordinatedGuard::import_object`]) resolves it.
    pub fn begin_handoff(&self, object: &str) {
        self.custody.write().insert(name(object), Custody::InFlight);
    }

    /// Export `object`'s transferable state and release custody: this
    /// member stops answering for the object the moment the export is
    /// taken (fail-safe — during the transfer *nobody* grants).
    pub fn export_object(&self, object: &str) -> ObjectHandoff {
        let clean = self
            .object_state(object)
            .map(|st| st.lock().clean)
            .unwrap_or(true);
        let gate = self.rbac.read().export_gate(object);
        self.custody.write().insert(name(object), Custody::Remote);
        ObjectHandoff { clean, gate }
    }

    /// Install a handoff received from the previous custodian and claim
    /// custody. Fails (leaving custody unclaimed) if the object is not
    /// enrolled here or the handoff is malformed.
    pub fn import_object(&self, object: &str, handoff: &ObjectHandoff) -> Result<(), String> {
        let Some(state) = self.object_state(object) else {
            // A custody-only move: the previous custodian held residency
            // but no decision state (never enrolled, never decided — the
            // common case for the cold majority of a million-object
            // coalition). Park residency here; enrollment arrives with
            // policy when the object first matters.
            if handoff.clean && handoff.gate == ObjectGateExport::default() {
                self.claim_custody(object);
                return Ok(());
            }
            return Err(format!("object `{object}` is not enrolled on this member"));
        };
        self.rbac.read().import_gate(object, &handoff.gate)?;
        state.lock().clean = handoff.clean;
        // An explicit import is authoritative: the previous custodian
        // already released, so residency transfers even if the ring says
        // this member is not the home (a rebalance drain will move it).
        self.claim_custody(object);
        Ok(())
    }

    /// The `&self` decision path. Decisions for one object serialize on
    /// that object's shard; the decision core is only *read*-locked (its
    /// own per-object gates serialize what must be), so decisions for
    /// distinct objects run concurrently. In the steady state (session
    /// open, cursor warm or approvals reusable) a granted decision
    /// allocates nothing.
    pub fn decide(
        &self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        // Telemetry wrapper: one verdict counter per decision (so verdict
        // counters sum to total decisions) and a sampled latency histogram.
        let t0 = stacl_obs::decide_timer();
        let v = self.decide_inner(req, proofs, table);
        stacl_obs::count(v.kind.counter());
        stacl_obs::observe_decide(t0);
        v
    }

    fn decide_inner(
        &self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        // Custody gate first: a non-custodian member must not answer from
        // state that may be stale or in transit.
        if self.custody_enforced() {
            let c = self.custody_of(req.object);
            if c != Custody::Resident {
                return Verdict::denied(
                    DecisionKind::DeniedCoordination,
                    format!("object custody is {} on this member", c.label()),
                )
                .with_epoch(self.rbac.read().epoch());
            }
        }
        let Some(state) = self.object_state(req.object) else {
            return DecisionKind::DeniedNoPermission.into();
        };
        // Lock order: object shard, then the rbac core.
        let mut st = state.lock();
        let sid = match st.session {
            Some(sid) => sid,
            None => {
                // First contact: session open mutates the core — brief
                // write lock, released before the decision proper.
                let mut rbac = self.rbac.write();
                let Some(sid) = self.open_session_for(&mut rbac, req.object) else {
                    return DecisionKind::DeniedNoPermission.into();
                };
                st.session = Some(sid);
                sid
            }
        };
        let rbac = self.rbac.read();
        // In reactive mode only the attempted access itself is declared.
        let single;
        let program: &Program = match self.mode {
            EnforcementMode::Preventive => req.remaining,
            EnforcementMode::Reactive => {
                single = Program::Access(req.access.clone());
                &single
            }
        };
        // Spatial approvals are monotone along clean preventive execution
        // (see `AccessRequest::reuse_spatial`).
        let object_clean = st.clean;
        let request = AccessRequest {
            object: req.object,
            session: sid,
            access: req.access,
            program,
            time: req.time,
            reuse_spatial: self.approval_reuse
                && self.mode == EnforcementMode::Preventive
                && object_clean,
        };
        let decision = rbac.decide(&request, proofs, table);
        st.clean = object_clean && decision.is_granted();
        decision
    }

    /// `&self` arrival notification (see [`SecurityGuard::note_arrival`]).
    /// A read lock suffices: arrivals touch only the object's own gate
    /// shard inside the core.
    pub fn note_arrival(&self, object: &str, time: TimePoint) {
        self.rbac.read().note_arrival(object, time);
    }

    /// Decide a batch of requests in parallel, fanned across object
    /// shards on a scoped thread pool. Per-object request order is
    /// preserved (each object's requests run sequentially, in batch
    /// order, on one worker); requests for distinct objects run
    /// concurrently and the result vector lines up with `requests`.
    ///
    /// With `issue_proofs`, each grant's execution proof is issued
    /// (timestamped [`BatchRequest::time`]) before the object's next
    /// request — required for within-batch spatial correctness when the
    /// caller doesn't interleave issuance itself.
    ///
    /// Callers must only batch requests whose decisions are independent:
    /// verdicts depend on per-object state plus the proof store, so
    /// batching is sound per object — but *team-scoped* constraints read
    /// companions' proofs, and those grow in nondeterministic order
    /// within a batch. Batch team-scoped workloads one request at a time
    /// (the sim driver does exactly that).
    pub fn decide_batch(
        &self,
        requests: &[BatchRequest<'_>],
        proofs: &ProofStore,
        issue_proofs: bool,
    ) -> Vec<Verdict> {
        let t0 = stacl_obs::batch_timer();
        // Group request indices by object, preserving first-seen order
        // (and per-object order within each group).
        let mut order: Vec<&str> = Vec::new();
        let mut by_object: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            by_object
                .entry(r.object)
                .or_insert_with(|| {
                    order.push(r.object);
                    Vec::new()
                })
                .push(i);
        }
        // Every name in `order` was inserted above; an (impossible) miss
        // yields an empty group rather than a mid-batch panic.
        let groups: Vec<Vec<usize>> = order
            .iter()
            .map(|o| by_object.remove(o).unwrap_or_default())
            .collect();

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(groups.len())
            .max(1);
        let slots: Vec<Mutex<Option<Verdict>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    // Verdicts are independent of the caller's table (ids
                    // are internal to a decision), so each worker interns
                    // into its own — recycled across batches via the pool
                    // so the alphabet stays warm.
                    let mut table = self.table_pool.lock().pop().unwrap_or_default();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        let Some(group) = groups.get(g) else { break };
                        for &i in group {
                            let r = &requests[i];
                            let gr = GuardRequest {
                                object: r.object,
                                access: r.access,
                                remaining: r.remaining,
                                time: r.time,
                            };
                            // A panicking decision must not take the whole
                            // batch (and its scoped-thread join) down: the
                            // decision core's locks recover from poisoning,
                            // so catch the panic, count it, and deny this
                            // one request fail-safe.
                            let v = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                self.decide(&gr, proofs, &mut table)
                            }))
                            .unwrap_or_else(|_| {
                                stacl_obs::count(stacl_obs::Counter::BatchPanicRecovered);
                                Verdict::denied(
                                    DecisionKind::DeniedNoPermission,
                                    "internal error: decision panicked; denied fail-safe",
                                )
                            });
                            if issue_proofs && v.is_granted() {
                                proofs.issue(r.object, r.access.clone(), r.time);
                            }
                            *slots[i].lock() = Some(v);
                        }
                    }
                    self.table_pool.lock().push(table);
                });
            }
        });
        let verdicts: Vec<Verdict> = slots
            .into_iter()
            .map(|m| {
                // Workers fill every slot; an (impossible) hole denies
                // fail-safe instead of panicking after the batch ran.
                m.into_inner().unwrap_or_else(|| {
                    Verdict::denied(
                        DecisionKind::DeniedNoPermission,
                        "internal error: no verdict recorded for batched request",
                    )
                })
            })
            .collect();
        stacl_obs::observe_batch(t0, requests.len());
        verdicts
    }
}

/// One element of a [`CoordinatedGuard::decide_batch`] batch — a
/// [`GuardRequest`] by another shape (no lifetime-juggling borrows of a
/// loop-local `GuardRequest`).
#[derive(Debug)]
pub struct BatchRequest<'a> {
    /// The requesting mobile object.
    pub object: &'a str,
    /// The access being attempted.
    pub access: &'a Access,
    /// The object's remaining program, including the attempted access.
    pub remaining: &'a Program,
    /// Current virtual time.
    pub time: TimePoint,
}

impl SecurityGuard for CoordinatedGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        self.decide(req, proofs, table)
    }

    fn note_arrival(&mut self, object: &str, time: TimePoint) {
        CoordinatedGuard::note_arrival(self, object, time);
    }
}

/// A guard enforcing one global SRAC constraint on every object — handy
/// for tests and ablations that isolate the spatial checker from RBAC.
///
/// Checks run through the same per-object [`ConstraintCursor`] fast path
/// as the coordinated gate: the old implementation re-materialised the
/// object's *entire* proof history (one `Trace` allocation + full
/// automaton re-walk) on every check; the cursor folds in only the
/// proofs issued since the previous check and falls back to the
/// from-scratch walk exactly when invalid (same rules as
/// `ExtendedRbac` — see DESIGN.md §8).
pub struct SpatialOnlyGuard {
    constraint: Constraint,
    cache: ConstraintCache,
    cursors: HashMap<Name, ConstraintCursor>,
}

impl SpatialOnlyGuard {
    /// Guard with a single coalition-wide constraint.
    pub fn new(constraint: Constraint) -> Self {
        SpatialOnlyGuard {
            constraint,
            cache: ConstraintCache::new(),
            cursors: HashMap::new(),
        }
    }

    fn holds(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> bool {
        let watermark = proofs.watermark_of(req.object);
        // Same decline-attribution as `ExtendedRbac::spatial_holds` minus
        // the rules that don't exist here (no policy generation, no team
        // scope): the first failing DESIGN.md §8 rule is counted.
        match self.cursors.get_mut(req.object) {
            None => stacl_obs::count(stacl_obs::Counter::CursorColdStart),
            Some(cur) if !cur.in_sync_with(table) => {
                stacl_obs::count(stacl_obs::Counter::CursorDeclineTableVersion)
            }
            Some(cur) if cur.consumed() > watermark => {
                stacl_obs::count(stacl_obs::Counter::CursorDeclineWatermark)
            }
            Some(cur) => {
                let mut ok = true;
                {
                    let tbl: &AccessTable = table;
                    proofs.visit_suffix(req.object, cur.consumed(), |p| {
                        if ok {
                            ok = cur.advance_access(&p.access, tbl);
                        }
                    });
                }
                if ok {
                    if let Some(h) = cur.check_residual_program(req.remaining, table) {
                        stacl_obs::count(stacl_obs::Counter::CursorFastPathHit);
                        return h;
                    }
                }
                stacl_obs::count(stacl_obs::Counter::CursorDeclineUnknownSymbol);
            }
        }
        // Slow path + cursor rebuild.
        let history = proofs.history_of(req.object, table);
        let holds = check_residual_cached(
            &history,
            req.remaining,
            &self.constraint,
            table,
            Semantics::ForAll,
            &mut self.cache,
        )
        .holds;
        let mut cursor = ConstraintCursor::new(&self.constraint, table, &mut self.cache);
        if cursor.advance_trace(&history) {
            self.cursors.insert(name(req.object), cursor);
        } else {
            self.cursors.remove(req.object);
        }
        holds
    }
}

impl SecurityGuard for SpatialOnlyGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        let v = if self.holds(req, proofs, table) {
            Verdict::granted()
        } else {
            Verdict::denied(DecisionKind::DeniedSpatial, self.constraint.to_string())
        };
        stacl_obs::count(v.kind.counter());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_rbac::{AccessPattern, Permission, RbacModel};
    use stacl_sral::builder::access;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn permissive_grants_everything() {
        let mut g = PermissiveGuard;
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("anything", "at-all", "anywhere");
        let p = access("anything", "at-all", "anywhere");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn coordinated_guard_opens_sessions_lazily() {
        let mut m = RbacModel::new();
        m.add_user("n1");
        m.add_role("r");
        m.add_permission(Permission::new("p", AccessPattern::any()))
            .unwrap();
        m.assign_permission("r", "p").unwrap();
        m.assign_user("n1", "r").unwrap();
        let g = CoordinatedGuard::new(ExtendedRbac::new(m));
        g.enroll("n1", ["r"]);

        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("read", "x", "s");
        let p = access("read", "x", "s");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        // Through the shared `&self` path — no mut binding needed.
        assert!(g.decide(&req, &proofs, &mut table).is_granted());
        // Unenrolled object: denied.
        let req2 = GuardRequest {
            object: "stranger",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert_eq!(
            g.decide(&req2, &proofs, &mut table).kind,
            DecisionKind::DeniedNoPermission
        );
    }

    #[test]
    fn spatial_only_guard_enforces_constraint() {
        use stacl_srac::parser::parse_constraint;
        let mut g = SpatialOnlyGuard::new(parse_constraint("count(0, 1, resource=rsw)").unwrap());
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("exec", "rsw", "s1");
        let p = access("exec", "rsw", "s1");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
        // After one proof, a second access would exceed the cap.
        proofs.issue("o", a.clone(), tp(0.0));
        assert_eq!(
            g.check(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedSpatial
        );
    }

    #[test]
    fn custody_gates_decisions_and_hands_off() {
        fn guard() -> CoordinatedGuard {
            let mut m = RbacModel::new();
            m.add_user("n1");
            m.add_role("r");
            m.add_permission(Permission::new("p", AccessPattern::any()))
                .unwrap();
            m.assign_permission("r", "p").unwrap();
            m.assign_user("n1", "r").unwrap();
            let g = CoordinatedGuard::new(ExtendedRbac::new(m));
            g.enroll("n1", ["r"]);
            g
        }
        let a = Access::new("read", "x", "s");
        let p = access("read", "x", "s");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();

        // Enforcement off (default): custody is never consulted.
        let g1 = guard();
        assert!(!g1.custody_enforced());
        assert!(g1.decide(&req, &proofs, &mut table).is_granted());

        // Enforcement on: no custody yet → DeniedCoordination; after an
        // arrival claims it, decisions flow.
        let g1 = guard();
        g1.set_custody_enforcement(true);
        assert_eq!(g1.custody_of("n1"), Custody::Remote);
        assert_eq!(
            g1.decide(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedCoordination
        );
        g1.take_custody("n1").expect("no ring: claim is free");
        g1.note_arrival("n1", tp(0.0));
        assert!(g1.decide(&req, &proofs, &mut table).is_granted());

        // Handoff to a second member: the sender stops answering the
        // moment the export is taken; the importer answers after.
        let h = g1.export_object("n1");
        assert_eq!(g1.custody_of("n1"), Custody::Remote);
        assert_eq!(
            g1.decide(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedCoordination
        );
        let g2 = guard();
        g2.set_custody_enforcement(true);
        g2.begin_handoff("n1");
        assert_eq!(g2.custody_of("n1"), Custody::InFlight);
        assert_eq!(
            g2.decide(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedCoordination
        );
        g2.import_object("n1", &h).unwrap();
        assert_eq!(g2.custody_of("n1"), Custody::Resident);
        assert!(g2.decide(&req, &proofs, &mut table).is_granted());

        // Importing for a stranger fails and leaves custody unclaimed.
        let g3 = guard();
        g3.set_custody_enforcement(true);
        assert!(g3.import_object("stranger", &h).is_err());
        assert_eq!(g3.custody_of("stranger"), Custody::Remote);
    }

    /// Satellite regression: with a placement ring installed, two members
    /// racing the same arrival can no longer both claim residency — the
    /// non-home claim errors (counted) and that member keeps denying
    /// fail-safe with `DeniedCoordination`.
    #[test]
    fn placement_ring_rejects_double_custody_claims() {
        fn guard() -> CoordinatedGuard {
            let mut m = RbacModel::new();
            m.add_user("n1");
            m.add_role("r");
            m.add_permission(Permission::new("p", AccessPattern::any()))
                .unwrap();
            m.assign_permission("r", "p").unwrap();
            m.assign_user("n1", "r").unwrap();
            let g = CoordinatedGuard::new(ExtendedRbac::new(m));
            g.enroll("n1", ["r"]);
            g.set_custody_enforcement(true);
            g
        }
        stacl_obs::set_telemetry(true);
        let baseline = stacl_obs::snapshot();

        let ring = stacl_coalition::Placement::new(["m1", "m2"]);
        let home = ring.home_of("n1").unwrap().to_string();
        let other = if home == "m1" { "m2" } else { "m1" };

        let g_home = guard();
        g_home.set_placement(&home, ring.clone());
        let g_other = guard();
        g_other.set_placement(other, ring.clone());
        assert_eq!(g_other.placement_home("n1"), Some(home.clone()));

        // The race: both members see the arrival and claim custody.
        g_home.take_custody("n1").expect("home claim is valid");
        let err = g_other.take_custody("n1").expect_err("non-home claim");
        assert!(
            err.contains("homed on"),
            "claim error names the home: {err}"
        );
        assert_eq!(g_home.custody_of("n1"), Custody::Resident);
        assert_eq!(g_other.custody_of("n1"), Custody::Remote);

        // The loser keeps denying fail-safe.
        let a = Access::new("read", "x", "s");
        let p = access("read", "x", "s");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        g_home.note_arrival("n1", tp(0.0));
        assert!(g_home.decide(&req, &proofs, &mut table).is_granted());
        assert_eq!(
            g_other.decide(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedCoordination
        );
        let d = stacl_obs::snapshot().diff(&baseline);
        assert!(
            d.counter(stacl_obs::Counter::PlacementClaimRejected) >= 1,
            "rejected claim was counted"
        );

        // An explicit handoff import stays authoritative even off-home.
        let h = g_home.export_object("n1");
        g_other.import_object("n1", &h).expect("import off-home");
        assert_eq!(g_other.custody_of("n1"), Custody::Resident);
        assert_eq!(g_other.resident_objects(), vec!["n1".to_string()]);
    }

    #[test]
    fn guard_is_share_ready() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CoordinatedGuard>();
    }
}
