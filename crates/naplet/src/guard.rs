//! The security-guard interception point — the Rust counterpart of the
//! Naplet prototype's `NapletSecurityManager` (§5.2).
//!
//! Every shared-resource access an agent attempts flows through exactly
//! one [`SecurityGuard::check`] call carrying the requesting object, the
//! access, the object's *remaining program* and the current time; the
//! guard also sees the proof store (the object's cross-server history) and
//! may record state of its own.

use stacl_coalition::{DecisionKind, ProofStore};
use stacl_rbac::{AccessRequest, ExtendedRbac, SessionId};
use stacl_sral::{Access, Program};
use stacl_srac::Constraint;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

use std::collections::HashMap;

/// One interception: everything a guard may consult.
pub struct GuardRequest<'a> {
    /// The requesting mobile object.
    pub object: &'a str,
    /// The access being attempted.
    pub access: &'a Access,
    /// The object's remaining program (declared future behaviour),
    /// including the access being attempted.
    pub remaining: &'a Program,
    /// Current virtual time.
    pub time: TimePoint,
}

/// The interception interface.
pub trait SecurityGuard: Send {
    /// Decide the request. Proof issuance and logging are done by the
    /// system after a grant.
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> DecisionKind;

    /// Notification that `object` arrived at a server (migration or
    /// creation) — lets temporal schemes refill per-server budgets.
    fn note_arrival(&mut self, _object: &str, _time: TimePoint) {}
}

/// A guard that grants everything — the no-access-control baseline and
/// the default for substrate tests.
pub struct PermissiveGuard;

impl SecurityGuard for PermissiveGuard {
    fn check(
        &mut self,
        _req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> DecisionKind {
        DecisionKind::Granted
    }
}

/// How the coordinated guard interprets the spatial constraint at each
/// interception.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EnforcementMode {
    /// **Preventive** (Eq. 3.1 verbatim): the object's *entire declared
    /// remaining program* must satisfy the constraint on every trace. An
    /// over-committing program is denied at its very first access, before
    /// any damage. The default.
    #[default]
    Preventive,
    /// **Reactive**: only the proven history plus the access being
    /// attempted are checked. Denial happens exactly at the access that
    /// would cross the line — the reading behind the paper's motivating
    /// "overused on s1 ⇒ denied on s2" example.
    Reactive,
}

/// The coordinated guard: extended RBAC with spatio-temporal constraints
/// (the paper's model, end to end).
///
/// Each mobile object is an RBAC user; on its first access the guard
/// opens a session and activates the roles registered for the object via
/// [`CoordinatedGuard::enroll`].
pub struct CoordinatedGuard {
    rbac: ExtendedRbac,
    /// object → roles to activate on first contact.
    enrollments: HashMap<String, Vec<String>>,
    /// object → open session.
    sessions: HashMap<String, SessionId>,
    mode: EnforcementMode,
    /// Objects whose every decision so far was a grant — the condition
    /// under which preventive-mode spatial approvals may be reused.
    clean: HashMap<String, bool>,
    /// Whether monotone approval reuse is enabled (on by default; turn
    /// off to measure the unoptimised Eq. 3.1 gate — see E10).
    approval_reuse: bool,
}

impl CoordinatedGuard {
    /// Wrap a configured extended-RBAC instance (preventive mode).
    pub fn new(rbac: ExtendedRbac) -> Self {
        CoordinatedGuard {
            rbac,
            enrollments: HashMap::new(),
            sessions: HashMap::new(),
            mode: EnforcementMode::Preventive,
            clean: HashMap::new(),
            approval_reuse: true,
        }
    }

    /// Select the enforcement mode.
    pub fn with_mode(mut self, mode: EnforcementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable/disable monotone spatial-approval reuse (default on).
    pub fn with_approval_reuse(mut self, on: bool) -> Self {
        self.approval_reuse = on;
        self
    }

    /// Register which roles an object activates when it first appears
    /// (the Naplet authentication + role-activation step of §5.1).
    pub fn enroll<S: AsRef<str>>(
        &mut self,
        object: impl AsRef<str>,
        roles: impl IntoIterator<Item = S>,
    ) {
        self.enrollments.insert(
            object.as_ref().to_string(),
            roles.into_iter().map(|r| r.as_ref().to_string()).collect(),
        );
    }

    /// Access the underlying RBAC engine (e.g. to inspect permission
    /// states after a run).
    pub fn rbac(&self) -> &ExtendedRbac {
        &self.rbac
    }

    /// Mutable access to the underlying RBAC engine.
    pub fn rbac_mut(&mut self) -> &mut ExtendedRbac {
        &mut self.rbac
    }

    fn session_for(&mut self, object: &str) -> Option<SessionId> {
        if let Some(&sid) = self.sessions.get(object) {
            return Some(sid);
        }
        let roles = self.enrollments.get(object)?.clone();
        let sid = self.rbac.open_session(object, vec![]).ok()?;
        for role in &roles {
            // A role the user isn't authorized for fails activation; the
            // object then simply lacks those permissions.
            let _ = self.rbac.activate_role(sid, role);
        }
        self.sessions.insert(object.to_string(), sid);
        Some(sid)
    }
}

impl SecurityGuard for CoordinatedGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> DecisionKind {
        let Some(sid) = self.session_for(req.object) else {
            return DecisionKind::DeniedNoPermission;
        };
        // In reactive mode only the attempted access itself is declared.
        let single;
        let program: &Program = match self.mode {
            EnforcementMode::Preventive => req.remaining,
            EnforcementMode::Reactive => {
                single = Program::Access(req.access.clone());
                &single
            }
        };
        // Spatial approvals are monotone along clean preventive execution
        // (see `AccessRequest::reuse_spatial`).
        let object_clean = *self.clean.get(req.object).unwrap_or(&true);
        let request = AccessRequest {
            object: req.object,
            session: sid,
            access: req.access,
            program,
            time: req.time,
            reuse_spatial: self.approval_reuse
                && self.mode == EnforcementMode::Preventive
                && object_clean,
        };
        let decision = self.rbac.decide(&request, proofs, table);
        self.clean
            .insert(req.object.to_string(), object_clean && decision.is_granted());
        decision
    }

    fn note_arrival(&mut self, object: &str, time: TimePoint) {
        self.rbac.note_arrival(object, time);
    }
}

/// A guard enforcing one global SRAC constraint on every object — handy
/// for tests and ablations that isolate the spatial checker from RBAC.
pub struct SpatialOnlyGuard {
    constraint: Constraint,
}

impl SpatialOnlyGuard {
    /// Guard with a single coalition-wide constraint.
    pub fn new(constraint: Constraint) -> Self {
        SpatialOnlyGuard { constraint }
    }
}

impl SecurityGuard for SpatialOnlyGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> DecisionKind {
        let history = proofs.history_of(req.object, table);
        let verdict = stacl_srac::check::check_residual(
            &history,
            req.remaining,
            &self.constraint,
            table,
            stacl_srac::check::Semantics::ForAll,
        );
        if verdict.holds {
            DecisionKind::Granted
        } else {
            DecisionKind::DeniedSpatial {
                constraint: self.constraint.to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_rbac::{AccessPattern, Permission, RbacModel};
    use stacl_sral::builder::access;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn permissive_grants_everything() {
        let mut g = PermissiveGuard;
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("anything", "at-all", "anywhere");
        let p = access("anything", "at-all", "anywhere");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn coordinated_guard_opens_sessions_lazily() {
        let mut m = RbacModel::new();
        m.add_user("n1");
        m.add_role("r");
        m.add_permission(Permission::new("p", AccessPattern::any()))
            .unwrap();
        m.assign_permission("r", "p").unwrap();
        m.assign_user("n1", "r").unwrap();
        let mut g = CoordinatedGuard::new(ExtendedRbac::new(m));
        g.enroll("n1", ["r"]);

        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("read", "x", "s");
        let p = access("read", "x", "s");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
        // Unenrolled object: denied.
        let req2 = GuardRequest {
            object: "stranger",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert_eq!(
            g.check(&req2, &proofs, &mut table),
            DecisionKind::DeniedNoPermission
        );
    }

    #[test]
    fn spatial_only_guard_enforces_constraint() {
        use stacl_srac::parser::parse_constraint;
        let mut g = SpatialOnlyGuard::new(parse_constraint("count(0, 1, resource=rsw)").unwrap());
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("exec", "rsw", "s1");
        let p = access("exec", "rsw", "s1");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
        // After one proof, a second access would exceed the cap.
        proofs.issue("o", a.clone(), tp(0.0));
        assert!(matches!(
            g.check(&req, &proofs, &mut table),
            DecisionKind::DeniedSpatial { .. }
        ));
    }
}
