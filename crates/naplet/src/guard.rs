//! The security-guard interception point — the Rust counterpart of the
//! Naplet prototype's `NapletSecurityManager` (§5.2).
//!
//! Every shared-resource access an agent attempts flows through exactly
//! one [`SecurityGuard::check`] call carrying the requesting object, the
//! access, the object's *remaining program* and the current time; the
//! guard also sees the proof store (the object's cross-server history) and
//! may record state of its own.
//!
//! [`CoordinatedGuard`] keeps its per-object state (open session, clean
//! record) in **per-object shards** behind fine-grained locks and exposes
//! a `&self` decision path ([`CoordinatedGuard::decide`]), so one guard
//! can serve concurrent per-object request streams; the
//! [`SecurityGuard`] impl is a thin `&mut` adapter over it.

use stacl_coalition::{DecisionKind, ProofStore, Verdict};
use stacl_ids::sync::{Mutex, RwLock};
use stacl_rbac::{AccessRequest, ExtendedRbac, SessionId};
use stacl_srac::Constraint;
use stacl_sral::ast::{name, Name};
use stacl_sral::{Access, Program};
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

use std::collections::HashMap;
use std::sync::Arc;

/// One interception: everything a guard may consult.
pub struct GuardRequest<'a> {
    /// The requesting mobile object.
    pub object: &'a str,
    /// The access being attempted.
    pub access: &'a Access,
    /// The object's remaining program (declared future behaviour),
    /// including the access being attempted.
    pub remaining: &'a Program,
    /// Current virtual time.
    pub time: TimePoint,
}

/// The interception interface.
pub trait SecurityGuard: Send {
    /// Decide the request. Proof issuance and logging are done by the
    /// system after a grant.
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict;

    /// Notification that `object` arrived at a server (migration or
    /// creation) — lets temporal schemes refill per-server budgets.
    fn note_arrival(&mut self, _object: &str, _time: TimePoint) {}
}

/// A guard that grants everything — the no-access-control baseline and
/// the default for substrate tests.
pub struct PermissiveGuard;

impl SecurityGuard for PermissiveGuard {
    fn check(
        &mut self,
        _req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        Verdict::granted()
    }
}

/// How the coordinated guard interprets the spatial constraint at each
/// interception.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EnforcementMode {
    /// **Preventive** (Eq. 3.1 verbatim): the object's *entire declared
    /// remaining program* must satisfy the constraint on every trace. An
    /// over-committing program is denied at its very first access, before
    /// any damage. The default.
    #[default]
    Preventive,
    /// **Reactive**: only the proven history plus the access being
    /// attempted are checked. Denial happens exactly at the access that
    /// would cross the line — the reading behind the paper's motivating
    /// "overused on s1 ⇒ denied on s2" example.
    Reactive,
}

/// Per-object guard state, one shard per enrolled object.
#[derive(Debug)]
struct ObjectState {
    /// The object's open session, established on first contact.
    session: Option<SessionId>,
    /// True while every decision so far was a grant — the condition under
    /// which preventive-mode spatial approvals may be reused.
    clean: bool,
}

/// The coordinated guard: extended RBAC with spatio-temporal constraints
/// (the paper's model, end to end).
///
/// Each mobile object is an RBAC user; on its first access the guard
/// opens a session and activates the roles registered for the object via
/// [`CoordinatedGuard::enroll`].
///
/// All state lives behind interior locks: the decision core in one
/// [`Mutex`], each object's session/clean record in its own shard. The
/// real decision path is the `&self` [`CoordinatedGuard::decide`];
/// [`SecurityGuard::check`] simply forwards to it.
pub struct CoordinatedGuard {
    /// The decision core. Lock order: object shard first, then this —
    /// never the reverse.
    rbac: Mutex<ExtendedRbac>,
    /// object → roles to activate on first contact.
    enrollments: RwLock<HashMap<Name, Vec<Name>>>,
    /// object → its guard-state shard (created lazily, only for enrolled
    /// objects).
    objects: RwLock<HashMap<Name, Arc<Mutex<ObjectState>>>>,
    mode: EnforcementMode,
    /// Whether monotone approval reuse is enabled (on by default; turn
    /// off to measure the unoptimised Eq. 3.1 gate — see E10).
    approval_reuse: bool,
}

impl CoordinatedGuard {
    /// Wrap a configured extended-RBAC instance (preventive mode).
    pub fn new(rbac: ExtendedRbac) -> Self {
        CoordinatedGuard {
            rbac: Mutex::new(rbac),
            enrollments: RwLock::new(HashMap::new()),
            objects: RwLock::new(HashMap::new()),
            mode: EnforcementMode::Preventive,
            approval_reuse: true,
        }
    }

    /// Select the enforcement mode.
    pub fn with_mode(mut self, mode: EnforcementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable/disable monotone spatial-approval reuse (default on).
    pub fn with_approval_reuse(mut self, on: bool) -> Self {
        self.approval_reuse = on;
        self
    }

    /// Register which roles an object activates when it first appears
    /// (the Naplet authentication + role-activation step of §5.1).
    pub fn enroll<S: AsRef<str>>(
        &self,
        object: impl AsRef<str>,
        roles: impl IntoIterator<Item = S>,
    ) {
        self.enrollments
            .write()
            .insert(name(object), roles.into_iter().map(name).collect());
    }

    /// Run a closure against the underlying RBAC engine (e.g. to inspect
    /// permission states after a run, or to define validity classes).
    pub fn with_rbac<R>(&self, f: impl FnOnce(&mut ExtendedRbac) -> R) -> R {
        f(&mut self.rbac.lock())
    }

    /// The state shard for `object`, created on first contact — but only
    /// for enrolled objects, so strangers cannot grow the shard map.
    fn object_state(&self, object: &str) -> Option<Arc<Mutex<ObjectState>>> {
        if let Some(s) = self.objects.read().get(object) {
            return Some(Arc::clone(s));
        }
        if !self.enrollments.read().contains_key(object) {
            return None;
        }
        let mut map = self.objects.write();
        Some(Arc::clone(map.entry(name(object)).or_insert_with(|| {
            Arc::new(Mutex::new(ObjectState {
                session: None,
                clean: true,
            }))
        })))
    }

    /// Open the object's session and activate its enrolled roles. Called
    /// under the object's shard lock with the rbac lock held.
    fn open_session_for(&self, rbac: &mut ExtendedRbac, object: &str) -> Option<SessionId> {
        let enrollments = self.enrollments.read();
        let roles = enrollments.get(object)?;
        let sid = rbac.open_session(object, vec![]).ok()?;
        for role in roles {
            // A role the user isn't authorized for fails activation; the
            // object then simply lacks those permissions.
            let _ = rbac.activate_role(sid, role);
        }
        Some(sid)
    }

    /// The `&self` decision path. Decisions for one object serialize on
    /// that object's shard; the decision core is locked only for the
    /// actual gate call. In the steady state (session open, approvals
    /// reusable) a granted decision allocates nothing.
    pub fn decide(
        &self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        let Some(state) = self.object_state(req.object) else {
            return DecisionKind::DeniedNoPermission.into();
        };
        // Lock order: object shard, then the rbac core.
        let mut st = state.lock();
        let mut rbac = self.rbac.lock();
        let sid = match st.session {
            Some(sid) => sid,
            None => {
                let Some(sid) = self.open_session_for(&mut rbac, req.object) else {
                    return DecisionKind::DeniedNoPermission.into();
                };
                st.session = Some(sid);
                sid
            }
        };
        // In reactive mode only the attempted access itself is declared.
        let single;
        let program: &Program = match self.mode {
            EnforcementMode::Preventive => req.remaining,
            EnforcementMode::Reactive => {
                single = Program::Access(req.access.clone());
                &single
            }
        };
        // Spatial approvals are monotone along clean preventive execution
        // (see `AccessRequest::reuse_spatial`).
        let object_clean = st.clean;
        let request = AccessRequest {
            object: req.object,
            session: sid,
            access: req.access,
            program,
            time: req.time,
            reuse_spatial: self.approval_reuse
                && self.mode == EnforcementMode::Preventive
                && object_clean,
        };
        let decision = rbac.decide(&request, proofs, table);
        st.clean = object_clean && decision.is_granted();
        decision
    }

    /// `&self` arrival notification (see [`SecurityGuard::note_arrival`]).
    pub fn note_arrival(&self, object: &str, time: TimePoint) {
        self.rbac.lock().note_arrival(object, time);
    }
}

impl SecurityGuard for CoordinatedGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        self.decide(req, proofs, table)
    }

    fn note_arrival(&mut self, object: &str, time: TimePoint) {
        CoordinatedGuard::note_arrival(self, object, time);
    }
}

/// A guard enforcing one global SRAC constraint on every object — handy
/// for tests and ablations that isolate the spatial checker from RBAC.
pub struct SpatialOnlyGuard {
    constraint: Constraint,
}

impl SpatialOnlyGuard {
    /// Guard with a single coalition-wide constraint.
    pub fn new(constraint: Constraint) -> Self {
        SpatialOnlyGuard { constraint }
    }
}

impl SecurityGuard for SpatialOnlyGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        table: &mut AccessTable,
    ) -> Verdict {
        let history = proofs.history_of(req.object, table);
        let verdict = stacl_srac::check::check_residual(
            &history,
            req.remaining,
            &self.constraint,
            table,
            stacl_srac::check::Semantics::ForAll,
        );
        if verdict.holds {
            Verdict::granted()
        } else {
            Verdict::denied(DecisionKind::DeniedSpatial, self.constraint.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_rbac::{AccessPattern, Permission, RbacModel};
    use stacl_sral::builder::access;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn permissive_grants_everything() {
        let mut g = PermissiveGuard;
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("anything", "at-all", "anywhere");
        let p = access("anything", "at-all", "anywhere");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn coordinated_guard_opens_sessions_lazily() {
        let mut m = RbacModel::new();
        m.add_user("n1");
        m.add_role("r");
        m.add_permission(Permission::new("p", AccessPattern::any()))
            .unwrap();
        m.assign_permission("r", "p").unwrap();
        m.assign_user("n1", "r").unwrap();
        let g = CoordinatedGuard::new(ExtendedRbac::new(m));
        g.enroll("n1", ["r"]);

        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("read", "x", "s");
        let p = access("read", "x", "s");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        // Through the shared `&self` path — no mut binding needed.
        assert!(g.decide(&req, &proofs, &mut table).is_granted());
        // Unenrolled object: denied.
        let req2 = GuardRequest {
            object: "stranger",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert_eq!(
            g.decide(&req2, &proofs, &mut table).kind,
            DecisionKind::DeniedNoPermission
        );
    }

    #[test]
    fn spatial_only_guard_enforces_constraint() {
        use stacl_srac::parser::parse_constraint;
        let mut g = SpatialOnlyGuard::new(parse_constraint("count(0, 1, resource=rsw)").unwrap());
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("exec", "rsw", "s1");
        let p = access("exec", "rsw", "s1");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
        // After one proof, a second access would exceed the cap.
        proofs.issue("o", a.clone(), tp(0.0));
        assert_eq!(
            g.check(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedSpatial
        );
    }

    #[test]
    fn guard_is_share_ready() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CoordinatedGuard>();
    }
}
