//! The Naplet system: a deterministic cooperative scheduler that executes
//! agents' SRAL programs over the coalition substrate.
//!
//! Semantics follow Definition 3.1 and the Naplet prototype (§5):
//!
//! * **Accesses** `op r @ s` are intercepted by the system's
//!   [`SecurityGuard`]; a grant issues an execution proof and costs
//!   [`SystemConfig::access_cost`] virtual seconds. If the agent is not at
//!   server `s`, it migrates there first (departure/arrival events,
//!   [`SystemConfig::migration_cost`], per-server budget refills).
//! * **Channels** `ch?x` / `ch!e` block the receiving strand while empty
//!   and wake it on send.
//! * **Signals** `signal(ξ)` / `wait(ξ)` enforce the signal-first order.
//! * **Parallel composition** clones a strand (the paper's cloned
//!   naplets); the parent joins both strands before continuing.
//!
//! Scheduling is round-robin over runnable strands, with FIFO wake-ups —
//! fully deterministic, so every test and benchmark is reproducible.

use std::collections::VecDeque;

use stacl_coalition::{
    AccessLog, ChannelHub, CoalitionEnv, DecisionKind, EventQueue, ProofStore, SignalBoard,
    Verdict, VirtualClock,
};
use stacl_sral::ast::{Name, Program};
use stacl_sral::{Env, Value};
use stacl_temporal::{TimeDelta, TimePoint};
use stacl_trace::AccessTable;

use crate::agent::{AgentStatus, NapletSpec, OnDeny};
use crate::guard::{GuardRequest, SecurityGuard};
use crate::monitor::{LifecycleEvent, Monitor};

/// Virtual-time costs and budgets for a run.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Seconds charged per granted access.
    pub access_cost: f64,
    /// Seconds charged per migration between servers.
    pub migration_cost: f64,
    /// Seconds charged per silent step (assignment, branch, send…).
    pub step_cost: f64,
    /// Maximum scheduler steps before the run is cut off.
    pub max_steps: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            access_cost: 1.0,
            migration_cost: 5.0,
            step_cost: 0.0,
            max_steps: 1_000_000,
        }
    }
}

/// Aggregate results of a run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Agents that completed their programs.
    pub finished: usize,
    /// Agents aborted on a denial or kill.
    pub aborted: usize,
    /// Agents still blocked at quiescence (deadlock / missing companion).
    pub deadlocked: usize,
    /// Agents stopped by the step budget.
    pub out_of_budget: usize,
    /// Agents that faulted on an evaluation error.
    pub faulted: usize,
    /// Total scheduler steps executed.
    pub steps: u64,
    /// Virtual time at the end of the run.
    pub end_time: TimePoint,
    /// Final status of every agent, in spawn order.
    pub statuses: Vec<(Name, AgentStatus)>,
}

/// One execution frame of a strand.
#[derive(Clone, Debug)]
enum Frame {
    /// Run a program fragment.
    Prog(Program),
    /// Wait until join counter `0` (parent side of a `||`).
    Join(usize),
    /// Decrement join counter and wake the parent (child side).
    JoinDone(usize),
}

#[derive(Clone, PartialEq, Debug)]
enum Block {
    Channel(Name),
    Signal(Name),
    Join(usize),
}

struct Strand {
    agent: usize,
    frames: Vec<Frame>,
    server: Name,
    blocked: Option<Block>,
    dead: bool,
}

struct AgentRt {
    spec: NapletSpec,
    env: Env,
    status: Option<AgentStatus>,
    live_strands: usize,
}

/// The mobile-agent system (scheduler + substrate handles).
pub struct NapletSystem {
    env: CoalitionEnv,
    /// Per-server clock skew (seconds) applied to proof timestamps — the
    /// paper's "no global clock in distributed systems": each server
    /// stamps execution proofs with its local view of time. The scheduler
    /// itself stays on the global virtual clock.
    skews: std::collections::HashMap<Name, f64>,
    guard: Box<dyn SecurityGuard>,
    config: SystemConfig,
    clock: VirtualClock,
    channels: ChannelHub,
    signals: SignalBoard,
    proofs: ProofStore,
    log: AccessLog,
    monitor: Monitor,
    table: AccessTable,
    agents: Vec<AgentRt>,
    strands: Vec<Strand>,
    runnable: VecDeque<usize>,
    joins: Vec<usize>,
    /// Agents scheduled to appear at future virtual times (the
    /// discrete-event spawning facility).
    pending_spawns: EventQueue<NapletSpec>,
}

impl NapletSystem {
    /// Create a system over a coalition topology with a security guard.
    pub fn new(env: CoalitionEnv, guard: Box<dyn SecurityGuard>) -> Self {
        NapletSystem {
            env,
            skews: std::collections::HashMap::new(),
            guard,
            config: SystemConfig::default(),
            clock: VirtualClock::new(),
            channels: ChannelHub::new(),
            signals: SignalBoard::new(),
            proofs: ProofStore::new(),
            log: AccessLog::new(),
            monitor: Monitor::new(),
            table: AccessTable::new(),
            agents: Vec::new(),
            strands: Vec::new(),
            runnable: VecDeque::new(),
            joins: Vec::new(),
            pending_spawns: EventQueue::new(),
        }
    }

    /// Override the cost model.
    pub fn with_config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Model the absence of a global clock: `server`'s proof timestamps
    /// are offset by `skew_seconds` from the scheduler's virtual time.
    pub fn with_server_skew(mut self, server: impl AsRef<str>, skew_seconds: f64) -> Self {
        assert!(skew_seconds.is_finite());
        self.skews
            .insert(stacl_sral::ast::name(server), skew_seconds);
        self
    }

    /// The server-local timestamp for an event happening now at `server`.
    fn local_time(&self, server: &str) -> TimePoint {
        let skew = self.skews.get(server).copied().unwrap_or(0.0);
        TimePoint::new(self.clock.now().seconds() + skew)
    }

    /// Spawn an agent; it becomes runnable immediately. Returns its index.
    pub fn spawn(&mut self, spec: NapletSpec) -> usize {
        let agent_ix = self.agents.len();
        let now = self.clock.now();
        self.monitor.emit(LifecycleEvent::Created {
            agent: spec.name.clone(),
            server: spec.home.clone(),
            time: now,
        });
        self.guard.note_arrival(&spec.name, now);
        let mut spec = spec;
        {
            let hooks = spec.hooks.clone();
            hooks.on_create(&mut spec.env, &spec.home);
        }
        let strand = Strand {
            agent: agent_ix,
            frames: vec![Frame::Prog(spec.program.clone())],
            server: spec.home.clone(),
            blocked: None,
            dead: false,
        };
        self.agents.push(AgentRt {
            env: spec.env.clone(),
            spec,
            status: None,
            live_strands: 1,
        });
        let sid = self.strands.len();
        self.strands.push(strand);
        self.runnable.push_back(sid);
        agent_ix
    }

    /// The execution-proof store (the objects' `Pr_x` history).
    pub fn proofs(&self) -> &ProofStore {
        &self.proofs
    }

    /// The grant/denial audit log.
    pub fn log(&self) -> &AccessLog {
        &self.log
    }

    /// The lifecycle monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The channel hub (e.g. to seed inputs or read results).
    pub fn channels(&self) -> &ChannelHub {
        &self.channels
    }

    /// The signal board.
    pub fn signals(&self) -> &SignalBoard {
        &self.signals
    }

    /// The access interner shared with the guard.
    pub fn table(&self) -> &AccessTable {
        &self.table
    }

    /// The security guard (e.g. to inspect RBAC state after a run).
    pub fn guard(&self) -> &dyn SecurityGuard {
        &*self.guard
    }

    /// Final status of an agent by spawn index (after [`run`](Self::run)).
    pub fn status_of(&self, agent_ix: usize) -> Option<&AgentStatus> {
        self.agents.get(agent_ix).and_then(|a| a.status.as_ref())
    }

    /// Schedule an agent to be created at a future virtual time — e.g.
    /// staggered device arrivals or a delayed auditor dispatch. Times in
    /// the past spawn at the current clock.
    pub fn spawn_at(&mut self, time: TimePoint, spec: NapletSpec) {
        self.pending_spawns.schedule(time, spec);
    }

    /// Create any scheduled agents whose time has come; when nothing is
    /// runnable, jump the clock to the next scheduled spawn. Returns
    /// whether any agent was spawned.
    fn release_due_spawns(&mut self, jump: bool) -> bool {
        if jump && self.runnable.is_empty() {
            if let Some(t) = self.pending_spawns.peek_time() {
                self.clock.advance_to(t);
            }
        }
        let mut spawned = false;
        while self
            .pending_spawns
            .peek_time()
            .is_some_and(|t| t <= self.clock.now())
        {
            let (_, spec) = self.pending_spawns.pop().expect("peeked");
            self.spawn(spec);
            spawned = true;
        }
        spawned
    }

    /// Run to quiescence: all agents finished/aborted, deadlock, or the
    /// step budget is exhausted.
    pub fn run(&mut self) -> RunReport {
        let mut steps: u64 = 0;
        self.release_due_spawns(false);
        loop {
            if steps >= self.config.max_steps {
                self.mark_remaining(AgentStatus::OutOfBudget);
                break;
            }
            self.release_due_spawns(false);
            let Some(sid) = self.runnable.pop_front() else {
                // Nothing runnable: any wakeable blocked strands? Any
                // future spawns to jump to?
                if self.wake_blocked() {
                    continue;
                }
                if self.release_due_spawns(true) {
                    continue;
                }
                self.mark_remaining(AgentStatus::Deadlocked);
                break;
            };
            if self.strands[sid].dead {
                continue;
            }
            steps += 1;
            self.step(sid);
        }
        self.report(steps)
    }

    /// Execute one frame of strand `sid`.
    fn step(&mut self, sid: usize) {
        let Some(frame) = self.strands[sid].frames.pop() else {
            self.strand_finished(sid);
            return;
        };
        match frame {
            Frame::Join(j) => {
                if self.joins[j] == 0 {
                    self.requeue(sid);
                } else {
                    self.block(sid, Block::Join(j), Frame::Join(j));
                }
            }
            Frame::JoinDone(j) => {
                self.joins[j] = self.joins[j].saturating_sub(1);
                if self.joins[j] == 0 {
                    self.wake_matching(&Block::Join(j));
                }
                self.requeue(sid);
            }
            Frame::Prog(p) => self.step_program(sid, p),
        }
        // A strand whose stack drained after this step is finished.
        if !self.strands[sid].dead
            && self.strands[sid].blocked.is_none()
            && self.strands[sid].frames.is_empty()
        {
            // It may still be queued; completion is detected when popped.
        }
    }

    fn step_program(&mut self, sid: usize, p: Program) {
        match p {
            Program::Skip => {
                self.charge(self.config.step_cost);
                self.requeue(sid);
            }
            Program::Seq(a, b) => {
                let frames = &mut self.strands[sid].frames;
                frames.push(Frame::Prog(*b));
                frames.push(Frame::Prog(*a));
                self.requeue(sid);
            }
            Program::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.charge(self.config.step_cost);
                let agent = self.strands[sid].agent;
                match cond.eval(&self.agents[agent].env) {
                    Ok(true) => self.strands[sid].frames.push(Frame::Prog(*then_branch)),
                    Ok(false) => self.strands[sid].frames.push(Frame::Prog(*else_branch)),
                    Err(e) => {
                        self.fault(agent, format!("condition `{cond}`: {e}"));
                        return;
                    }
                }
                self.requeue(sid);
            }
            Program::While { cond, body } => {
                self.charge(self.config.step_cost);
                let agent = self.strands[sid].agent;
                match cond.eval(&self.agents[agent].env) {
                    Ok(true) => {
                        let frames = &mut self.strands[sid].frames;
                        frames.push(Frame::Prog(Program::While {
                            cond,
                            body: body.clone(),
                        }));
                        frames.push(Frame::Prog(*body));
                    }
                    Ok(false) => {}
                    Err(e) => {
                        self.fault(agent, format!("loop guard `{cond}`: {e}"));
                        return;
                    }
                }
                self.requeue(sid);
            }
            Program::Par(a, b) => {
                let agent = self.strands[sid].agent;
                let j = self.joins.len();
                self.joins.push(1);
                // Child strand runs `b` then reports the join.
                let child = Strand {
                    agent,
                    frames: vec![Frame::JoinDone(j), Frame::Prog(*b)],
                    server: self.strands[sid].server.clone(),
                    blocked: None,
                    dead: false,
                };
                let child_id = self.strands.len();
                self.strands.push(child);
                self.agents[agent].live_strands += 1;
                self.monitor.emit(LifecycleEvent::Cloned {
                    agent: self.agents[agent].spec.name.clone(),
                    strand: child_id,
                    time: self.clock.now(),
                });
                self.runnable.push_back(child_id);
                // Parent runs `a`, then waits for the join.
                let frames = &mut self.strands[sid].frames;
                frames.push(Frame::Join(j));
                frames.push(Frame::Prog(*a));
                self.requeue(sid);
            }
            Program::Assign { var, expr } => {
                self.charge(self.config.step_cost);
                let agent = self.strands[sid].agent;
                match expr.eval(&self.agents[agent].env) {
                    Ok(v) => {
                        self.agents[agent].env.set(&*var, Value::Int(v));
                        self.requeue(sid);
                    }
                    Err(e) => self.fault(agent, format!("assignment to `{var}`: {e}")),
                }
            }
            Program::Send { channel, expr } => {
                self.charge(self.config.step_cost);
                let agent = self.strands[sid].agent;
                match expr.eval(&self.agents[agent].env) {
                    Ok(v) => {
                        self.channels.send(&*channel, Value::Int(v));
                        self.wake_matching(&Block::Channel(channel));
                        self.requeue(sid);
                    }
                    Err(e) => self.fault(agent, format!("send on `{channel}`: {e}")),
                }
            }
            Program::Recv { channel, var } => match self.channels.try_recv(&channel) {
                Some(v) => {
                    self.charge(self.config.step_cost);
                    let agent = self.strands[sid].agent;
                    self.agents[agent].env.set(&*var, v);
                    self.requeue(sid);
                }
                None => {
                    let frame = Frame::Prog(Program::Recv {
                        channel: channel.clone(),
                        var,
                    });
                    self.block(sid, Block::Channel(channel), frame);
                }
            },
            Program::Signal(s) => {
                self.charge(self.config.step_cost);
                self.signals.raise(&*s);
                self.wake_matching(&Block::Signal(s));
                self.requeue(sid);
            }
            Program::Wait(s) => {
                if self.signals.is_raised(&s) {
                    self.charge(self.config.step_cost);
                    self.requeue(sid);
                } else {
                    let frame = Frame::Prog(Program::Wait(s.clone()));
                    self.block(sid, Block::Signal(s), frame);
                }
            }
            Program::Access(access) => self.perform_access(sid, access),
        }
    }

    fn perform_access(&mut self, sid: usize, access: stacl_sral::Access) {
        let agent_ix = self.strands[sid].agent;
        let name = self.agents[agent_ix].spec.name.clone();
        let now = self.clock.now();

        // 1. Topology resolution. Denied before the guard runs, so the
        // verdict is recorded into the telemetry here.
        if let Err(e) = self.env.resolve(&access) {
            stacl_obs::count(stacl_obs::Counter::VerdictDeniedUnknownTarget);
            self.log.record(
                &*name,
                access.clone(),
                now,
                Verdict::denied(DecisionKind::DeniedUnknownTarget, e.to_string()),
            );
            self.deny(sid, agent_ix, format!("unresolvable access {access}: {e}"));
            return;
        }

        // 2. Migration to the access's server.
        if self.strands[sid].server != access.server {
            let from = self.strands[sid].server.clone();
            let hooks = self.agents[agent_ix].spec.hooks.clone();
            hooks.on_departure(&mut self.agents[agent_ix].env, &from);
            self.monitor.emit(LifecycleEvent::Departed {
                agent: name.clone(),
                server: from,
                time: self.clock.now(),
            });
            self.charge(self.config.migration_cost);
            self.strands[sid].server = access.server.clone();
            let arrived = self.clock.now();
            self.monitor.emit(LifecycleEvent::Arrived {
                agent: name.clone(),
                server: access.server.clone(),
                time: arrived,
            });
            self.guard.note_arrival(&name, arrived);
            hooks.on_arrival(&mut self.agents[agent_ix].env, &access.server);
        }

        // 3. The guard decision, against the strand's remaining program
        //    (the attempted access itself at its head).
        let remaining = self.remaining_program(sid, &access);
        let now = self.clock.now();
        let req = GuardRequest {
            object: &name,
            access: &access,
            remaining: &remaining,
            time: now,
        };
        let decision = self.guard.check(&req, &self.proofs, &mut self.table);
        self.log
            .record(&*name, access.clone(), now, decision.clone());
        if decision.is_granted() {
            // Proofs carry the issuing server's local time (§2).
            let local = self.local_time(&access.server);
            self.proofs.issue(&*name, access, local);
            self.charge(self.config.access_cost);
            self.requeue(sid);
        } else {
            self.deny(sid, agent_ix, format!("access denied: {decision}"));
        }
    }

    /// The strand's declared future behaviour: the attempted access
    /// followed by the rest of its frame stack.
    fn remaining_program(&self, sid: usize, access: &stacl_sral::Access) -> Program {
        let mut rest = Program::Skip;
        for frame in &self.strands[sid].frames {
            if let Frame::Prog(p) = frame {
                // frames is a stack: bottom is the latest continuation, so
                // fold bottom-up by prepending.
                rest = p.clone().then(rest);
            }
        }
        Program::Access(access.clone()).then(rest)
    }

    fn deny(&mut self, sid: usize, agent_ix: usize, reason: String) {
        match self.agents[agent_ix].spec.on_deny {
            OnDeny::Skip => {
                self.charge(self.config.step_cost);
                self.requeue(sid);
            }
            OnDeny::Abort => {
                self.monitor.emit(LifecycleEvent::Aborted {
                    agent: self.agents[agent_ix].spec.name.clone(),
                    reason,
                    time: self.clock.now(),
                });
                self.kill_agent(agent_ix, AgentStatus::Aborted);
            }
        }
    }

    fn fault(&mut self, agent_ix: usize, message: String) {
        self.monitor.emit(LifecycleEvent::Aborted {
            agent: self.agents[agent_ix].spec.name.clone(),
            reason: message.clone(),
            time: self.clock.now(),
        });
        self.kill_agent(agent_ix, AgentStatus::Faulted(message));
    }

    fn kill_agent(&mut self, agent_ix: usize, status: AgentStatus) {
        if self.agents[agent_ix].status.is_none() {
            self.agents[agent_ix].status = Some(status);
        }
        for s in &mut self.strands {
            if s.agent == agent_ix {
                s.dead = true;
                s.blocked = None;
            }
        }
    }

    fn strand_finished(&mut self, sid: usize) {
        let agent_ix = self.strands[sid].agent;
        self.strands[sid].dead = true;
        let a = &mut self.agents[agent_ix];
        a.live_strands = a.live_strands.saturating_sub(1);
        if a.live_strands == 0 && a.status.is_none() {
            a.status = Some(AgentStatus::Finished);
            a.spec.hooks.clone().on_finish(&a.env);
            self.monitor.emit(LifecycleEvent::Finished {
                agent: a.spec.name.clone(),
                time: self.clock.now(),
            });
        }
    }

    fn requeue(&mut self, sid: usize) {
        if !self.strands[sid].dead {
            self.runnable.push_back(sid);
        }
    }

    fn block(&mut self, sid: usize, reason: Block, retry: Frame) {
        let agent_ix = self.strands[sid].agent;
        let desc = match &reason {
            Block::Channel(c) => format!("channel `{c}`"),
            Block::Signal(s) => format!("signal `{s}`"),
            Block::Join(j) => format!("join #{j}"),
        };
        self.monitor.emit(LifecycleEvent::Blocked {
            agent: self.agents[agent_ix].spec.name.clone(),
            on: desc,
            time: self.clock.now(),
        });
        self.strands[sid].frames.push(retry);
        self.strands[sid].blocked = Some(reason);
    }

    /// Wake every strand blocked on `reason`.
    fn wake_matching(&mut self, reason: &Block) {
        for sid in 0..self.strands.len() {
            if !self.strands[sid].dead && self.strands[sid].blocked.as_ref() == Some(reason) {
                self.strands[sid].blocked = None;
                self.runnable.push_back(sid);
            }
        }
    }

    /// Re-check every blocked strand's condition; wake the satisfiable
    /// ones. Returns whether anything woke.
    fn wake_blocked(&mut self) -> bool {
        let mut woke = false;
        for sid in 0..self.strands.len() {
            if self.strands[sid].dead {
                continue;
            }
            let wake = match &self.strands[sid].blocked {
                Some(Block::Channel(c)) => !self.channels.is_empty(c),
                Some(Block::Signal(s)) => self.signals.is_raised(s),
                Some(Block::Join(j)) => self.joins[*j] == 0,
                None => false,
            };
            if wake {
                self.strands[sid].blocked = None;
                self.runnable.push_back(sid);
                woke = true;
            }
        }
        woke
    }

    fn mark_remaining(&mut self, status: AgentStatus) {
        for a in &mut self.agents {
            if a.status.is_none() {
                a.status = Some(status.clone());
            }
        }
    }

    fn charge(&self, seconds: f64) {
        if seconds > 0.0 {
            self.clock.advance(TimeDelta::new(seconds));
        }
    }

    fn report(&self, steps: u64) -> RunReport {
        let mut r = RunReport {
            steps,
            end_time: self.clock.now(),
            ..Default::default()
        };
        for a in &self.agents {
            let status = a.status.clone().unwrap_or(AgentStatus::Deadlocked);
            match status {
                AgentStatus::Finished => r.finished += 1,
                AgentStatus::Aborted => r.aborted += 1,
                AgentStatus::Deadlocked => r.deadlocked += 1,
                AgentStatus::OutOfBudget => r.out_of_budget += 1,
                AgentStatus::Faulted(_) => r.faulted += 1,
            }
            r.statuses.push((a.spec.name.clone(), status));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::PermissiveGuard;
    use stacl_sral::parser::parse_program;

    fn env3() -> CoalitionEnv {
        let mut e = CoalitionEnv::new();
        for s in ["s1", "s2", "s3"] {
            e.add_resource(s, "db", ["read", "write"]);
            e.add_resource(s, "app", ["exec"]);
        }
        e
    }

    fn permissive(env: CoalitionEnv) -> NapletSystem {
        NapletSystem::new(env, Box::new(PermissiveGuard))
    }

    #[test]
    fn single_agent_runs_to_completion() {
        let mut sys = permissive(env3());
        let p = parse_program("read db @ s1 ; write db @ s1").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        assert_eq!(sys.proofs().len(), 2);
        assert_eq!(sys.log().granted_count(), 2);
        // Two accesses at 1.0 each, no migration.
        assert_eq!(r.end_time, TimePoint::new(2.0));
    }

    #[test]
    fn migration_happens_and_costs_time() {
        let mut sys = permissive(env3());
        let p = parse_program("read db @ s1 ; read db @ s2 ; read db @ s3").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        assert_eq!(sys.monitor().migrations_of("n1"), 2);
        let route: Vec<String> = sys
            .monitor()
            .route_of("n1")
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert_eq!(route, ["s1", "s2", "s3"]);
        // 3 accesses + 2 migrations = 3*1 + 2*5 = 13.
        assert_eq!(r.end_time, TimePoint::new(13.0));
    }

    #[test]
    fn unknown_target_aborts_by_default() {
        let mut sys = permissive(env3());
        let p = parse_program("read nothing @ s1 ; read db @ s1").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.aborted, 1);
        assert_eq!(sys.proofs().len(), 0);
        assert_eq!(sys.log().denied_count(), 1);
    }

    #[test]
    fn skip_on_deny_continues() {
        let mut sys = permissive(env3());
        let p = parse_program("read nothing @ s1 ; read db @ s1").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p).with_on_deny(crate::agent::OnDeny::Skip));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        assert_eq!(sys.proofs().len(), 1);
    }

    #[test]
    fn conditionals_and_loops_execute() {
        let mut sys = permissive(env3());
        let p = parse_program(
            "n := 0 ; while n < 3 do { exec app @ s1 ; n := n + 1 } ; \
             if n == 3 then { write db @ s1 } else { skip }",
        )
        .unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        // 3 execs + 1 write.
        assert_eq!(sys.proofs().len(), 4);
    }

    #[test]
    fn parallel_strands_join_before_continuation() {
        let mut sys = permissive(env3());
        // After the parallel block, exactly one more access must follow.
        let p = parse_program("{ read db @ s1 || read db @ s2 } ; write db @ s3").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        assert_eq!(sys.proofs().len(), 3);
        // The write is last in proof order.
        let snap = sys.proofs().snapshot();
        assert_eq!(&*snap.last().unwrap().access.op, "write");
    }

    #[test]
    fn channels_block_and_wake() {
        let mut sys = permissive(env3());
        let consumer = parse_program("jobs ? x ; exec app @ s1").unwrap();
        let producer = parse_program("read db @ s2 ; jobs ! 7").unwrap();
        sys.spawn(NapletSpec::new("consumer", "s1", consumer));
        sys.spawn(NapletSpec::new("producer", "s2", producer));
        let r = sys.run();
        assert_eq!(r.finished, 2);
        assert_eq!(sys.proofs().len(), 2);
        // The consumer blocked at least once.
        assert!(sys
            .monitor()
            .events_for("consumer")
            .iter()
            .any(|e| matches!(e, LifecycleEvent::Blocked { .. })));
    }

    #[test]
    fn received_value_lands_in_env() {
        let mut sys = permissive(env3());
        let p = parse_program("jobs ? x ; if x > 5 then { exec app @ s1 } else { skip }").unwrap();
        sys.channels().send("jobs", Value::Int(9));
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.finished, 1);
        assert_eq!(sys.proofs().len(), 1);
    }

    #[test]
    fn signals_enforce_order() {
        let mut sys = permissive(env3());
        let waiter = parse_program("wait(go) ; exec app @ s1").unwrap();
        let signaller = parse_program("read db @ s2 ; signal(go)").unwrap();
        sys.spawn(NapletSpec::new("w", "s1", waiter));
        sys.spawn(NapletSpec::new("s", "s2", signaller));
        let r = sys.run();
        assert_eq!(r.finished, 2);
        // The waiter's exec proof comes after the signaller's read.
        let snap = sys.proofs().snapshot();
        assert_eq!(&*snap[0].object, "s");
        assert_eq!(&*snap[1].object, "w");
    }

    #[test]
    fn missing_signal_deadlocks() {
        let mut sys = permissive(env3());
        sys.spawn(NapletSpec::new(
            "w",
            "s1",
            parse_program("wait(never)").unwrap(),
        ));
        let r = sys.run();
        assert_eq!(r.deadlocked, 1);
        assert_eq!(r.finished, 0);
    }

    #[test]
    fn unbound_variable_faults() {
        let mut sys = permissive(env3());
        let p = parse_program("if ghost > 0 then { skip } else { skip }").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.faulted, 1);
        assert!(matches!(
            sys.status_of(0),
            Some(AgentStatus::Faulted(msg)) if msg.contains("ghost")
        ));
    }

    #[test]
    fn step_budget_cuts_infinite_loops() {
        let mut sys = permissive(env3()).with_config(SystemConfig {
            max_steps: 100,
            ..SystemConfig::default()
        });
        let p = parse_program("while true do { exec app @ s1 }").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        let r = sys.run();
        assert_eq!(r.out_of_budget, 1);
        assert!(r.steps <= 100);
    }

    #[test]
    fn initial_env_is_respected() {
        let mut env0 = Env::new();
        env0.set("k", Value::Int(2));
        let mut sys = permissive(env3());
        let p = parse_program("while k > 0 do { exec app @ s1 ; k := k - 1 }").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p).with_env(env0));
        sys.run();
        assert_eq!(sys.proofs().len(), 2);
    }

    #[test]
    fn two_agents_interleave_deterministically() {
        let mk = || {
            let mut sys = permissive(env3());
            sys.spawn(NapletSpec::new(
                "a",
                "s1",
                parse_program("read db @ s1 ; read db @ s1").unwrap(),
            ));
            sys.spawn(NapletSpec::new(
                "b",
                "s2",
                parse_program("read db @ s2 ; read db @ s2").unwrap(),
            ));
            sys.run();
            sys.proofs()
                .snapshot()
                .into_iter()
                .map(|p| p.object.to_string())
                .collect::<Vec<_>>()
        };
        let r1 = mk();
        let r2 = mk();
        assert_eq!(r1, r2, "scheduling must be deterministic");
    }

    #[test]
    fn remaining_program_reaches_guard() {
        // A guard that records the remaining program sizes it sees.
        struct Recorder(std::sync::Arc<stacl_ids::sync::Mutex<Vec<usize>>>);
        impl SecurityGuard for Recorder {
            fn check(
                &mut self,
                req: &GuardRequest<'_>,
                _proofs: &ProofStore,
                _table: &mut AccessTable,
            ) -> Verdict {
                self.0.lock().push(req.remaining.size());
                Verdict::granted()
            }
        }
        let sizes = std::sync::Arc::new(stacl_ids::sync::Mutex::new(Vec::new()));
        let mut sys = NapletSystem::new(env3(), Box::new(Recorder(sizes.clone())));
        let p = parse_program("read db @ s1 ; read db @ s1 ; read db @ s1").unwrap();
        sys.spawn(NapletSpec::new("n1", "s1", p));
        sys.run();
        let seen = sizes.lock().clone();
        // Remaining program shrinks monotonically: 3 accesses+2 seqs, then
        // smaller.
        assert_eq!(seen.len(), 3);
        assert!(seen[0] > seen[1] && seen[1] > seen[2], "{seen:?}");
    }
}
