//! Lifecycle monitoring — the Naplet system's "mechanisms for agent
//! monitoring \[and\] control".
//!
//! The scheduler emits a [`LifecycleEvent`] at every interesting point of
//! an agent's life; applications and tests inspect the [`Monitor`] after
//! (or during) a run.

use std::sync::Arc;

use stacl_ids::sync::RwLock;
use stacl_sral::ast::Name;
use stacl_temporal::TimePoint;

/// One lifecycle event.
#[derive(Clone, PartialEq, Debug)]
pub enum LifecycleEvent {
    /// The agent was created at its home server.
    Created {
        /// Agent name.
        agent: Name,
        /// Home server.
        server: Name,
        /// Virtual time.
        time: TimePoint,
    },
    /// The agent departed a server (start of a migration).
    Departed {
        /// Agent name.
        agent: Name,
        /// Server left behind.
        server: Name,
        /// Virtual time.
        time: TimePoint,
    },
    /// The agent arrived at a server (end of a migration).
    Arrived {
        /// Agent name.
        agent: Name,
        /// New hosting server.
        server: Name,
        /// Virtual time.
        time: TimePoint,
    },
    /// The agent cloned a strand for parallel execution.
    Cloned {
        /// Agent name.
        agent: Name,
        /// Strand index of the clone.
        strand: usize,
        /// Virtual time.
        time: TimePoint,
    },
    /// A strand blocked (channel empty or signal unraised).
    Blocked {
        /// Agent name.
        agent: Name,
        /// What it is waiting for.
        on: String,
        /// Virtual time.
        time: TimePoint,
    },
    /// The agent finished its program.
    Finished {
        /// Agent name.
        agent: Name,
        /// Virtual time.
        time: TimePoint,
    },
    /// The agent aborted (denied access with abort-on-deny, or a fault).
    Aborted {
        /// Agent name.
        agent: Name,
        /// Why.
        reason: String,
        /// Virtual time.
        time: TimePoint,
    },
}

impl LifecycleEvent {
    /// The agent the event concerns.
    pub fn agent(&self) -> &Name {
        match self {
            LifecycleEvent::Created { agent, .. }
            | LifecycleEvent::Departed { agent, .. }
            | LifecycleEvent::Arrived { agent, .. }
            | LifecycleEvent::Cloned { agent, .. }
            | LifecycleEvent::Blocked { agent, .. }
            | LifecycleEvent::Finished { agent, .. }
            | LifecycleEvent::Aborted { agent, .. } => agent,
        }
    }
}

/// A shared, append-only event sink.
#[derive(Clone, Default, Debug)]
pub struct Monitor {
    inner: Arc<RwLock<Vec<LifecycleEvent>>>,
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Record an event.
    pub fn emit(&self, event: LifecycleEvent) {
        self.inner.write().push(event);
    }

    /// All events so far, in order.
    pub fn events(&self) -> Vec<LifecycleEvent> {
        self.inner.read().clone()
    }

    /// Events for one agent.
    pub fn events_for(&self, agent: &str) -> Vec<LifecycleEvent> {
        self.inner
            .read()
            .iter()
            .filter(|e| &**e.agent() == agent)
            .cloned()
            .collect()
    }

    /// The servers an agent visited, in arrival order (home first).
    pub fn route_of(&self, agent: &str) -> Vec<Name> {
        self.inner
            .read()
            .iter()
            .filter_map(|e| match e {
                LifecycleEvent::Created {
                    agent: a, server, ..
                }
                | LifecycleEvent::Arrived {
                    agent: a, server, ..
                } if &**a == agent => Some(server.clone()),
                _ => None,
            })
            .collect()
    }

    /// Number of migrations (arrivals excluding creation) of an agent.
    pub fn migrations_of(&self, agent: &str) -> usize {
        self.inner
            .read()
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::Arrived { agent: a, .. } if &**a == agent))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_sral::ast::name;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn emit_and_filter() {
        let m = Monitor::new();
        m.emit(LifecycleEvent::Created {
            agent: name("a"),
            server: name("s1"),
            time: tp(0.0),
        });
        m.emit(LifecycleEvent::Finished {
            agent: name("b"),
            time: tp(1.0),
        });
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.events_for("a").len(), 1);
        assert_eq!(m.events_for("c").len(), 0);
    }

    #[test]
    fn route_tracks_arrivals() {
        let m = Monitor::new();
        m.emit(LifecycleEvent::Created {
            agent: name("a"),
            server: name("s1"),
            time: tp(0.0),
        });
        m.emit(LifecycleEvent::Departed {
            agent: name("a"),
            server: name("s1"),
            time: tp(1.0),
        });
        m.emit(LifecycleEvent::Arrived {
            agent: name("a"),
            server: name("s2"),
            time: tp(2.0),
        });
        let route: Vec<String> = m.route_of("a").iter().map(|n| n.to_string()).collect();
        assert_eq!(route, ["s1", "s2"]);
        assert_eq!(m.migrations_of("a"), 1);
    }
}
