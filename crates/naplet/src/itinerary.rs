//! Structured itineraries — the "structured navigation facility" of the
//! Naplet system (§5).
//!
//! An itinerary describes the roaming agenda of a mobile device: the
//! servers to visit and their ordering. Itineraries compose like the
//! programs they drive: sequential legs, alternative legs (take the
//! first that resolves) and parallel legs (served by cloned naplets, as
//! in the §5.2 `ApplAgentProg` example).

use stacl_sral::ast::{name, Name};

/// A travel plan over coalition servers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Itinerary {
    /// Visit a single server.
    Visit(Name),
    /// Visit legs in order.
    Seq(Vec<Itinerary>),
    /// Alternative legs: any one of them fulfils this part of the plan.
    Alt(Vec<Itinerary>),
    /// Parallel legs: executed by cloned agents.
    Par(Vec<Itinerary>),
}

impl Itinerary {
    /// Visit one server.
    pub fn visit(server: impl AsRef<str>) -> Self {
        Itinerary::Visit(name(server))
    }

    /// A sequential tour of servers.
    pub fn tour<S: AsRef<str>>(servers: impl IntoIterator<Item = S>) -> Self {
        Itinerary::Seq(servers.into_iter().map(Itinerary::visit).collect())
    }

    /// Split a tour into `k` parallel legs of (nearly) equal share — the
    /// §5.2 pattern where `k` cloned naplets each take `n/k` servers.
    pub fn split_tour<S: AsRef<str>>(servers: impl IntoIterator<Item = S>, k: usize) -> Self {
        assert!(k >= 1);
        let all: Vec<Name> = servers.into_iter().map(name).collect();
        let per = all.len().div_ceil(k.max(1));
        let legs: Vec<Itinerary> = all
            .chunks(per.max(1))
            .map(|chunk| Itinerary::Seq(chunk.iter().cloned().map(Itinerary::Visit).collect()))
            .collect();
        Itinerary::Par(legs)
    }

    /// The sequential visit order, flattening `Seq` and taking the first
    /// alternative of every `Alt`; `Par` legs are concatenated (for the
    /// true parallel reading, see [`Itinerary::parallel_legs`]).
    pub fn stops(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.collect_stops(&mut out);
        out
    }

    fn collect_stops(&self, out: &mut Vec<Name>) {
        match self {
            Itinerary::Visit(s) => out.push(s.clone()),
            Itinerary::Seq(legs) | Itinerary::Par(legs) => {
                for leg in legs {
                    leg.collect_stops(out);
                }
            }
            Itinerary::Alt(legs) => {
                if let Some(first) = legs.first() {
                    first.collect_stops(out);
                }
            }
        }
    }

    /// The top-level parallel decomposition: the legs a cloning agent
    /// hands to its clones (a non-`Par` itinerary is a single leg).
    pub fn parallel_legs(&self) -> Vec<Itinerary> {
        match self {
            Itinerary::Par(legs) => legs.clone(),
            other => vec![other.clone()],
        }
    }

    /// Number of `Visit` leaves.
    pub fn len(&self) -> usize {
        match self {
            Itinerary::Visit(_) => 1,
            Itinerary::Seq(legs) | Itinerary::Par(legs) | Itinerary::Alt(legs) => {
                legs.iter().map(Itinerary::len).sum()
            }
        }
    }

    /// True when the itinerary has no stops at all.
    pub fn is_empty(&self) -> bool {
        match self {
            Itinerary::Visit(_) => false,
            Itinerary::Seq(legs) | Itinerary::Par(legs) | Itinerary::Alt(legs) => {
                legs.iter().all(Itinerary::is_empty)
            }
        }
    }
}

/// Compile an itinerary into an SRAL program by instantiating `work` at
/// every visited server: `Seq` legs run in order, `Par` legs run as
/// cloned strands, `Alt` legs take their first resolvable alternative.
///
/// This is the bridge between the paper's "structured navigation
/// facility" and its access programs: the itinerary shapes the travel,
/// `work` supplies what the agent does at each stop.
pub fn itinerary_program(
    itinerary: &Itinerary,
    work: &impl Fn(&Name) -> stacl_sral::Program,
) -> stacl_sral::Program {
    use stacl_sral::Program;
    match itinerary {
        Itinerary::Visit(server) => work(server),
        Itinerary::Seq(legs) => {
            Program::seq_all(legs.iter().map(|leg| itinerary_program(leg, work)))
        }
        Itinerary::Par(legs) => {
            Program::par_all(legs.iter().map(|leg| itinerary_program(leg, work)))
        }
        Itinerary::Alt(legs) => match legs.first() {
            Some(first) => itinerary_program(first, work),
            None => Program::Skip,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_orders_stops() {
        let it = Itinerary::tour(["s1", "s2", "s3"]);
        let stops: Vec<String> = it.stops().iter().map(|n| n.to_string()).collect();
        assert_eq!(stops, ["s1", "s2", "s3"]);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn split_tour_balances() {
        let it = Itinerary::split_tour(["a", "b", "c", "d", "e"], 2);
        let legs = it.parallel_legs();
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].len(), 3);
        assert_eq!(legs[1].len(), 2);
        // All stops covered exactly once.
        let mut all: Vec<String> = it.stops().iter().map(|n| n.to_string()).collect();
        all.sort();
        assert_eq!(all, ["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn split_tour_with_k_exceeding_servers() {
        let it = Itinerary::split_tour(["a", "b"], 5);
        let legs = it.parallel_legs();
        assert!(legs.len() <= 5);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn alt_takes_first() {
        let it = Itinerary::Seq(vec![
            Itinerary::visit("s1"),
            Itinerary::Alt(vec![
                Itinerary::visit("mirror-a"),
                Itinerary::visit("mirror-b"),
            ]),
        ]);
        let stops: Vec<String> = it.stops().iter().map(|n| n.to_string()).collect();
        assert_eq!(stops, ["s1", "mirror-a"]);
    }

    #[test]
    fn emptiness() {
        assert!(Itinerary::Seq(vec![]).is_empty());
        assert!(!Itinerary::visit("s").is_empty());
        assert_eq!(Itinerary::Seq(vec![]).len(), 0);
    }

    #[test]
    fn non_par_is_single_leg() {
        let it = Itinerary::tour(["x", "y"]);
        assert_eq!(it.parallel_legs().len(), 1);
    }

    #[test]
    fn itinerary_compiles_to_program() {
        use stacl_sral::Program;
        let work = |s: &Name| Program::Access(stacl_sral::Access::new("scan", "data", &**s));
        let seq = itinerary_program(&Itinerary::tour(["a", "b"]), &work);
        assert_eq!(seq.to_string(), "scan data @ a ; scan data @ b");
        let par = itinerary_program(&Itinerary::split_tour(["a", "b"], 2), &work);
        assert!(matches!(par, Program::Par(_, _)));
        let alt = itinerary_program(
            &Itinerary::Alt(vec![Itinerary::visit("m1"), Itinerary::visit("m2")]),
            &work,
        );
        assert_eq!(alt.to_string(), "scan data @ m1");
        assert_eq!(
            itinerary_program(&Itinerary::Seq(vec![]), &work),
            Program::Skip
        );
    }
}
