//! The CLI subcommands.

use std::fs;

use stacl::integrity::{evaluate_audit, ModuleGraph};
use stacl::prelude::*;
use stacl::rbac::policy::{parse_policy, render_policy};
use stacl::srac::check::{check_residual, Semantics};
use stacl::srac::parser::parse_constraint;
use stacl::sral::parser::parse_program;
use stacl::sral::pretty::pretty;
use stacl::sral::validate::validate;
use stacl::trace::AccessTable;

use crate::opts::Opts;

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// `stacl parse <program.sral>`
pub fn parse(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let [path] = opts.expect_positional(&["<program.sral>"])? else {
        unreachable!()
    };
    let src = read(path)?;
    let program = parse_program(&src).map_err(|e| e.to_string())?;
    let metrics = stacl::sral::metrics::metrics(&program);
    println!("{}", pretty(&program));
    println!(
        "size={} depth={} accesses={} alphabet={} loops={} parallel-blocks={}",
        metrics.size,
        metrics.depth,
        metrics.accesses,
        metrics.alphabet,
        metrics.whiles,
        metrics.pars
    );
    let report = validate(&program);
    for d in &report.diagnostics {
        println!("{:?}: {}", d.severity, d.message);
    }
    if report.is_ok() {
        println!("program is well-formed");
        Ok(())
    } else {
        Err("program has validation errors".into())
    }
}

/// `stacl traces <program.sral> [--max-len N] [--max-count N]`
pub fn traces_cmd(args: &[String]) -> Result<(), String> {
    use stacl::trace::abstraction::{traces, AbstractionConfig};
    use stacl::trace::enumerate::enumerate_traces;
    use stacl::trace::{dfa_to_regex, Dfa};
    let opts = Opts::parse(args, &["max-len", "max-count"])?;
    let [path] = opts.expect_positional(&["<program.sral>"])? else {
        unreachable!()
    };
    let program = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    let mut table = AccessTable::new();
    let re = traces(&program, &mut table, AbstractionConfig::default());
    let dfa = Dfa::from_regex(&re);
    let canonical = dfa_to_regex(&dfa);
    println!("trace model (Definition 3.2):");
    println!("  {}", re.display(&table));
    println!(
        "canonical form (via minimal DFA, {} states):",
        dfa.num_states()
    );
    println!("  {}", canonical.display(&table));

    let max_len: usize = opts.get_parsed("max-len", 6)?;
    let max_count: usize = opts.get_parsed("max-count", 20)?;
    let sample = enumerate_traces(&dfa, max_len, max_count);
    println!("sample traces (≤{max_len} accesses, first {max_count}):");
    for t in &sample {
        println!("  {}", t.display(&table));
    }
    if sample.len() == max_count {
        println!("  …");
    }
    Ok(())
}

/// `stacl check <program.sral> <constraint> [--semantics ...] [--history ...]`
pub fn check(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["semantics", "history"])?;
    let [path, constraint_src] = opts.expect_positional(&["<program.sral>", "<constraint>"])?
    else {
        unreachable!()
    };
    let program = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    let constraint = parse_constraint(constraint_src).map_err(|e| e.to_string())?;
    let semantics = match opts.get("semantics").unwrap_or("forall") {
        "forall" => Semantics::ForAll,
        "exists" => Semantics::Exists,
        other => return Err(format!("unknown semantics `{other}` (forall|exists)")),
    };

    let mut table = AccessTable::new();
    // History: semicolon-separated `op resource server` triples.
    let mut history_ids = Vec::new();
    if let Some(h) = opts.get("history") {
        for entry in h.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let parts: Vec<&str> = entry.split_whitespace().collect();
            let [op, resource, server] = parts[..] else {
                return Err(format!(
                    "history entry `{entry}` must be `op resource server`"
                ));
            };
            history_ids.push(table.intern(&Access::new(op, resource, server)));
        }
    }
    let history = Trace::from_ids(history_ids);

    let verdict = check_residual(&history, &program, &constraint, &mut table, semantics);
    println!(
        "constraint: {constraint}\nsemantics:  {:?}\nholds:      {}",
        verdict.semantics, verdict.holds
    );
    println!(
        "automata:   program {} states, constraint {} states",
        verdict.program_states, verdict.constraint_states
    );
    match (&verdict.witness, verdict.holds, semantics) {
        (Some(w), false, Semantics::ForAll) => {
            println!("violating trace: {}", w.display(&table));
        }
        (Some(w), true, Semantics::Exists) => {
            println!("satisfying trace: {}", w.display(&table));
        }
        _ => {}
    }
    if verdict.holds {
        Ok(())
    } else {
        Err("constraint does not hold".into())
    }
}

/// `stacl policy <file.policy>` — parse and normalise a policy.
/// `stacl policy push …` routes to the live two-phase coalition rollout.
pub fn policy(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("push") {
        return crate::netcmd::policy_push(&args[1..]);
    }
    let opts = Opts::parse(args, &[])?;
    let [path] = opts.expect_positional(&["<file.policy>"])? else {
        unreachable!()
    };
    let model = parse_policy(&read(path)?).map_err(|e| e.to_string())?;
    print!("{}", render_policy(&model));
    println!(
        "# {} user(s), {} role(s), {} permission(s)",
        model.all_users().count(),
        model.all_roles().count(),
        model.permissions().count()
    );
    Ok(())
}

/// `stacl run <file.policy> <program.sral> [...]`
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["agent", "roles", "home", "mode", "on-deny"])?;
    let [policy_path, program_path] =
        opts.expect_positional(&["<file.policy>", "<program.sral>"])?
    else {
        unreachable!()
    };
    let model = parse_policy(&read(policy_path)?).map_err(|e| e.to_string())?;
    let program = parse_program(&read(program_path)?).map_err(|e| e.to_string())?;

    // Agent identity: --agent or the first user of the policy.
    let agent = match opts.get("agent") {
        Some(a) => a.to_string(),
        None => model
            .all_users()
            .next()
            .ok_or("policy defines no users; pass --agent")?
            .to_string(),
    };
    // Roles: --roles or all roles assigned to the agent.
    let roles: Vec<String> = match opts.get("roles") {
        Some(r) => r.split(',').map(|s| s.trim().to_string()).collect(),
        None => model
            .roles_of(&agent)
            .iter()
            .map(|n| n.to_string())
            .collect(),
    };
    if roles.is_empty() {
        return Err(format!(
            "agent `{agent}` has no roles; assign some in the policy or pass --roles"
        ));
    }
    // Home server: --home or the first access's server.
    let home = match opts.get("home") {
        Some(h) => h.to_string(),
        None => program
            .accesses()
            .next()
            .map(|a| a.server.to_string())
            .ok_or("program performs no accesses; pass --home")?,
    };
    let mode = match opts.get("mode").unwrap_or("preventive") {
        "preventive" => EnforcementMode::Preventive,
        "reactive" => EnforcementMode::Reactive,
        other => return Err(format!("unknown mode `{other}` (preventive|reactive)")),
    };
    let on_deny = match opts.get("on-deny").unwrap_or("abort") {
        "abort" => OnDeny::Abort,
        "skip" => OnDeny::Skip,
        other => return Err(format!("unknown on-deny `{other}` (abort|skip)")),
    };

    // Topology: register every access the program mentions.
    let mut env = CoalitionEnv::new();
    for a in program.accesses() {
        env.add_resource(&a.server, &a.resource, [&a.op]);
    }
    env.add_server(&home);

    let guard = CoordinatedGuard::new(ExtendedRbac::new(model)).with_mode(mode);
    guard.enroll(&agent, roles.iter());
    let mut sys = NapletSystem::new(env, Box::new(guard));
    sys.spawn(NapletSpec::new(&agent, &home, program).with_on_deny(on_deny));
    let report = sys.run();

    println!("agent `{agent}` from `{home}` ({mode:?}, {on_deny:?})");
    println!("decisions:");
    for d in sys.log().snapshot() {
        println!(
            "  t={:<8} {:<28} {}",
            d.time.seconds(),
            d.access.to_string(),
            if d.kind.is_granted() {
                "granted".to_string()
            } else {
                match &d.reason {
                    Some(r) => format!("DENIED [{}]: {r}", d.kind.label()),
                    None => format!("DENIED [{}]", d.kind.label()),
                }
            }
        );
    }
    println!(
        "result: finished={} aborted={} faulted={} deadlocked={} \
         granted={} denied={} end-time={}",
        report.finished,
        report.aborted,
        report.faulted,
        report.deadlocked,
        sys.log().granted_count(),
        sys.log().denied_count(),
        report.end_time
    );
    for (name, status) in &report.statuses {
        if let stacl::naplet::agent::AgentStatus::Faulted(msg) = status {
            println!("  {name}: faulted — {msg}");
        }
    }
    Ok(())
}

/// `stacl audit [--modules N] [--servers K] [--seed S] [--tamper NAME|first]`
pub fn audit(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["modules", "servers", "seed", "tamper"])?;
    opts.expect_positional(&[])?;
    let n: usize = opts.get_parsed("modules", 16)?;
    let servers: usize = opts.get_parsed("servers", 4)?;
    let seed: u64 = opts.get_parsed("seed", 7)?;

    let mut g = ModuleGraph::generate_layered(n, servers, 4, 3, seed);
    let manifest = g.manifest();
    if let Some(t) = opts.get("tamper") {
        let victim = if t == "first" {
            g.modules().next().map(|m| m.name.clone())
        } else {
            g.module(t).map(|m| m.name.clone())
        }
        .ok_or_else(|| format!("no module `{t}` to tamper"))?;
        g.tamper(&victim);
        println!("tampered: {victim}");
    }

    let mut env = CoalitionEnv::new();
    for m in g.modules() {
        env.add_resource(&m.server, &m.name, ["verify"]);
    }
    let mut model = RbacModel::new();
    model.add_user("auditor");
    model.add_role("aud");
    model
        .add_permission(
            Permission::new("p", AccessPattern::parse("verify:*:*").unwrap())
                .with_spatial(g.dependency_constraint()),
        )
        .map_err(|e| e.to_string())?;
    model
        .assign_permission("aud", "p")
        .map_err(|e| e.to_string())?;
    model
        .assign_user("auditor", "aud")
        .map_err(|e| e.to_string())?;
    let guard = CoordinatedGuard::new(ExtendedRbac::new(model));
    guard.enroll("auditor", ["aud"]);

    let mut sys = NapletSystem::new(env, Box::new(guard));
    sys.spawn(NapletSpec::new(
        "auditor",
        g.modules()
            .next()
            .map(|m| m.server.clone())
            .unwrap_or_default(),
        g.audit_program_sequential(),
    ));
    let report = sys.run();
    let audit = evaluate_audit("auditor", sys.proofs(), &g, &manifest);

    println!(
        "audit of {n} modules on {servers} server(s): finished={} aborted={}",
        report.finished, report.aborted
    );
    println!(
        "verified={} corrupted={:?} tainted={:?} unverified={}",
        audit.verified.len(),
        audit.corrupted,
        audit.tainted,
        audit.unverified.len()
    );
    if audit.all_verified() {
        println!("integrity: OK");
        Ok(())
    } else {
        Err("integrity violations found".into())
    }
}

/// `stacl sim run|repro …` — the deterministic differential simulator.
pub fn sim(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("usage: stacl sim run|repro …".into());
    };
    match sub.as_str() {
        "run" => sim_run(rest),
        "repro" => sim_repro(rest),
        other => Err(format!(
            "unknown sim subcommand `{other}` (expected run or repro)"
        )),
    }
}

/// `stacl ledger verify <file>`
///
/// Re-derives the FNV-1a hash chain of an audit ledger (written by
/// `stacl sim run --ledger FILE`) and fails if any entry was altered,
/// dropped or reordered.
pub fn ledger(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("usage: stacl ledger verify <file>".into());
    };
    match sub.as_str() {
        "verify" => {
            let opts = Opts::parse(rest, &[])?;
            let [path] = opts.expect_positional(&["<ledger-file>"])? else {
                unreachable!()
            };
            let chain = stacl::coalition::Ledger::parse(&read(path)?)
                .map_err(|e| format!("`{path}`: {e}"))?;
            chain
                .verify()
                .map_err(|e| format!("`{path}`: chain verification FAILED: {e}"))?;
            println!("ledger OK: {} entries, hash chain intact", chain.len());
            Ok(())
        }
        other => Err(format!(
            "unknown ledger subcommand `{other}` (expected verify)"
        )),
    }
}

/// `stacl metrics [--seeds N] [--start-seed S] [--batch true|false]
/// [--out FILE]`
///
/// Runs a telemetry-enabled sim sweep (no oracle-bug injection) and prints
/// the decision-path [`stacl_obs::MetricsSnapshot`] as JSON: verdict
/// counters, cursor fast-path hits vs. per-rule declines (DESIGN.md §8),
/// constraint-cache hits/misses, snapshot rebuilds, watermark advances and
/// the decide/batch latency histograms. `--out FILE` also writes the JSON
/// to a file.
pub fn metrics(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["seeds", "start-seed", "batch", "out"])?;
    let [] = opts.expect_positional(&[])? else {
        unreachable!()
    };
    let seeds: u64 = opts.get_parsed("seeds", 16)?;
    let start: u64 = opts.get_parsed("start-seed", 0)?;
    let batch: bool = opts.get_parsed("batch", false)?;

    stacl_obs::set_telemetry(true);
    let baseline = stacl_obs::snapshot();
    for seed in start..start.saturating_add(seeds) {
        let ep = if batch {
            stacl_sim::episode_for_seed_batched(seed, None)
        } else {
            stacl_sim::episode_for_seed(seed, None)
        };
        if let Some(d) = ep.divergence {
            return Err(format!("seed {seed} diverged: {d}"));
        }
    }
    let json = stacl_obs::snapshot().diff(&baseline).to_json();
    if let Some(path) = opts.get("out") {
        fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    print!("{json}");
    Ok(())
}

/// `stacl sim run [--seeds N] [--start-seed S] [--oracle-bug B]
/// [--out DIR] [--max-seconds T] [--batch true|false]`
///
/// Sweeps `N` seeded episodes starting at `S`, cross-checking the real
/// guard against the reference oracle. Exits non-zero if any episode
/// diverges; with `--out DIR` every diverging seed's full repro dump is
/// written to `DIR/seed-<seed>.txt`. `--max-seconds` stops the sweep
/// early (for time-boxed nightly runs). `--batch true` drives episodes
/// through the parallel `decide_batch` path — episode logs (and thus
/// divergence results) are byte-identical to the sequential driver's.
/// `--transport net` replays each episode over a loopback coalition of
/// `--daemons N` guard daemons speaking the wire protocol, again with
/// byte-identical logs. `--churn F` injects `F` mid-episode policy flips
/// per scenario (live two-phase rollouts over the wire under
/// `--transport net`). `--ledger FILE` journals every policy change and
/// sampled verdict into one hash-chained audit ledger across the whole
/// sweep and writes it to `FILE` — under `--transport net` the wire
/// ledger must also byte-match the in-process reference chain.
/// `--pipeline true` (net only) replays decisions over the pipelined v2
/// protocol — request-id-correlated `Decide2` frames — instead of
/// synchronous v1 `Decide` calls; logs and ledgers must still match.
/// `--profile NAME` generates scenarios from a named mobility profile
/// (commuter, fleet-convoy, flash-crowd, partition-heal, workflow) whose
/// itineraries carry CIDR/cron attribute policies; the profile name is
/// recorded in every episode log header so replays are self-describing.
pub fn sim_run(args: &[String]) -> Result<(), String> {
    use stacl::coalition::Ledger;
    use stacl_sim::{
        repro, repro_profile, run_episode_net_opts, run_episode_net_pipelined, run_episode_opts,
        OracleBug, Profile, Scenario, SweepReport,
    };
    let opts = Opts::parse(
        args,
        &[
            "seeds",
            "start-seed",
            "oracle-bug",
            "out",
            "max-seconds",
            "batch",
            "stats",
            "transport",
            "daemons",
            "churn",
            "ledger",
            "pipeline",
            "profile",
        ],
    )?;
    let [] = opts.expect_positional(&[])? else {
        unreachable!()
    };
    let seeds: u64 = opts.get_parsed("seeds", 64)?;
    let start: u64 = opts.get_parsed("start-seed", 0)?;
    let bug = OracleBug::parse(opts.get("oracle-bug").unwrap_or("none"))?;
    let out_dir = opts.get("out").map(str::to_string);
    let max_seconds: f64 = opts.get_parsed("max-seconds", 0.0)?;
    let batch: bool = opts.get_parsed("batch", false)?;
    let stats: bool = opts.get_parsed("stats", false)?;
    let net = match opts.get("transport").unwrap_or("in-process") {
        "in-process" => false,
        "net" => true,
        other => return Err(format!("unknown transport `{other}` (in-process|net)")),
    };
    let daemons: usize = opts.get_parsed("daemons", 4)?;
    let churn: usize = opts.get_parsed("churn", 0)?;
    let ledger_path = opts.get("ledger").map(str::to_string);
    let pipeline: bool = opts.get_parsed("pipeline", false)?;
    let profile = opts.get("profile").map(Profile::parse).transpose()?;
    if profile.is_some() && churn > 0 {
        return Err("--profile generates its own fixed policy; \
                    it cannot be combined with --churn"
            .into());
    }
    if net && batch {
        return Err("--transport net replays decisions one frame at a time; \
                    it cannot be combined with --batch true"
            .into());
    }
    if pipeline && !net {
        return Err("--pipeline true requires --transport net".into());
    }
    // One chain for the whole sweep; under --transport net a second chain
    // journals the in-process reference episodes so the two can be
    // byte-compared at the end.
    let mut ledger = ledger_path.as_ref().map(|_| Ledger::new());
    let mut ref_ledger = (net && ledger.is_some()).then(Ledger::new);
    let obs_baseline = stacl_obs::snapshot();

    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    }
    let started = std::time::Instant::now();
    let mut report = SweepReport::new();
    for seed in start..start.saturating_add(seeds) {
        if max_seconds > 0.0 && started.elapsed().as_secs_f64() > max_seconds {
            println!("time budget reached after {} episodes", report.episodes);
            break;
        }
        let sc = if let Some(p) = profile {
            Scenario::generate_profile(seed, p)
        } else if churn > 0 {
            Scenario::generate_churn(seed, churn)
        } else {
            Scenario::generate(seed)
        };
        let ep = if net {
            let ep = if pipeline {
                run_episode_net_pipelined(&sc, bug, daemons, ledger.as_mut())?
            } else {
                run_episode_net_opts(&sc, bug, daemons, ledger.as_mut())?
            };
            // Wire-level differential validation: the networked replay
            // must reproduce the in-process verdict log byte for byte.
            let reference = run_episode_opts(&sc, bug, false, ref_ledger.as_mut());
            if ep.log != reference.log {
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/seed-{seed}-transport.txt");
                    let dump = format!(
                        "seed {seed}: net transport diverged from in-process\n\
                         --- in-process ---\n{}\n--- net ({daemons} daemons) ---\n{}",
                        reference.log, ep.log
                    );
                    fs::write(&path, dump).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                }
                return Err(format!(
                    "seed {seed}: net transport log diverged from the in-process driver"
                ));
            }
            ep
        } else {
            run_episode_opts(&sc, bug, batch, ledger.as_mut())
        };
        if ep.divergence.is_some() {
            if let Some(dir) = &out_dir {
                let path = format!("{dir}/seed-{seed}.txt");
                let dump = if let Some(p) = profile {
                    repro_profile(seed, p, bug)
                } else if churn == 0 {
                    repro(seed, bug)
                } else {
                    // `repro` regenerates the churn-free scenario; for a
                    // churn sweep dump the actual episode log instead.
                    format!("seed {seed} (churn {churn}) diverged:\n{}", ep.log)
                };
                fs::write(&path, dump).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            }
        }
        report.absorb(seed, &ep);
    }
    if let (Some(path), Some(chain)) = (&ledger_path, &ledger) {
        if let Some(reference) = &ref_ledger {
            if chain.render() != reference.render() {
                return Err("audit ledger diverged between the net and in-process drivers".into());
            }
        }
        chain
            .verify()
            .map_err(|e| format!("ledger self-verification failed: {e}"))?;
        fs::write(path, chain.render()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!(
            "ledger: {} hash-chained entries -> {path} (check with `stacl ledger verify`)",
            chain.len()
        );
    }
    print!("{}", report.render());
    if stats {
        print!("{}", stacl_obs::snapshot().diff(&obs_baseline).to_json());
    }
    if report.divergent_seeds.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} episodes diverged (replay with `stacl sim repro <seed>`)",
            report.divergent_seeds.len(),
            report.episodes
        ))
    }
}

/// `stacl sim repro <seed> [--oracle-bug B] [--profile NAME]`
///
/// Regenerates the scenario for a seed, replays the episode, and — if it
/// diverges — prints the deterministically shrunk witness. Always exits 0:
/// this is the diagnostic half of the workflow. `--profile NAME` replays
/// a mobility-profile scenario (the profile an episode was generated
/// from is recorded in its log header).
pub fn sim_repro(args: &[String]) -> Result<(), String> {
    use stacl_sim::{repro, repro_profile, OracleBug, Profile};
    let opts = Opts::parse(args, &["oracle-bug", "profile"])?;
    let [seed] = opts.expect_positional(&["<seed>"])? else {
        unreachable!()
    };
    let seed: u64 = seed
        .parse()
        .map_err(|e| format!("invalid seed `{seed}`: {e}"))?;
    let bug = OracleBug::parse(opts.get("oracle-bug").unwrap_or("none"))?;
    match opts.get("profile").map(Profile::parse).transpose()? {
        Some(p) => print!("{}", repro_profile(seed, p, bug)),
        None => print!("{}", repro(seed, bug)),
    }
    Ok(())
}
