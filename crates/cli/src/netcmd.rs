//! The networked-coalition subcommands: `stacl serve` hosts one member's
//! guard daemon; `stacl net-decide` drives a decision over the wire;
//! `stacl policy push` performs a live two-phase policy rollout.

use std::fs;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use stacl::prelude::*;
use stacl::rbac::policy::parse_policy;
use stacl::temporal::BaseTimeScheme;
use stacl_net::frames::scheme_to_u8;
use stacl_net::{Client, DaemonConfig};

use crate::opts::Opts;

fn resolve_addr(s: &str) -> Result<SocketAddr, String> {
    s.to_socket_addrs()
        .map_err(|e| format!("invalid address `{s}`: {e}"))?
        .next()
        .ok_or_else(|| format!("address `{s}` resolves to nothing"))
}

/// Parse one `op resource server` triple.
fn parse_access(entry: &str) -> Result<Access, String> {
    let parts: Vec<&str> = entry.split_whitespace().collect();
    let [op, resource, server] = parts[..] else {
        return Err(format!("access `{entry}` must be `op resource server`"));
    };
    Ok(Access::new(op, resource, server))
}

/// `stacl serve --policy <file.policy> --name <server> [--listen ADDR]
/// [--peers n=addr,…] [--custody open|strict] [--skew S]
/// [--enroll obj=role1+role2,…]`
///
/// Hosts one coalition member: a guard daemon built from the policy,
/// listening for protocol frames. `--custody strict` turns on custody
/// enforcement — the member only decides for objects it currently
/// custodies, pulling the migration handoff from the peer named in each
/// arrival. Blocks until a `Shutdown` frame arrives.
pub fn serve(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "policy", "name", "listen", "peers", "custody", "skew", "enroll",
        ],
    )?;
    opts.expect_positional(&[])?;
    let policy_path = opts.get("policy").ok_or("missing --policy <file.policy>")?;
    let name = opts.get("name").ok_or("missing --name <server>")?;
    let src =
        fs::read_to_string(policy_path).map_err(|e| format!("cannot read `{policy_path}`: {e}"))?;
    let model = parse_policy(&src).map_err(|e| e.to_string())?;

    let guard = CoordinatedGuard::new(ExtendedRbac::new(model));
    if let Some(enroll) = opts.get("enroll") {
        for entry in enroll.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (obj, roles) = entry
                .split_once('=')
                .ok_or_else(|| format!("enrollment `{entry}` must be `object=role+role`"))?;
            guard.enroll(obj, roles.split('+'));
        }
    }
    match opts.get("custody").unwrap_or("open") {
        "open" => {}
        "strict" => guard.set_custody_enforcement(true),
        other => return Err(format!("unknown custody mode `{other}` (open|strict)")),
    }

    let mut cfg = DaemonConfig::new(name);
    cfg.listen = opts.get("listen").unwrap_or("127.0.0.1:0").to_string();
    cfg.skew = opts.get_parsed("skew", 0.0)?;
    let handle =
        stacl_net::spawn(guard, ProofStore::new(), cfg).map_err(|e| format!("cannot bind: {e}"))?;
    if let Some(peers) = opts.get("peers") {
        for entry in peers.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (peer, addr) = entry
                .split_once('=')
                .ok_or_else(|| format!("peer `{entry}` must be `name=host:port`"))?;
            handle.add_peer(peer, resolve_addr(addr)?);
        }
    }
    println!("member `{}` serving on {}", handle.name(), handle.addr());
    handle.wait();
    Ok(())
}

/// `stacl policy push <file.policy> --addr host:port[,host:port…]
/// --epoch N [--classes name:dur:scheme,…] [--timeout-secs T]`
/// or `stacl policy push --abac <file.toml> [--at T] --addr … --epoch N`
///
/// Live coalition-wide rollout: phase 1 ships the policy to every member
/// (`PolicyPrepare`), and only after **all** of them have staged it does
/// phase 2 flip them (`PolicyActivate`). The epoch must exceed every
/// member's current epoch. A member that misses a phase fail-safes to
/// `DeniedCoordination` on every decision until a later complete round
/// re-synchronizes it — the coalition never serves mixed epochs.
///
/// `--abac file.toml` takes an attribute policy (CIDR allow/deny sets +
/// cron schedules with durations) instead of a `.policy` file, lowers it
/// to ordinary SRAC/temporal primitives at reference time `--at T`
/// (default 0), and pushes the lowered text — the daemons never see
/// attribute syntax, so the rollout and decide paths are unchanged.
/// Per-rule lowering problems print as warnings; the affected rules
/// fail safe (deny) rather than aborting the rollout.
pub fn policy_push(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["addr", "epoch", "classes", "timeout-secs", "abac", "at"],
    )?;
    let src = match opts.get("abac") {
        Some(toml_path) => {
            opts.expect_positional(&[])
                .map_err(|_| "--abac replaces the <file.policy> argument".to_string())?;
            let toml_src = fs::read_to_string(toml_path)
                .map_err(|e| format!("cannot read `{toml_path}`: {e}"))?;
            let attr = stacl_abac::AttributePolicy::parse(&toml_src)
                .map_err(|e| format!("attribute policy rejected: {e}"))?;
            let at: f64 = opts.get_parsed("at", 0.0)?;
            let lowered = stacl_abac::lower_policy(&attr, at)
                .map_err(|e| format!("attribute policy rejected: {e}"))?;
            for note in &lowered.notes {
                eprintln!("warning: {note} (rule fails safe)");
            }
            stacl::rbac::policy::render_policy(&lowered.model)
        }
        None => {
            let [path] = opts.expect_positional(&["<file.policy>"])? else {
                unreachable!()
            };
            fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
    };
    // Validate locally before shipping anything: a malformed policy must
    // never reach phase 1 of a live rollout.
    parse_policy(&src).map_err(|e| format!("policy rejected: {e}"))?;
    let epoch: u64 = opts
        .get("epoch")
        .ok_or("missing --epoch N (must exceed the members' current epoch)")?
        .parse()
        .map_err(|_| "invalid --epoch value".to_string())?;
    let classes = parse_classes(opts.get("classes").unwrap_or(""))?;
    let timeout_secs: u64 = opts.get_parsed("timeout-secs", 5)?;
    let timeout = Some(Duration::from_secs(timeout_secs));

    let mut members: Vec<(String, Client)> = Vec::new();
    for entry in opts
        .get("addr")
        .ok_or("missing --addr host:port[,host:port…]")?
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
    {
        let client = Client::connect(resolve_addr(entry)?, "stacl-push", timeout)
            .map_err(|e| format!("connect to {entry}: {e}"))?;
        members.push((entry.to_string(), client));
    }
    if members.is_empty() {
        return Err("--addr names no members".into());
    }

    for (addr, c) in &mut members {
        c.policy_prepare(epoch, &src, &classes).map_err(|e| {
            format!("prepare epoch {epoch} at {addr}: {e} (no member was activated)")
        })?;
        println!(
            "prepared  epoch {epoch} at {addr} (member `{}`)",
            c.server_name()
        );
    }
    for (addr, c) in &mut members {
        c.policy_activate(epoch).map_err(|e| {
            format!(
                "activate epoch {epoch} at {addr}: {e} — members left behind deny with \
                 DeniedCoordination until the next complete rollout"
            )
        })?;
        println!(
            "activated epoch {epoch} at {addr} (member `{}`)",
            c.server_name()
        );
    }
    println!(
        "coalition is at epoch {epoch} ({} member(s))",
        members.len()
    );
    Ok(())
}

/// Parse `name:dur:scheme,…` validity-class declarations into the wire
/// tuple form.
fn parse_classes(spec: &str) -> Result<Vec<(String, f64, u8)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        let [name, dur, scheme] = parts[..] else {
            return Err(format!("class `{entry}` must be `name:dur:scheme`"));
        };
        let dur: f64 = dur
            .parse()
            .map_err(|_| format!("class `{entry}`: invalid duration `{dur}`"))?;
        let scheme = match scheme {
            "current-server" => scheme_to_u8(BaseTimeScheme::CurrentServer),
            "whole-lifetime" => scheme_to_u8(BaseTimeScheme::WholeLifetime),
            other => {
                return Err(format!(
                    "class `{entry}`: unknown scheme `{other}` (current-server|whole-lifetime)"
                ))
            }
        };
        out.push((name.to_string(), dur, scheme));
    }
    Ok(out)
}

/// `stacl net-decide --addr host:port --object NAME --access "op res server"
/// [--remaining "op res s; …"] [--time T] [--arrive true|false]
/// [--from PEER] [--metrics true|false] [--pipeline W]`
///
/// Connects to a member daemon and asks for one decision. With
/// `--arrive true` (the default) the object's arrival is announced first;
/// `--from` names the previous custodian so a strict-custody member pulls
/// the migration handoff. `--metrics true` also prints the member's
/// telemetry snapshot afterwards. `--pipeline W` (W ≥ 1) instead decides
/// the whole declared remaining program as one pipelined stream of
/// request-id-correlated v2 frames with up to `W` decisions in flight:
/// step k asks for `remaining[k]` with the program tail from k onward.
pub fn net_decide(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "addr",
            "object",
            "access",
            "remaining",
            "time",
            "arrive",
            "from",
            "metrics",
            "pipeline",
        ],
    )?;
    opts.expect_positional(&[])?;
    let addr = resolve_addr(opts.get("addr").ok_or("missing --addr host:port")?)?;
    let object = opts.get("object").ok_or("missing --object NAME")?;
    let access = parse_access(
        opts.get("access")
            .ok_or("missing --access \"op res server\"")?,
    )?;
    let time: f64 = opts.get_parsed("time", 0.0)?;
    let arrive: bool = opts.get_parsed("arrive", true)?;

    // The declared remaining program defaults to just the attempted access.
    let mut remaining: Vec<Access> = vec![access.clone()];
    if let Some(r) = opts.get("remaining") {
        remaining = r
            .split(';')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .map(parse_access)
            .collect::<Result<_, _>>()?;
    }

    let mut client = Client::connect(addr, "stacl-cli", Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    println!("connected to member `{}`", client.server_name());
    if arrive {
        client
            .arrive(object, time, opts.get("from"))
            .map_err(|e| format!("arrival rejected: {e}"))?;
    }
    let window: usize = opts.get_parsed("pipeline", 0)?;
    if window > 0 {
        // Pipelined mode: decide every step of the declared program in
        // one correlated stream, step k seeing the tail from k onward.
        let requests: Vec<(&str, &Access, &[Access], f64)> = remaining
            .iter()
            .enumerate()
            .map(|(k, a)| (object, a, &remaining[k..], time))
            .collect();
        let verdicts = client.decide_stream_failsafe(&requests, window);
        let mut denied = 0usize;
        for ((_, a, _, _), v) in requests.iter().zip(&verdicts) {
            if v.kind.is_granted() {
                println!("{a} at t={time}: granted (epoch {})", v.epoch);
            } else {
                denied += 1;
                println!(
                    "{a} at t={time}: DENIED [{}] (epoch {})",
                    v.kind.label(),
                    v.epoch
                );
            }
        }
        println!(
            "pipelined {} decisions (window {window}, proto v{})",
            verdicts.len(),
            client.proto()
        );
        if opts.get_parsed("metrics", false)? {
            print!("{}", client.metrics().map_err(|e| e.to_string())?);
        }
        return if denied == 0 {
            Ok(())
        } else {
            Err(format!("{denied} of {} accesses denied", verdicts.len()))
        };
    }
    let v = client.decide_failsafe(object, &access, &remaining, time);
    let epoch = v.epoch;
    match (&v.kind.is_granted(), &v.reason) {
        (true, _) => println!("{access} at t={time}: granted (epoch {epoch})"),
        (false, Some(r)) => println!(
            "{access} at t={time}: DENIED [{}] (epoch {epoch}): {r}",
            v.kind.label()
        ),
        (false, None) => println!(
            "{access} at t={time}: DENIED [{}] (epoch {epoch})",
            v.kind.label()
        ),
    }
    if opts.get_parsed("metrics", false)? {
        print!("{}", client.metrics().map_err(|e| e.to_string())?);
    }
    if v.kind.is_granted() {
        Ok(())
    } else {
        Err("access denied".into())
    }
}
