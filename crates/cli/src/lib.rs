//! Library surface of the `stacl` CLI — the subcommand implementations
//! are exposed so integration tests can drive them without spawning
//! processes.

#![forbid(unsafe_code)]

pub mod commands;
pub mod netcmd;
pub mod opts;
