//! Minimal flag parsing: positionals plus `--key value` options.

use std::collections::HashMap;

/// Parsed command-line tail: positional arguments and `--key value` pairs.
pub struct Opts {
    pub positional: Vec<String>,
    pub flags: HashMap<String, String>,
}

impl Opts {
    /// Parse `args`; every `--key` consumes the following token as its
    /// value. `allowed` lists the recognised flag names (without `--`).
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if !allowed.contains(&key) {
                    return Err(format!(
                        "unknown option `--{key}` (expected one of: {})",
                        allowed
                            .iter()
                            .map(|k| format!("--{k}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("option `--{key}` requires a value"))?;
                flags.insert(key.to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    /// The value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// The value of `--key` parsed as `T`, or `default`.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// Exactly `n` positional arguments, or an error naming them.
    pub fn expect_positional(&self, names: &[&str]) -> Result<&[String], String> {
        if self.positional.len() != names.len() {
            return Err(format!(
                "expected {} argument(s): {}",
                names.len(),
                names.join(" ")
            ));
        }
        Ok(&self.positional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let o = Opts::parse(&v(&["a.sral", "--mode", "reactive", "b"]), &["mode"]).unwrap();
        assert_eq!(o.positional, ["a.sral", "b"]);
        assert_eq!(o.get("mode"), Some("reactive"));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Opts::parse(&v(&["--bogus", "1"]), &["mode"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Opts::parse(&v(&["--mode"]), &["mode"]).is_err());
    }

    #[test]
    fn parsed_values() {
        let o = Opts::parse(&v(&["--modules", "64"]), &["modules"]).unwrap();
        assert_eq!(o.get_parsed("modules", 8usize).unwrap(), 64);
        assert_eq!(o.get_parsed("servers", 4usize).unwrap(), 4);
        let bad = Opts::parse(&v(&["--modules", "lots"]), &["modules"]).unwrap();
        assert!(bad.get_parsed::<usize>("modules", 8).is_err());
    }

    #[test]
    fn expect_positional_counts() {
        let o = Opts::parse(&v(&["one"]), &[]).unwrap();
        assert!(o.expect_positional(&["file"]).is_ok());
        assert!(o.expect_positional(&["file", "constraint"]).is_err());
    }
}
