//! `stacl` — the command-line interface to the coordinated
//! spatio-temporal access-control library.
//!
//! ```text
//! stacl parse  <program.sral>                      parse + validate + pretty-print
//! stacl traces <program.sral>                      print the trace model (Def. 3.2)
//! stacl check  <program.sral> <constraint> [opts]  Theorem 3.2 check
//!        --semantics forall|exists   (default forall)
//!        --history  "op r s; op r s; …"  proven accesses before the program
//! stacl policy <file.policy>                       parse + normalise a policy
//! stacl policy push <file.policy> [opts]           live two-phase coalition rollout
//!        --addr host:port,…  --epoch N
//!        --classes name:dur:scheme,…  --timeout-secs T
//!        --abac file.toml --at T   (attribute policy, lowered before push)
//! stacl ledger verify <file>                       check a hash-chained audit ledger
//! stacl run    <file.policy> <program.sral> [opts] execute in the Naplet emulator
//!        --agent NAME    (default: first policy user)
//!        --roles r1,r2   (default: the agent's assigned roles)
//!        --home SERVER   (default: first server in the program)
//!        --mode preventive|reactive
//!        --on-deny abort|skip
//! stacl audit  [opts]                              §6 integrity-audit demo
//!        --modules N --servers K --seed S --tamper NAME|first
//! stacl sim    run [opts]                          differential simulator sweep
//!        --seeds N --start-seed S --oracle-bug B --out DIR --max-seconds T
//!        --transport in-process|net --daemons N
//!        --churn F (policy flips per episode) --ledger FILE
//!        --profile commuter|fleet-convoy|flash-crowd|partition-heal|workflow
//! stacl sim    repro <seed> [--oracle-bug B] [--profile NAME]
//! stacl metrics [opts]                             decision-path telemetry JSON
//!        --seeds N --start-seed S --batch true|false --out FILE
//! ```
//!
//! Arguments are parsed by hand — the tool's needs are small and the
//! workspace keeps its dependency set minimal.

use std::process::ExitCode;

use stacl_cli::commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "parse" => commands::parse(rest),
        "traces" => commands::traces_cmd(rest),
        "check" => commands::check(rest),
        "policy" => commands::policy(rest),
        "run" => commands::run(rest),
        "audit" => commands::audit(rest),
        "sim" => commands::sim(rest),
        "ledger" => commands::ledger(rest),
        "serve" => stacl_cli::netcmd::serve(rest),
        "net-decide" => stacl_cli::netcmd::net_decide(rest),
        "metrics" => commands::metrics(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stacl: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
stacl — coordinated spatio-temporal access control (Fu & Xu, IPPS 2005)

USAGE:
  stacl parse  <program.sral>
  stacl traces <program.sral> [--max-len N] [--max-count N]
  stacl check  <program.sral> <constraint> [--semantics forall|exists]
               [--history \"op res server; …\"]
  stacl policy <file.policy>
  stacl policy push <file.policy> --addr host:port[,host:port…] --epoch N
               [--classes name:dur:scheme,…] [--timeout-secs T]
               [--abac file.toml [--at T]]  (attribute TOML, lowered locally)
  stacl ledger verify <file>
  stacl run    <file.policy> <program.sral> [--agent NAME] [--roles r1,r2]
               [--home SERVER] [--mode preventive|reactive]
               [--on-deny abort|skip]
  stacl audit  [--modules N] [--servers K] [--seed S] [--tamper NAME|first]
  stacl sim    run [--seeds N] [--start-seed S] [--oracle-bug B] [--out DIR]
               [--max-seconds T] [--batch true|false] [--stats true|false]
               [--transport in-process|net] [--daemons N] [--churn F]
               [--ledger FILE] [--profile NAME]
  stacl sim    repro <seed> [--oracle-bug B] [--profile NAME]
  stacl metrics [--seeds N] [--start-seed S] [--batch true|false] [--out FILE]
  stacl serve  --policy <file.policy> --name SERVER [--listen ADDR]
               [--peers n=addr,...] [--custody open|strict] [--skew S]
               [--enroll obj=role+role,...]
  stacl net-decide --addr host:port --object NAME --access \"op res server\"
               [--remaining \"op res s; ...\"] [--time T] [--arrive true|false]
               [--from PEER] [--metrics true|false]";
