//! Integration tests for the `stacl` CLI subcommands, driven in-process
//! through the library surface (no subprocess spawning).

use std::fs;
use std::path::PathBuf;

use stacl_cli::commands;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Write a temp file unique to this test run.
fn temp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacl-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    fs::write(&path, contents).unwrap();
    path
}

const PROGRAM: &str = "read manifest @ home ; verify libA @ s1 ; write report @ home\n";

const POLICY: &str = r#"
user  bot
role  auditor
permission p-all grants=*:*:* spatial="count(0, 10, all)"
grant auditor p-all
assign bot auditor
"#;

#[test]
fn parse_accepts_valid_program() {
    let f = temp_file("ok.sral", PROGRAM);
    assert!(commands::parse(&args(&[f.to_str().unwrap()])).is_ok());
}

#[test]
fn parse_rejects_missing_file_and_bad_syntax() {
    assert!(commands::parse(&args(&["/no/such/file.sral"])).is_err());
    let f = temp_file("bad.sral", "read read read\n");
    assert!(commands::parse(&args(&[f.to_str().unwrap()])).is_err());
    // Wrong arity.
    assert!(commands::parse(&args(&[])).is_err());
}

#[test]
fn check_verdicts_and_exit_semantics() {
    let f = temp_file("check.sral", PROGRAM);
    let path = f.to_str().unwrap();
    // Held constraint → Ok.
    assert!(commands::check(&args(&[
        path,
        "[read manifest @ home] before [write report @ home]",
    ]))
    .is_ok());
    // Violated constraint → Err (non-zero exit).
    assert!(commands::check(&args(&[path, "count(0, 1, all)"])).is_err());
    // Exists semantics flips a branch-dependent verdict.
    assert!(commands::check(&args(&[path, "count(0, 1, all)", "--semantics", "exists",])).is_err());
    // Malformed constraint text.
    assert!(commands::check(&args(&[path, "count(("])).is_err());
    // Unknown semantics value.
    assert!(commands::check(&args(&[path, "true", "--semantics", "maybe"])).is_err());
}

#[test]
fn check_with_history() {
    let f = temp_file("hist.sral", "exec rsw @ s2\n");
    let path = f.to_str().unwrap();
    // Cap 5, 5 already consumed on s1 → the s2 access violates.
    assert!(commands::check(&args(&[
        path,
        "count(0, 5, resource=rsw)",
        "--history",
        "exec rsw s1; exec rsw s1; exec rsw s1; exec rsw s1; exec rsw s1",
    ]))
    .is_err());
    // With room left it holds.
    assert!(commands::check(&args(&[
        path,
        "count(0, 5, resource=rsw)",
        "--history",
        "exec rsw s1; exec rsw s1",
    ]))
    .is_ok());
    // Malformed history entry.
    assert!(commands::check(&args(&[path, "true", "--history", "exec rsw",])).is_err());
}

#[test]
fn traces_prints_model() {
    let f = temp_file("traces.sral", PROGRAM);
    assert!(commands::traces_cmd(&args(&[f.to_str().unwrap()])).is_ok());
    assert!(commands::traces_cmd(&args(&[
        f.to_str().unwrap(),
        "--max-len",
        "3",
        "--max-count",
        "5",
    ]))
    .is_ok());
    assert!(commands::traces_cmd(&args(&[f.to_str().unwrap(), "--max-len", "three"])).is_err());
}

#[test]
fn policy_roundtrip_and_errors() {
    let f = temp_file("p.policy", POLICY);
    assert!(commands::policy(&args(&[f.to_str().unwrap()])).is_ok());
    let bad = temp_file("bad.policy", "grant nobody nothing\n");
    assert!(commands::policy(&args(&[bad.to_str().unwrap()])).is_err());
}

#[test]
fn run_executes_compliant_program() {
    let pf = temp_file("run.policy", POLICY);
    let sf = temp_file("run.sral", PROGRAM);
    assert!(commands::run(&args(&[pf.to_str().unwrap(), sf.to_str().unwrap(),])).is_ok());
    // Explicit flags.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--agent",
        "bot",
        "--home",
        "home",
        "--mode",
        "reactive",
        "--on-deny",
        "skip",
    ]))
    .is_ok());
    // Unknown agent (no roles) errors out.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--agent",
        "ghost",
    ]))
    .is_err());
    // Bad mode value.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--mode",
        "psychic",
    ]))
    .is_err());
}

/// An epoch-1 replacement for [`POLICY`]: the spatial cap drops to zero,
/// so every access that granted under the boot policy denies after a push.
const POLICY_DENY: &str = r#"
user  bot
role  auditor
permission p-none grants=*:*:* spatial="count(0, 0, all)"
grant auditor p-none
assign bot auditor
"#;

#[test]
fn sim_churn_ledger_roundtrip_and_verify() {
    let out = temp_file("chain.txt", "");
    let path = out.to_str().unwrap();
    assert!(commands::sim(&args(&[
        "run", "--seeds", "2", "--churn", "3", "--ledger", path,
    ]))
    .is_ok());
    assert!(commands::ledger(&args(&["verify", path])).is_ok());

    // Tampering with a recorded payload breaks the hash chain.
    let text = fs::read_to_string(path).unwrap();
    assert!(text.contains("|policy|epoch=1 "));
    let tampered = temp_file(
        "chain-tampered.txt",
        &text.replacen("epoch=1", "epoch=7", 1),
    );
    assert!(commands::ledger(&args(&["verify", tampered.to_str().unwrap()])).is_err());

    assert!(commands::ledger(&args(&["frobnicate"])).is_err());
    assert!(commands::ledger(&args(&["verify", "/no/such/chain.txt"])).is_err());
}

#[test]
fn policy_push_flips_a_live_member() {
    use stacl::prelude::*;
    use std::time::Duration;

    let model = stacl::rbac::policy::parse_policy(POLICY).unwrap();
    let guard = CoordinatedGuard::new(ExtendedRbac::new(model));
    guard.enroll("bot", ["auditor"]);
    let mut h = stacl_net::spawn(guard, ProofStore::new(), stacl_net::DaemonConfig::new("m0"))
        .expect("daemon binds on loopback");
    let addr = h.addr().to_string();
    let v1 = temp_file("push-v1.policy", POLICY_DENY);
    let v1 = v1.to_str().unwrap();

    // Bad inputs never reach the wire.
    assert!(commands::policy(&args(&["push", v1])).is_err()); // missing --addr/--epoch
    assert!(commands::policy(&args(&[
        "push",
        v1,
        "--addr",
        &addr,
        "--epoch",
        "1",
        "--classes",
        "not-a-class",
    ]))
    .is_err());

    // The full two-phase rollout, with a validity class along for the ride.
    assert!(commands::policy(&args(&[
        "push",
        v1,
        "--addr",
        &addr,
        "--epoch",
        "1",
        "--classes",
        "fast:2.5:current-server",
    ]))
    .is_ok());
    // Replaying the same epoch is stale and rejected before activation.
    assert!(commands::policy(&args(&["push", v1, "--addr", &addr, "--epoch", "1"])).is_err());

    // Decisions now carry epoch 1 and the zero-cap policy denies.
    let mut c = stacl_net::Client::connect(h.addr(), "test", Some(Duration::from_secs(5)))
        .expect("client connects");
    c.arrive("bot", 0.0, None).expect("arrival accepted");
    let a = Access::new("read", "r", "s1");
    let v = c.decide_failsafe("bot", &a, std::slice::from_ref(&a), 0.0);
    assert_eq!(v.epoch, 1, "verdict is stamped with the pushed epoch");
    assert!(!v.kind.is_granted(), "the epoch-1 zero-cap policy denies");
    drop(c);
    h.shutdown();
}

#[test]
fn audit_clean_and_tampered() {
    // Clean audit passes.
    assert!(commands::audit(&args(&["--modules", "8", "--servers", "2"])).is_ok());
    // Tampered audit reports violations (non-zero).
    assert!(commands::audit(&args(&[
        "--modules",
        "8",
        "--servers",
        "2",
        "--tamper",
        "first",
    ]))
    .is_err());
    // Unknown module name to tamper.
    assert!(commands::audit(&args(&["--tamper", "no-such-module"])).is_err());
}
