//! Integration tests for the `stacl` CLI subcommands, driven in-process
//! through the library surface (no subprocess spawning).

use std::fs;
use std::path::PathBuf;

use stacl_cli::commands;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Write a temp file unique to this test run.
fn temp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stacl-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    fs::write(&path, contents).unwrap();
    path
}

const PROGRAM: &str = "read manifest @ home ; verify libA @ s1 ; write report @ home\n";

const POLICY: &str = r#"
user  bot
role  auditor
permission p-all grants=*:*:* spatial="count(0, 10, all)"
grant auditor p-all
assign bot auditor
"#;

#[test]
fn parse_accepts_valid_program() {
    let f = temp_file("ok.sral", PROGRAM);
    assert!(commands::parse(&args(&[f.to_str().unwrap()])).is_ok());
}

#[test]
fn parse_rejects_missing_file_and_bad_syntax() {
    assert!(commands::parse(&args(&["/no/such/file.sral"])).is_err());
    let f = temp_file("bad.sral", "read read read\n");
    assert!(commands::parse(&args(&[f.to_str().unwrap()])).is_err());
    // Wrong arity.
    assert!(commands::parse(&args(&[])).is_err());
}

#[test]
fn check_verdicts_and_exit_semantics() {
    let f = temp_file("check.sral", PROGRAM);
    let path = f.to_str().unwrap();
    // Held constraint → Ok.
    assert!(commands::check(&args(&[
        path,
        "[read manifest @ home] before [write report @ home]",
    ]))
    .is_ok());
    // Violated constraint → Err (non-zero exit).
    assert!(commands::check(&args(&[path, "count(0, 1, all)"])).is_err());
    // Exists semantics flips a branch-dependent verdict.
    assert!(commands::check(&args(&[path, "count(0, 1, all)", "--semantics", "exists",])).is_err());
    // Malformed constraint text.
    assert!(commands::check(&args(&[path, "count(("])).is_err());
    // Unknown semantics value.
    assert!(commands::check(&args(&[path, "true", "--semantics", "maybe"])).is_err());
}

#[test]
fn check_with_history() {
    let f = temp_file("hist.sral", "exec rsw @ s2\n");
    let path = f.to_str().unwrap();
    // Cap 5, 5 already consumed on s1 → the s2 access violates.
    assert!(commands::check(&args(&[
        path,
        "count(0, 5, resource=rsw)",
        "--history",
        "exec rsw s1; exec rsw s1; exec rsw s1; exec rsw s1; exec rsw s1",
    ]))
    .is_err());
    // With room left it holds.
    assert!(commands::check(&args(&[
        path,
        "count(0, 5, resource=rsw)",
        "--history",
        "exec rsw s1; exec rsw s1",
    ]))
    .is_ok());
    // Malformed history entry.
    assert!(commands::check(&args(&[path, "true", "--history", "exec rsw",])).is_err());
}

#[test]
fn traces_prints_model() {
    let f = temp_file("traces.sral", PROGRAM);
    assert!(commands::traces_cmd(&args(&[f.to_str().unwrap()])).is_ok());
    assert!(commands::traces_cmd(&args(&[
        f.to_str().unwrap(),
        "--max-len",
        "3",
        "--max-count",
        "5",
    ]))
    .is_ok());
    assert!(commands::traces_cmd(&args(&[f.to_str().unwrap(), "--max-len", "three"])).is_err());
}

#[test]
fn policy_roundtrip_and_errors() {
    let f = temp_file("p.policy", POLICY);
    assert!(commands::policy(&args(&[f.to_str().unwrap()])).is_ok());
    let bad = temp_file("bad.policy", "grant nobody nothing\n");
    assert!(commands::policy(&args(&[bad.to_str().unwrap()])).is_err());
}

#[test]
fn run_executes_compliant_program() {
    let pf = temp_file("run.policy", POLICY);
    let sf = temp_file("run.sral", PROGRAM);
    assert!(commands::run(&args(&[pf.to_str().unwrap(), sf.to_str().unwrap(),])).is_ok());
    // Explicit flags.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--agent",
        "bot",
        "--home",
        "home",
        "--mode",
        "reactive",
        "--on-deny",
        "skip",
    ]))
    .is_ok());
    // Unknown agent (no roles) errors out.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--agent",
        "ghost",
    ]))
    .is_err());
    // Bad mode value.
    assert!(commands::run(&args(&[
        pf.to_str().unwrap(),
        sf.to_str().unwrap(),
        "--mode",
        "psychic",
    ]))
    .is_err());
}

#[test]
fn audit_clean_and_tampered() {
    // Clean audit passes.
    assert!(commands::audit(&args(&["--modules", "8", "--servers", "2"])).is_ok());
    // Tampered audit reports violations (non-zero).
    assert!(commands::audit(&args(&[
        "--modules",
        "8",
        "--servers",
        "2",
        "--tamper",
        "first",
    ]))
    .is_err());
    // Unknown module name to tamper.
    assert!(commands::audit(&args(&["--tamper", "no-such-module"])).is_err());
}
