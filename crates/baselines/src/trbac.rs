//! A TRBAC/GTRBAC-style baseline: periodic interval-based *role
//! enabling*.
//!
//! Bertino et al.'s TRBAC \[3\] (generalised by Joshi et al. \[12\]) attaches
//! periodicity constraints to roles: a role is enabled during specified
//! intervals of a repeating period and disabled outside them, and "a
//! disabling event of a role would revoke all of its granted privileges"
//! (§4). This baseline reproduces that discipline:
//!
//! * enabling windows are `[from, to)` offsets within a repeating period;
//! * the granularity is the **role** — all its permissions share the
//!   windows (the paper's first criticism);
//! * there is no accumulated-usage budget: inside a window everything
//!   goes, outside nothing does (the second criticism — no duration
//!   semantics);
//! * there is no access history at all, so no spatial coordination.

use std::collections::HashMap;

use stacl_coalition::{DecisionKind, ProofStore, Verdict};
use stacl_naplet::guard::{GuardRequest, SecurityGuard};
use stacl_rbac::RbacModel;
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

/// A periodic enabling schedule for one role.
#[derive(Clone, Debug)]
pub struct RoleSchedule {
    /// The repeating period length in seconds (e.g. 86 400 for daily).
    pub period: f64,
    /// Enabled windows as `[from, to)` offsets within the period.
    pub windows: Vec<(f64, f64)>,
}

impl RoleSchedule {
    /// A schedule enabled during the given windows of each period.
    pub fn periodic(period: f64, windows: impl IntoIterator<Item = (f64, f64)>) -> Self {
        assert!(period > 0.0 && period.is_finite());
        let windows: Vec<(f64, f64)> = windows.into_iter().collect();
        for &(from, to) in &windows {
            assert!(
                (0.0..=period).contains(&from) && from < to && to <= period,
                "window ({from}, {to}) must lie within the period"
            );
        }
        RoleSchedule { period, windows }
    }

    /// Always enabled.
    pub fn always() -> Self {
        RoleSchedule {
            period: 1.0,
            windows: vec![(0.0, 1.0)],
        }
    }

    /// Is the role enabled at `t`?
    pub fn enabled_at(&self, t: TimePoint) -> bool {
        let phase = t.seconds().rem_euclid(self.period);
        self.windows
            .iter()
            .any(|&(from, to)| phase >= from && phase < to)
    }
}

/// The TRBAC-style guard.
pub struct TrbacGuard {
    model: RbacModel,
    schedules: HashMap<String, RoleSchedule>,
    enrollments: HashMap<String, Vec<String>>,
}

impl TrbacGuard {
    /// Wrap a model; roles without a schedule are always enabled.
    pub fn new(model: RbacModel) -> Self {
        TrbacGuard {
            model,
            schedules: HashMap::new(),
            enrollments: HashMap::new(),
        }
    }

    /// Attach a periodic schedule to a role.
    pub fn schedule_role(&mut self, role: impl AsRef<str>, schedule: RoleSchedule) {
        self.schedules.insert(role.as_ref().to_string(), schedule);
    }

    /// Register the roles an object activates.
    pub fn enroll<S: AsRef<str>>(
        &mut self,
        object: impl AsRef<str>,
        roles: impl IntoIterator<Item = S>,
    ) {
        self.enrollments.insert(
            object.as_ref().to_string(),
            roles.into_iter().map(|r| r.as_ref().to_string()).collect(),
        );
    }

    fn role_enabled(&self, role: &str, t: TimePoint) -> bool {
        self.schedules.get(role).is_none_or(|s| s.enabled_at(t))
    }
}

impl SecurityGuard for TrbacGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        let Some(roles) = self.enrollments.get(req.object) else {
            return DecisionKind::DeniedNoPermission.into();
        };
        let mut had_candidate = false;
        for role in roles {
            if !self.model.authorized_for_role(req.object, role) {
                continue;
            }
            let covering = self.model.permissions_of_role(role).into_iter().any(|p| {
                self.model
                    .permission(&p)
                    .is_some_and(|perm| perm.grants.covers(req.access))
            });
            if !covering {
                continue;
            }
            had_candidate = true;
            if self.role_enabled(role, req.time) {
                return Verdict::granted();
            }
        }
        if had_candidate {
            Verdict::denied(
                DecisionKind::DeniedTemporal,
                "role disabled outside its periodic enabling window",
            )
        } else {
            DecisionKind::DeniedNoPermission.into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_rbac::{AccessPattern, Permission};
    use stacl_sral::builder::access;
    use stacl_sral::Access;

    fn model() -> RbacModel {
        let mut m = RbacModel::new();
        m.add_user("n1");
        m.add_role("editor");
        m.add_permission(Permission::new(
            "p-edit",
            AccessPattern::parse("edit:issue:*").unwrap(),
        ))
        .unwrap();
        m.assign_permission("editor", "p-edit").unwrap();
        m.assign_user("n1", "editor").unwrap();
        m
    }

    fn req_at<'a>(a: &'a Access, p: &'a stacl_sral::Program, t: f64) -> GuardRequest<'a> {
        GuardRequest {
            object: "n1",
            access: a,
            remaining: p,
            time: TimePoint::new(t),
        }
    }

    #[test]
    fn schedule_windows() {
        // Daily period: enabled 21:00–03:00 (i.e. [75600, 86400) ∪ [0, 10800)).
        let s = RoleSchedule::periodic(86_400.0, [(75_600.0, 86_400.0), (0.0, 10_800.0)]);
        assert!(s.enabled_at(TimePoint::new(80_000.0)));
        assert!(s.enabled_at(TimePoint::new(5_000.0)));
        assert!(!s.enabled_at(TimePoint::new(50_000.0)));
        // Next day, same phase.
        assert!(s.enabled_at(TimePoint::new(86_400.0 + 80_000.0)));
    }

    #[test]
    fn grants_inside_window_denies_outside() {
        let mut g = TrbacGuard::new(model());
        g.enroll("n1", ["editor"]);
        g.schedule_role("editor", RoleSchedule::periodic(100.0, [(0.0, 50.0)]));
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("edit", "issue", "s1");
        let p = access("edit", "issue", "s1");
        assert!(g
            .check(&req_at(&a, &p, 10.0), &proofs, &mut table)
            .is_granted());
        assert_eq!(
            g.check(&req_at(&a, &p, 60.0), &proofs, &mut table).kind,
            DecisionKind::DeniedTemporal
        );
        // Periodicity: next period's window grants again — unlike the
        // paper's duration model, where an exhausted budget stays exhausted.
        assert!(g
            .check(&req_at(&a, &p, 110.0), &proofs, &mut table)
            .is_granted());
    }

    #[test]
    fn unscheduled_roles_are_always_enabled() {
        let mut g = TrbacGuard::new(model());
        g.enroll("n1", ["editor"]);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("edit", "issue", "s1");
        let p = access("edit", "issue", "s1");
        assert!(g
            .check(&req_at(&a, &p, 1e6), &proofs, &mut table)
            .is_granted());
    }

    #[test]
    fn uncovered_access_is_no_permission_not_temporal() {
        let mut g = TrbacGuard::new(model());
        g.enroll("n1", ["editor"]);
        g.schedule_role("editor", RoleSchedule::periodic(100.0, [(0.0, 50.0)]));
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("rm", "issue", "s1");
        let p = access("rm", "issue", "s1");
        assert_eq!(
            g.check(&req_at(&a, &p, 60.0), &proofs, &mut table).kind,
            DecisionKind::DeniedNoPermission
        );
    }

    #[test]
    #[should_panic(expected = "within the period")]
    fn malformed_window_rejected() {
        let _ = RoleSchedule::periodic(10.0, [(5.0, 15.0)]);
    }
}
