//! Plain RBAC: role/permission lookup only — no history, no time.

use std::collections::HashMap;

use stacl_coalition::{DecisionKind, ProofStore, Verdict};
use stacl_naplet::guard::{GuardRequest, SecurityGuard};
use stacl_rbac::RbacModel;
use stacl_trace::AccessTable;

/// The RBAC96 baseline guard: grants iff some enrolled role of the object
/// carries a covering permission. Spatial and temporal attachments on
/// permissions are ignored (that is the point of the baseline).
pub struct PlainRbacGuard {
    model: RbacModel,
    /// object → activated roles.
    enrollments: HashMap<String, Vec<String>>,
}

impl PlainRbacGuard {
    /// Wrap a model.
    pub fn new(model: RbacModel) -> Self {
        PlainRbacGuard {
            model,
            enrollments: HashMap::new(),
        }
    }

    /// Register the roles an object activates.
    pub fn enroll<S: AsRef<str>>(
        &mut self,
        object: impl AsRef<str>,
        roles: impl IntoIterator<Item = S>,
    ) {
        self.enrollments.insert(
            object.as_ref().to_string(),
            roles.into_iter().map(|r| r.as_ref().to_string()).collect(),
        );
    }

    /// The underlying model.
    pub fn model(&self) -> &RbacModel {
        &self.model
    }
}

impl SecurityGuard for PlainRbacGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        _proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        let Some(roles) = self.enrollments.get(req.object) else {
            return DecisionKind::DeniedNoPermission.into();
        };
        for role in roles {
            if !self.model.authorized_for_role(req.object, role) {
                continue;
            }
            for perm_name in self.model.permissions_of_role(role) {
                if let Some(perm) = self.model.permission(&perm_name) {
                    if perm.grants.covers(req.access) {
                        return Verdict::granted();
                    }
                }
            }
        }
        DecisionKind::DeniedNoPermission.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_rbac::{AccessPattern, Permission};
    use stacl_srac::Constraint;
    use stacl_sral::builder::access;
    use stacl_sral::Access;
    use stacl_temporal::TimePoint;

    fn model() -> RbacModel {
        let mut m = RbacModel::new();
        m.add_user("n1");
        m.add_role("worker");
        // Note: the permission carries a spatial constraint — plain RBAC
        // ignores it, which is exactly the baseline's weakness.
        m.add_permission(
            Permission::new("p", AccessPattern::parse("exec:rsw:*").unwrap()).with_spatial(
                Constraint::at_most(5, stacl_srac::Selector::any().with_resources(["rsw"])),
            ),
        )
        .unwrap();
        m.assign_permission("worker", "p").unwrap();
        m.assign_user("n1", "worker").unwrap();
        m
    }

    #[test]
    fn grants_covered_accesses_regardless_of_history() {
        let mut g = PlainRbacGuard::new(model());
        g.enroll("n1", ["worker"]);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("exec", "rsw", "s2");
        // Pile on history that the coordinated model would reject…
        for i in 0..100 {
            proofs.issue(
                "n1",
                Access::new("exec", "rsw", "s1"),
                TimePoint::new(i as f64),
            );
        }
        let p = access("exec", "rsw", "s2");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: TimePoint::new(200.0),
        };
        // …and plain RBAC still grants: it cannot see the history.
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn denies_uncovered_and_unenrolled() {
        let mut g = PlainRbacGuard::new(model());
        g.enroll("n1", ["worker"]);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("write", "db", "s1");
        let p = access("write", "db", "s1");
        let req = GuardRequest {
            object: "n1",
            access: &a,
            remaining: &p,
            time: TimePoint::ZERO,
        };
        assert_eq!(
            g.check(&req, &proofs, &mut table).kind,
            DecisionKind::DeniedNoPermission
        );
        let req2 = GuardRequest {
            object: "stranger",
            access: &a,
            remaining: &p,
            time: TimePoint::ZERO,
        };
        assert_eq!(
            g.check(&req2, &proofs, &mut table).kind,
            DecisionKind::DeniedNoPermission
        );
    }
}
