//! # stacl-baselines — the access-control models the paper compares
//! against
//!
//! §7 (related work) positions the coordinated model against three
//! families; each is implemented here as a [`SecurityGuard`](stacl_naplet::guard::SecurityGuard) so the
//! benchmark harness (experiments E4/E6) can swap them into the same
//! Naplet system and measure *who denies what, where, and at what cost*:
//!
//! * [`plain_rbac::PlainRbacGuard`] — RBAC96 with role hierarchy but **no
//!   spatial or temporal constraints**: whatever a role grants is granted
//!   always and everywhere. This is the "Casbin-style" baseline: it
//!   cannot express "≥5 uses on s1 ⇒ denied on s2".
//! * [`trbac::TrbacGuard`] — TRBAC/GTRBAC-style periodic *role
//!   enabling*: roles are enabled on wall-clock intervals of a repeating
//!   period; a disabled role grants nothing. Temporal, but (a) the
//!   granularity is the role, not the permission, and (b) there is no
//!   notion of accumulated usage — exactly the §4 criticisms.
//! * [`history_local::LocalHistoryGuard`] — Abadi–Fournet-style
//!   history-based control that inspects **only the local site's**
//!   history (§7: "this mechanism only inspects the execution history on
//!   the local site"): per-(object, server) cardinality caps. It misses
//!   coalition-wide overuse by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history_local;
pub mod plain_rbac;
pub mod trbac;

pub use history_local::LocalHistoryGuard;
pub use plain_rbac::PlainRbacGuard;
pub use trbac::TrbacGuard;
