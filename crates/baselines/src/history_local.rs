//! A local-history baseline: history-based access control that can only
//! see the current site.
//!
//! Abadi & Fournet's history-based access control determines run-time
//! rights from the attributes of code that has executed *locally*; the
//! paper's §7 notes it "can not be applied to access control in a
//! coalition environment, where the authorization decision depends on the
//! access actions on other related sites". This guard applies per-object
//! cardinality caps like the coordinated model's `#(m,n,σ)` — but counts
//! only proofs issued **by the server being asked**, so coalition-wide
//! overuse slips through (experiment E6's "who wins" contrast).

use stacl_coalition::{DecisionKind, ProofStore, Verdict};
use stacl_naplet::guard::{GuardRequest, SecurityGuard};
use stacl_srac::Selector;
use stacl_trace::AccessTable;

/// One local cap: at most `max` accesses matching `selector` per
/// (object, server) pair.
#[derive(Clone, Debug)]
pub struct LocalCap {
    /// Which accesses are counted.
    pub selector: Selector,
    /// The per-site cap.
    pub max: usize,
}

/// The local-history guard.
pub struct LocalHistoryGuard {
    caps: Vec<LocalCap>,
}

impl LocalHistoryGuard {
    /// A guard with the given caps (an empty list grants everything).
    pub fn new(caps: Vec<LocalCap>) -> Self {
        LocalHistoryGuard { caps }
    }

    /// Convenience: one cap.
    pub fn single(selector: Selector, max: usize) -> Self {
        LocalHistoryGuard {
            caps: vec![LocalCap { selector, max }],
        }
    }
}

impl SecurityGuard for LocalHistoryGuard {
    fn check(
        &mut self,
        req: &GuardRequest<'_>,
        proofs: &ProofStore,
        _table: &mut AccessTable,
    ) -> Verdict {
        for cap in &self.caps {
            if !cap.selector.matches(req.access) {
                continue;
            }
            // Local visibility: only proofs issued at *this* server count.
            let local_count = proofs.count_matching(|p| {
                &*p.object == req.object
                    && p.access.server == req.access.server
                    && cap.selector.matches(&p.access)
            });
            if local_count >= cap.max {
                return Verdict::denied(
                    DecisionKind::DeniedSpatial,
                    format!(
                        "local cap: at most {} of [{}] at {}",
                        cap.max, cap.selector, req.access.server
                    ),
                );
            }
        }
        Verdict::granted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_sral::builder::access;
    use stacl_sral::Access;
    use stacl_temporal::TimePoint;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn caps_apply_per_site() {
        let mut g = LocalHistoryGuard::single(Selector::any().with_resources(["rsw"]), 2);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a1 = Access::new("exec", "rsw", "s1");
        let p1 = access("exec", "rsw", "s1");
        let req1 = GuardRequest {
            object: "o",
            access: &a1,
            remaining: &p1,
            time: tp(0.0),
        };
        // Two allowed on s1, third denied.
        assert!(g.check(&req1, &proofs, &mut table).is_granted());
        proofs.issue("o", a1.clone(), tp(0.0));
        assert!(g.check(&req1, &proofs, &mut table).is_granted());
        proofs.issue("o", a1.clone(), tp(1.0));
        assert_eq!(
            g.check(&req1, &proofs, &mut table).kind,
            DecisionKind::DeniedSpatial
        );
    }

    #[test]
    fn blind_to_other_sites() {
        // The defining weakness: history on s1 is invisible at s2.
        let mut g = LocalHistoryGuard::single(Selector::any().with_resources(["rsw"]), 2);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        for i in 0..10 {
            proofs.issue("o", Access::new("exec", "rsw", "s1"), tp(i as f64));
        }
        let a2 = Access::new("exec", "rsw", "s2");
        let p2 = access("exec", "rsw", "s2");
        let req = GuardRequest {
            object: "o",
            access: &a2,
            remaining: &p2,
            time: tp(20.0),
        };
        // Coalition-wide the object is far over budget, but the local
        // guard on s2 sees nothing and grants.
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn unmatched_accesses_bypass_caps() {
        let mut g = LocalHistoryGuard::single(Selector::any().with_resources(["rsw"]), 0);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        let a = Access::new("read", "logs", "s1");
        let p = access("read", "logs", "s1");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(0.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }

    #[test]
    fn other_objects_counts_are_separate() {
        let mut g = LocalHistoryGuard::single(Selector::any(), 1);
        let proofs = ProofStore::new();
        let mut table = AccessTable::new();
        proofs.issue("other", Access::new("exec", "rsw", "s1"), tp(0.0));
        let a = Access::new("exec", "rsw", "s1");
        let p = access("exec", "rsw", "s1");
        let req = GuardRequest {
            object: "o",
            access: &a,
            remaining: &p,
            time: tp(1.0),
        };
        assert!(g.check(&req, &proofs, &mut table).is_granted());
    }
}
