//! `stacl-sim` — a seed-driven, fully deterministic coalition simulator
//! with a differential decision oracle.
//!
//! The simulator generates random-but-reproducible coalition scenarios
//! (policies, itineraries, SRAL programs, SRAC constraints, clock
//! advances and fault schedules) from a single `u64` seed, drives the
//! real [`stacl_naplet::guard::CoordinatedGuard`] decision stack step by
//! step, and cross-checks every verdict against a deliberately slow
//! reference oracle that recomputes RBAC lookup, spatial `P ⊨ C` and
//! temporal accumulated-duration validity from scratch on string keys.
//!
//! Any divergence is minimized by the built-in shrinker and replayable
//! from nothing but the seed (`stacl sim repro <seed>`).
//!
//! | module | role |
//! |---|---|
//! | [`scenario`] | seed → scenario generation |
//! | [`episode`] | drives the real guard, shadowed by the oracle |
//! | [`oracle`] | the from-scratch string-keyed reference decision procedure |
//! | [`shrink`] | deterministic divergence minimization |
//! | [`report`] | sweep aggregation and `repro` rendering |
//!
//! ## Oracle scope
//!
//! The differential comparison is exact under the generator's envelope:
//! straight-line remaining programs (so the naive single-trace evaluation
//! matches the ∀-trace residual check), decision-kind comparison (reason
//! strings differ by construction), and approval reuse disabled whenever
//! server-death faults are scheduled (a topology denial bypasses the
//! guard, breaking the clean-record premise that makes reuse sound).

#![warn(missing_docs)]

pub mod episode;
pub mod net_driver;
pub mod oracle;
pub mod report;
pub mod scenario;
pub mod shrink;

pub use episode::{
    build_guard, build_model, episode_for_seed, episode_for_seed_batched, run_episode,
    run_episode_opts, run_episode_with, Divergence, Episode, LEDGER_SAMPLE,
};
pub use net_driver::{
    episode_for_seed_net, run_episode_net, run_episode_net_opts, run_episode_net_pipelined,
    run_episode_net_placement, PlacementOpts,
};
pub use oracle::{OracleBug, ReferenceOracle};
pub use report::{repro, repro_profile, SweepReport};
pub use scenario::{AttrCidrSpec, AttrCronSpec, Event, PolicyRev, Profile, Scenario};
pub use shrink::shrink;
