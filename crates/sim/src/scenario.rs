//! Seed-driven scenario generation.
//!
//! A [`Scenario`] is the complete, self-contained description of one
//! simulated coalition run: the topology, the RBAC policy (roles,
//! permissions, spatial SRAC constraints, temporal validity budgets,
//! validity classes, inheritance), the mobile objects and their
//! enrollments, per-server clock skews, and a strictly time-ordered event
//! schedule mixing accesses, server arrivals (some dropped in flight) and
//! mid-flight server deaths.
//!
//! Everything is derived from a single `u64` seed through the
//! [`SplitMix64`] generator, so a seed *is* a scenario: the repro
//! workflow only ever ships seeds, never serialized state.

use std::fmt;

use stacl_ids::rng::SplitMix64;
use stacl_naplet::guard::EnforcementMode;
use stacl_srac::{Constraint, Selector};
use stacl_sral::Access;
use stacl_temporal::BaseTimeScheme;

/// Operation vocabulary the generator draws from.
const OPS: [&str; 3] = ["read", "write", "exec"];

/// One generated permission.
#[derive(Clone, Debug)]
pub struct PermSpec {
    /// Permission name (`p0`, `p1`, …).
    pub name: String,
    /// Granted operation (`None` = wildcard).
    pub op: Option<String>,
    /// Granted resource (`None` = wildcard).
    pub resource: Option<String>,
    /// Granted server (`None` = wildcard).
    pub server: Option<String>,
    /// Spatial SRAC constraint, if any.
    pub spatial: Option<Constraint>,
    /// Evaluate the constraint against the team's combined history.
    pub team_scope: bool,
    /// Validity duration in seconds, if time-sensitive.
    pub validity: Option<f64>,
    /// Base-time scheme for the validity integral.
    pub scheme: BaseTimeScheme,
    /// Validity class name, if the permission draws from a shared budget.
    /// May reference an undefined class (exercises the fallback path).
    pub class: Option<String>,
}

/// One generated validity class (a shared per-object budget).
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Shared budget duration in seconds.
    pub dur: f64,
    /// Base-time scheme of the shared budget.
    pub scheme: BaseTimeScheme,
}

/// One generated role: a name plus indices into [`Scenario::perms`].
#[derive(Clone, Debug)]
pub struct RoleSpec {
    /// Role name (`role0`, `role1`, …).
    pub name: String,
    /// Indices of the permissions assigned to this role.
    pub perms: Vec<usize>,
}

/// One generated mobile object.
#[derive(Clone, Debug)]
pub struct ObjectSpec {
    /// Object name (`n0`, `n1`, …).
    pub name: String,
    /// Indices of the roles assigned to the object (RBAC `UA`).
    pub assigned: Vec<usize>,
    /// Indices of the roles the guard tries to activate on first contact.
    /// May include unassigned roles (whose activation silently fails).
    pub enrolled: Vec<usize>,
}

/// One policy revision installed by a mid-episode [`Event::PolicyFlip`]:
/// the full replacement permission set and role→permission assignment.
/// Everything else — names, roles, objects, classes, inheritance,
/// validity attributes — is fixed across revisions, so budget keys,
/// enrollments and batching soundness are revision-invariant.
#[derive(Clone, Debug)]
pub struct PolicyRev {
    /// Replacement permissions (same names and count as
    /// [`Scenario::perms`]; only grant patterns and spatial constraints
    /// move).
    pub perms: Vec<PermSpec>,
    /// Replacement role→permission assignment, indexed like
    /// [`Scenario::roles`].
    pub role_perms: Vec<Vec<usize>>,
}

/// One scheduled event. Times are strictly increasing across the episode.
#[derive(Clone, Debug)]
pub enum Event {
    /// Object attempts an access.
    Access {
        /// Index into [`Scenario::objects`].
        obj: usize,
        /// The attempted access.
        access: Access,
        /// Request time.
        time: f64,
    },
    /// Object arrives at a server (migration). A dropped arrival is lost
    /// in flight: neither the guard nor the oracle observes it, but the
    /// schedule records it for fault-injection realism.
    Arrival {
        /// Index into [`Scenario::objects`].
        obj: usize,
        /// Destination server name.
        server: String,
        /// Arrival time.
        time: f64,
        /// Whether the notification was lost in flight.
        dropped: bool,
    },
    /// A coalition server dies; later accesses targeting it are denied at
    /// the topology layer without consulting the guard.
    ServerDeath {
        /// The dying server's name.
        server: String,
        /// Death time.
        time: f64,
    },
    /// A coalition-wide policy rollout lands: revision `rev` becomes the
    /// active policy (epoch `rev`) on every member before the next event.
    PolicyFlip {
        /// 1-based index into [`Scenario::revisions`].
        rev: usize,
        /// Activation time.
        time: f64,
    },
}

impl Event {
    /// The event's scheduled time.
    pub fn time(&self) -> f64 {
        match self {
            Event::Access { time, .. }
            | Event::Arrival { time, .. }
            | Event::ServerDeath { time, .. }
            | Event::PolicyFlip { time, .. } => *time,
        }
    }
}

/// A complete generated simulation scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Guard enforcement mode.
    pub mode: EnforcementMode,
    /// Whether monotone spatial-approval reuse is enabled on the guard.
    pub approval_reuse: bool,
    /// Coalition server names (`s0`, `s1`, …).
    pub servers: Vec<String>,
    /// Per-server clock skew in seconds (applied to proof timestamps).
    pub skews: Vec<f64>,
    /// Resource names (`r0`, `r1`, …), hosted on every server.
    pub resources: Vec<String>,
    /// Operation names.
    pub ops: Vec<String>,
    /// Validity classes (shared budgets).
    pub classes: Vec<ClassSpec>,
    /// Permissions.
    pub perms: Vec<PermSpec>,
    /// Roles.
    pub roles: Vec<RoleSpec>,
    /// Role-inheritance edges as `(senior, junior)` indices into
    /// [`Scenario::roles`]; always `senior < junior`, hence acyclic.
    pub inherits: Vec<(usize, usize)>,
    /// Mobile objects.
    pub objects: Vec<ObjectSpec>,
    /// Policy revisions installed by [`Event::PolicyFlip`] events, in
    /// epoch order (revision `k` is epoch `k`; the base policy is
    /// epoch 0). Empty unless generated with
    /// [`Scenario::generate_churn`].
    pub revisions: Vec<PolicyRev>,
    /// The time-ordered event schedule.
    pub events: Vec<Event>,
}

impl Scenario {
    /// Deterministically generate the scenario for a seed.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let r = &mut rng;

        // Topology.
        let n_servers = r.gen_range(2usize..5);
        let servers: Vec<String> = (0..n_servers).map(|i| format!("s{i}")).collect();
        let skews: Vec<f64> = (0..n_servers)
            .map(|_| {
                if r.gen_bool(0.3) {
                    r.gen_range(1i64..5) as f64
                } else {
                    0.0
                }
            })
            .collect();
        let n_resources = r.gen_range(2usize..4);
        let resources: Vec<String> = (0..n_resources).map(|i| format!("r{i}")).collect();
        let n_ops = r.gen_range(2usize..4);
        let ops: Vec<String> = OPS[..n_ops].iter().map(|s| s.to_string()).collect();

        let mode = if r.gen_bool(0.6) {
            EnforcementMode::Preventive
        } else {
            EnforcementMode::Reactive
        };
        // Server deaths interact unsoundly with approval reuse: a
        // topology-level denial skips an access without the guard seeing
        // it, so the object's "clean" record no longer implies its future
        // trace was covered by the original approval. The generator never
        // combines the two (see DESIGN.md, "oracle scope").
        let with_deaths = r.gen_bool(0.25);
        let approval_reuse = !with_deaths && r.gen_bool(0.7);

        // Validity classes.
        let mut classes = Vec::new();
        if r.gen_bool(0.3) {
            classes.push(ClassSpec {
                name: "night".to_string(),
                dur: r.gen_range(2i64..9) as f64,
                scheme: gen_scheme(r),
            });
        }

        // Permissions.
        let n_perms = r.gen_range(1usize..5);
        let mut perms = Vec::with_capacity(n_perms);
        for i in 0..n_perms {
            let pick = |r: &mut SplitMix64, pool: &[String]| -> Option<String> {
                if r.gen_bool(0.4) {
                    Some(r.choose(pool).clone())
                } else {
                    None
                }
            };
            let spatial = if r.gen_bool(0.55) {
                Some(gen_constraint(r, &ops, &resources, &servers, 2))
            } else {
                None
            };
            let class = if !classes.is_empty() && r.gen_bool(0.25) {
                Some("night".to_string())
            } else if r.gen_bool(0.05) {
                // Undefined class: the gate falls back to the
                // permission's own validity attributes.
                Some("ghost".to_string())
            } else {
                None
            };
            perms.push(PermSpec {
                name: format!("p{i}"),
                op: pick(r, &ops),
                resource: pick(r, &resources),
                server: pick(r, &servers),
                spatial,
                team_scope: r.gen_bool(0.15),
                validity: if r.gen_bool(0.5) {
                    Some(r.gen_range(2i64..9) as f64)
                } else {
                    None
                },
                scheme: gen_scheme(r),
                class,
            });
        }

        // Roles and inheritance.
        let n_roles = r.gen_range(1usize..4);
        let mut roles = Vec::with_capacity(n_roles);
        for i in 0..n_roles {
            let mut assigned: Vec<usize> = (0..n_perms).filter(|_| r.gen_bool(0.6)).collect();
            if i == 0 && assigned.is_empty() && n_perms > 0 {
                assigned.push(r.gen_range(0..n_perms));
            }
            roles.push(RoleSpec {
                name: format!("role{i}"),
                perms: assigned,
            });
        }
        let mut inherits = Vec::new();
        for senior in 0..n_roles {
            for junior in senior + 1..n_roles {
                if r.gen_bool(0.25) {
                    inherits.push((senior, junior));
                }
            }
        }

        // Mobile objects.
        let n_objects = r.gen_range(1usize..4);
        let mut objects = Vec::with_capacity(n_objects);
        for i in 0..n_objects {
            let mut assigned: Vec<usize> = (0..n_roles).filter(|_| r.gen_bool(0.7)).collect();
            if assigned.is_empty() {
                assigned.push(r.gen_range(0..n_roles));
            }
            let mut enrolled = assigned.clone();
            // Occasionally enroll a role the object is NOT assigned:
            // activation fails silently and the object lacks those perms.
            for role in 0..n_roles {
                if !enrolled.contains(&role) && r.gen_bool(0.15) {
                    enrolled.push(role);
                }
            }
            enrolled.sort_unstable();
            objects.push(ObjectSpec {
                name: format!("n{i}"),
                assigned,
                enrolled,
            });
        }

        // Event schedule: initial (never-dropped) arrivals seed each
        // object at a server, then a random mix at strictly increasing
        // integer times.
        let mut events: Vec<Event> = Vec::new();
        let mut t = 0.0;
        for (i, _) in objects.iter().enumerate() {
            events.push(Event::Arrival {
                obj: i,
                server: r.choose(&servers).clone(),
                time: t,
                dropped: false,
            });
            t += 1.0;
        }
        let n_events = r.gen_range(6usize..17);
        let mut alive: Vec<usize> = (0..n_servers).collect();
        for _ in 0..n_events {
            let roll = r.gen_f64();
            if with_deaths && alive.len() > 1 && roll < 0.08 {
                let k = r.gen_range(0..alive.len());
                let victim = alive.swap_remove(k);
                events.push(Event::ServerDeath {
                    server: servers[victim].clone(),
                    time: t,
                });
            } else if roll < 0.28 {
                events.push(Event::Arrival {
                    obj: r.gen_range(0..n_objects),
                    server: r.choose(&servers).clone(),
                    time: t,
                    dropped: r.gen_bool(0.25),
                });
            } else {
                events.push(Event::Access {
                    obj: r.gen_range(0..n_objects),
                    access: Access::new(r.choose(&ops), r.choose(&resources), r.choose(&servers)),
                    time: t,
                });
            }
            t += 1.0;
        }

        Scenario {
            seed,
            mode,
            approval_reuse,
            servers,
            skews,
            resources,
            ops,
            classes,
            perms,
            roles,
            inherits,
            objects,
            revisions: Vec::new(),
            events,
        }
    }

    /// Generate the scenario for a seed, then append `flips` mid-episode
    /// policy rollouts, each followed by a burst of post-flip traffic.
    ///
    /// Churn draws from its *own* deterministic stream (derived from the
    /// seed), so [`Scenario::generate`] stays byte-stable for every
    /// existing seed, and `generate_churn(seed, n)` is a strict extension
    /// of `generate(seed)`: same topology, same policy base, same event
    /// prefix.
    pub fn generate_churn(seed: u64, flips: usize) -> Scenario {
        let mut sc = Scenario::generate(seed);
        if flips == 0 {
            return sc;
        }
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5bd1_e995_9e37_79b9);
        let r = &mut rng;
        let mut t = sc.events.last().map(|e| e.time() + 1.0).unwrap_or(0.0);
        let n_objects = sc.objects.len();
        for k in 1..=flips {
            // Each revision perturbs the previous one: grant patterns and
            // spatial constraints move; names, validity attributes,
            // team scope and class bindings are revision-invariant (budget
            // keys survive flips, batching soundness is schedule-global).
            let mut perms = sc.perms_at(k - 1).to_vec();
            for p in &mut perms {
                if r.gen_bool(0.5) {
                    let pick = |r: &mut SplitMix64, pool: &[String]| -> Option<String> {
                        if r.gen_bool(0.4) {
                            Some(r.choose(pool).clone())
                        } else {
                            None
                        }
                    };
                    p.op = pick(r, &sc.ops);
                    p.resource = pick(r, &sc.resources);
                    p.server = pick(r, &sc.servers);
                }
                if r.gen_bool(0.45) {
                    p.spatial = r
                        .gen_bool(0.8)
                        .then(|| gen_constraint(r, &sc.ops, &sc.resources, &sc.servers, 2));
                }
            }
            let mut role_perms: Vec<Vec<usize>> = (0..sc.roles.len())
                .map(|i| sc.role_perms_at(k - 1, i).to_vec())
                .collect();
            for (i, rp) in role_perms.iter_mut().enumerate() {
                if r.gen_bool(0.5) {
                    *rp = (0..perms.len()).filter(|_| r.gen_bool(0.6)).collect();
                    if i == 0 && rp.is_empty() && !perms.is_empty() {
                        rp.push(r.gen_range(0..perms.len()));
                    }
                }
            }
            sc.revisions.push(PolicyRev { perms, role_perms });
            sc.events.push(Event::PolicyFlip { rev: k, time: t });
            t += 1.0;
            // Post-flip traffic so every revision actually decides. No
            // new server deaths: the death/approval-reuse envelope is
            // settled by the base generation.
            for _ in 0..r.gen_range(3usize..8) {
                if r.gen_bool(0.25) {
                    sc.events.push(Event::Arrival {
                        obj: r.gen_range(0..n_objects),
                        server: r.choose(&sc.servers).clone(),
                        time: t,
                        dropped: r.gen_bool(0.25),
                    });
                } else {
                    sc.events.push(Event::Access {
                        obj: r.gen_range(0..n_objects),
                        access: Access::new(
                            r.choose(&sc.ops),
                            r.choose(&sc.resources),
                            r.choose(&sc.servers),
                        ),
                        time: t,
                    });
                }
                t += 1.0;
            }
        }
        sc
    }

    /// The permission set of policy revision `rev` (0 = the base policy).
    pub fn perms_at(&self, rev: usize) -> &[PermSpec] {
        if rev == 0 {
            &self.perms
        } else {
            &self.revisions[rev - 1].perms
        }
    }

    /// The permission indices assigned to `role` at policy revision
    /// `rev` (0 = the base policy).
    pub fn role_perms_at(&self, rev: usize, role: usize) -> &[usize] {
        if rev == 0 {
            &self.roles[role].perms
        } else {
            &self.revisions[rev - 1].role_perms[role]
        }
    }
}

fn gen_scheme(r: &mut SplitMix64) -> BaseTimeScheme {
    if r.gen_bool(0.5) {
        BaseTimeScheme::CurrentServer
    } else {
        BaseTimeScheme::WholeLifetime
    }
}

fn gen_access(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
) -> Access {
    Access::new(r.choose(ops), r.choose(resources), r.choose(servers))
}

fn gen_selector(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
) -> Selector {
    let mut s = Selector::any();
    if r.gen_bool(0.5) {
        s = s.with_ops([r.choose(ops).as_str()]);
    }
    if r.gen_bool(0.5) {
        s = s.with_resources([r.choose(resources).as_str()]);
    }
    if r.gen_bool(0.3) {
        s = s.with_servers([r.choose(servers).as_str()]);
    }
    s
}

/// A random SRAC constraint over the scenario's access vocabulary.
fn gen_constraint(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
    depth: usize,
) -> Constraint {
    let leaf = depth == 0 || r.gen_bool(0.55);
    if leaf {
        match r.gen_range(0u32..5) {
            0 => Constraint::True,
            1 => Constraint::Atom(gen_access(r, ops, resources, servers)),
            2 => Constraint::Ordered(
                gen_access(r, ops, resources, servers),
                gen_access(r, ops, resources, servers),
            ),
            _ => {
                // Cardinality bounds biased wide enough that grants occur.
                let min = if r.gen_bool(0.25) { 1 } else { 0 };
                let max = if r.gen_bool(0.3) {
                    None
                } else {
                    Some(min + r.gen_range(1usize..7))
                };
                Constraint::Card {
                    min,
                    max,
                    selector: gen_selector(r, ops, resources, servers),
                }
            }
        }
    } else {
        let a = gen_constraint(r, ops, resources, servers, depth - 1);
        let b = gen_constraint(r, ops, resources, servers, depth - 1);
        match r.gen_range(0u32..4) {
            0 => a.and(b),
            1 => a.or(b),
            2 => a.implies(b),
            _ => a.not(),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario seed={} mode={} reuse={}",
            self.seed,
            match self.mode {
                EnforcementMode::Preventive => "preventive",
                EnforcementMode::Reactive => "reactive",
            },
            if self.approval_reuse { "on" } else { "off" }
        )?;
        let skewed: Vec<String> = self
            .servers
            .iter()
            .zip(&self.skews)
            .map(|(s, k)| {
                if *k == 0.0 {
                    s.clone()
                } else {
                    format!("{s} skew={k}")
                }
            })
            .collect();
        writeln!(f, "servers: {}", skewed.join(", "))?;
        writeln!(f, "resources: {}", self.resources.join(" "))?;
        writeln!(f, "ops: {}", self.ops.join(" "))?;
        for c in &self.classes {
            writeln!(
                f,
                "class {} dur={} scheme={}",
                c.name,
                c.dur,
                c.scheme.name()
            )?;
        }
        for p in &self.perms {
            write_perm(f, p, "")?;
        }
        for role in &self.roles {
            let names: Vec<&str> = role
                .perms
                .iter()
                .map(|&i| self.perms[i].name.as_str())
                .collect();
            writeln!(f, "role {} perms={}", role.name, names.join(","))?;
        }
        for &(s, j) in &self.inherits {
            writeln!(f, "inherit {} {}", self.roles[s].name, self.roles[j].name)?;
        }
        for o in &self.objects {
            let names = |ix: &[usize]| {
                ix.iter()
                    .map(|&i| self.roles[i].name.as_str())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            writeln!(
                f,
                "object {} roles={} enrolled={}",
                o.name,
                names(&o.assigned),
                names(&o.enrolled)
            )?;
        }
        for (k, rev) in self.revisions.iter().enumerate() {
            writeln!(f, "revision {} (epoch {}):", k + 1, k + 1)?;
            for p in &rev.perms {
                write_perm(f, p, "  ")?;
            }
            for (i, rp) in rev.role_perms.iter().enumerate() {
                let names: Vec<&str> = rp.iter().map(|&pi| rev.perms[pi].name.as_str()).collect();
                writeln!(f, "  role {} perms={}", self.roles[i].name, names.join(","))?;
            }
        }
        writeln!(f, "events:")?;
        for e in &self.events {
            match e {
                Event::Access { obj, access, time } => {
                    writeln!(f, "  [{time}] access {} {access}", self.objects[*obj].name)?;
                }
                Event::Arrival {
                    obj,
                    server,
                    time,
                    dropped,
                } => {
                    writeln!(
                        f,
                        "  [{time}] arrive {} @ {server}{}",
                        self.objects[*obj].name,
                        if *dropped { " (dropped)" } else { "" }
                    )?;
                }
                Event::ServerDeath { server, time } => {
                    writeln!(f, "  [{time}] server-death {server}")?;
                }
                Event::PolicyFlip { rev, time } => {
                    writeln!(f, "  [{time}] policy-flip epoch={rev}")?;
                }
            }
        }
        Ok(())
    }
}

/// Write one permission line (shared by the base policy and revision
/// sections of the scenario rendering).
fn write_perm(f: &mut fmt::Formatter<'_>, p: &PermSpec, indent: &str) -> fmt::Result {
    let part = |x: &Option<String>| x.clone().unwrap_or_else(|| "*".to_string());
    write!(
        f,
        "{indent}perm {} grants={}:{}:{}",
        p.name,
        part(&p.op),
        part(&p.resource),
        part(&p.server)
    )?;
    if let Some(c) = &p.spatial {
        write!(f, " spatial=\"{c}\"")?;
    }
    if p.team_scope {
        write!(f, " scope=team")?;
    }
    if let Some(v) = p.validity {
        write!(f, " validity={v} scheme={}", p.scheme.name())?;
    }
    if let Some(c) = &p.class {
        write!(f, " class={c}")?;
    }
    writeln!(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = Scenario::generate(seed).to_string();
            let b = Scenario::generate(seed).to_string();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn times_strictly_increase() {
        for seed in 0..32u64 {
            let sc = Scenario::generate(seed);
            for w in sc.events.windows(2) {
                assert!(w[0].time() < w[1].time(), "seed {seed}");
            }
        }
    }

    #[test]
    fn churn_generation_is_deterministic() {
        for seed in [0u64, 3, 42] {
            let a = Scenario::generate_churn(seed, 4).to_string();
            let b = Scenario::generate_churn(seed, 4).to_string();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn churn_extends_the_base_schedule() {
        for seed in 0..32u64 {
            let base = Scenario::generate(seed);
            let churned = Scenario::generate_churn(seed, 4);
            assert_eq!(churned.revisions.len(), 4, "seed {seed}");
            // Strict extension: the base prefix is untouched and times
            // keep strictly increasing through the churn tail.
            assert!(churned.events.len() > base.events.len(), "seed {seed}");
            for (a, b) in base.events.iter().zip(&churned.events) {
                assert_eq!(a.time(), b.time(), "seed {seed}");
            }
            for w in churned.events.windows(2) {
                assert!(w[0].time() < w[1].time(), "seed {seed}");
            }
            // Revisions never move the revision-invariant attributes.
            for rev in 0..=churned.revisions.len() {
                let perms = churned.perms_at(rev);
                assert_eq!(perms.len(), base.perms.len(), "seed {seed}");
                for (p, q) in base.perms.iter().zip(perms) {
                    assert_eq!(p.name, q.name, "seed {seed}");
                    assert_eq!(p.team_scope, q.team_scope, "seed {seed}");
                    assert_eq!(p.validity, q.validity, "seed {seed}");
                    assert_eq!(p.class, q.class, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn deaths_disable_approval_reuse() {
        for seed in 0..256u64 {
            let sc = Scenario::generate(seed);
            let has_death = sc
                .events
                .iter()
                .any(|e| matches!(e, Event::ServerDeath { .. }));
            if has_death {
                assert!(!sc.approval_reuse, "seed {seed}");
            }
        }
    }
}
