//! Seed-driven scenario generation.
//!
//! A [`Scenario`] is the complete, self-contained description of one
//! simulated coalition run: the topology, the RBAC policy (roles,
//! permissions, spatial SRAC constraints, temporal validity budgets,
//! validity classes, inheritance), the mobile objects and their
//! enrollments, per-server clock skews, and a strictly time-ordered event
//! schedule mixing accesses, server arrivals (some dropped in flight) and
//! mid-flight server deaths.
//!
//! Everything is derived from a single `u64` seed through the
//! [`SplitMix64`] generator, so a seed *is* a scenario: the repro
//! workflow only ever ships seeds, never serialized state.

use std::fmt;

use stacl_ids::rng::SplitMix64;
use stacl_naplet::guard::EnforcementMode;
use stacl_srac::{Constraint, Selector};
use stacl_sral::Access;
use stacl_temporal::BaseTimeScheme;

/// Operation vocabulary the generator draws from.
const OPS: [&str; 3] = ["read", "write", "exec"];

/// A CIDR attribute on a permission: raw allow/deny blocks over the
/// scenario's [`Scenario::server_ips`] map, lowered to a pure SRAC
/// constraint at model-build time (the oracle re-evaluates it by naive
/// bitmask membership instead).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrCidrSpec {
    /// CIDR allow blocks (source strings, e.g. `"10.1.0.0/16"`).
    pub allow: Vec<String>,
    /// CIDR deny blocks (deny wins).
    pub deny: Vec<String>,
}

/// A cron attribute on a permission: a calendar window schedule with a
/// per-fire duration, lowered to an ordinary validity budget at each
/// epoch's reference time (the oracle re-derives the budget by naive
/// per-second expansion instead).
#[derive(Clone, PartialEq, Debug)]
pub struct AttrCronSpec {
    /// Cron expression (5-field, or 6-field with leading seconds).
    pub expr: String,
    /// Seconds each fire keeps the window open.
    pub dur: f64,
}

/// One generated permission.
#[derive(Clone, Debug)]
pub struct PermSpec {
    /// Permission name (`p0`, `p1`, …).
    pub name: String,
    /// Granted operation (`None` = wildcard).
    pub op: Option<String>,
    /// Granted resource (`None` = wildcard).
    pub resource: Option<String>,
    /// Granted server (`None` = wildcard).
    pub server: Option<String>,
    /// Spatial SRAC constraint, if any.
    pub spatial: Option<Constraint>,
    /// Evaluate the constraint against the team's combined history.
    pub team_scope: bool,
    /// Validity duration in seconds, if time-sensitive.
    pub validity: Option<f64>,
    /// Base-time scheme for the validity integral.
    pub scheme: BaseTimeScheme,
    /// Validity class name, if the permission draws from a shared budget.
    /// May reference an undefined class (exercises the fallback path).
    pub class: Option<String>,
    /// CIDR attribute rule; takes precedence over `spatial` when set.
    pub attr_cidr: Option<AttrCidrSpec>,
    /// Cron attribute window; takes precedence over `validity`/`scheme`
    /// when set (lowered budgets always use the whole-lifetime scheme).
    pub attr_cron: Option<AttrCronSpec>,
}

/// One generated validity class (a shared per-object budget).
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Shared budget duration in seconds.
    pub dur: f64,
    /// Base-time scheme of the shared budget.
    pub scheme: BaseTimeScheme,
}

/// One generated role: a name plus indices into [`Scenario::perms`].
#[derive(Clone, Debug)]
pub struct RoleSpec {
    /// Role name (`role0`, `role1`, …).
    pub name: String,
    /// Indices of the permissions assigned to this role.
    pub perms: Vec<usize>,
}

/// One generated mobile object.
#[derive(Clone, Debug)]
pub struct ObjectSpec {
    /// Object name (`n0`, `n1`, …).
    pub name: String,
    /// Indices of the roles assigned to the object (RBAC `UA`).
    pub assigned: Vec<usize>,
    /// Indices of the roles the guard tries to activate on first contact.
    /// May include unassigned roles (whose activation silently fails).
    pub enrolled: Vec<usize>,
}

/// One policy revision installed by a mid-episode [`Event::PolicyFlip`]:
/// the full replacement permission set and role→permission assignment.
/// Everything else — names, roles, objects, classes, inheritance,
/// validity attributes — is fixed across revisions, so budget keys,
/// enrollments and batching soundness are revision-invariant.
#[derive(Clone, Debug)]
pub struct PolicyRev {
    /// Replacement permissions (same names and count as
    /// [`Scenario::perms`]; only grant patterns and spatial constraints
    /// move).
    pub perms: Vec<PermSpec>,
    /// Replacement role→permission assignment, indexed like
    /// [`Scenario::roles`].
    pub role_perms: Vec<Vec<usize>>,
}

/// One scheduled event. Times are strictly increasing across the episode.
#[derive(Clone, Debug)]
pub enum Event {
    /// Object attempts an access.
    Access {
        /// Index into [`Scenario::objects`].
        obj: usize,
        /// The attempted access.
        access: Access,
        /// Request time.
        time: f64,
    },
    /// Object arrives at a server (migration). A dropped arrival is lost
    /// in flight: neither the guard nor the oracle observes it, but the
    /// schedule records it for fault-injection realism.
    Arrival {
        /// Index into [`Scenario::objects`].
        obj: usize,
        /// Destination server name.
        server: String,
        /// Arrival time.
        time: f64,
        /// Whether the notification was lost in flight.
        dropped: bool,
    },
    /// A coalition server dies; later accesses targeting it are denied at
    /// the topology layer without consulting the guard.
    ServerDeath {
        /// The dying server's name.
        server: String,
        /// Death time.
        time: f64,
    },
    /// A coalition-wide policy rollout lands: revision `rev` becomes the
    /// active policy (epoch `rev`) on every member before the next event.
    PolicyFlip {
        /// 1-based index into [`Scenario::revisions`].
        rev: usize,
        /// Activation time.
        time: f64,
    },
}

impl Event {
    /// The event's scheduled time.
    pub fn time(&self) -> f64 {
        match self {
            Event::Access { time, .. }
            | Event::Arrival { time, .. }
            | Event::ServerDeath { time, .. }
            | Event::PolicyFlip { time, .. } => *time,
        }
    }
}

/// A named mobility profile: a workload shape for the itinerary
/// generator. Profile scenarios carry attribute (CIDR/cron) permissions
/// and a server→IPv4 map, so every profile sweep also differentially
/// validates the attribute lowering pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Objects oscillate between a home and an office server on a
    /// regular cadence; office access rides a cron window.
    Commuter,
    /// All objects move together through the server sequence, accessing
    /// at every hop.
    FleetConvoy,
    /// Scattered objects converge on one hot server in a burst, then
    /// disperse.
    FlashCrowd,
    /// A server dies mid-episode; its residents migrate to survivors and
    /// resume (stale accesses still target the dead server).
    PartitionHeal,
    /// A TRBAC-style task chain: `prepare` → `approve` → `commit`, where
    /// commit requires approved history and approve rides a cron window.
    Workflow,
}

impl Profile {
    /// Every profile, in CLI order.
    pub const ALL: [Profile; 5] = [
        Profile::Commuter,
        Profile::FleetConvoy,
        Profile::FlashCrowd,
        Profile::PartitionHeal,
        Profile::Workflow,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Commuter => "commuter",
            Profile::FleetConvoy => "fleet-convoy",
            Profile::FlashCrowd => "flash-crowd",
            Profile::PartitionHeal => "partition-heal",
            Profile::Workflow => "workflow",
        }
    }

    /// Parse the CLI name.
    pub fn parse(s: &str) -> Result<Profile, String> {
        Profile::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Profile::ALL.iter().map(|p| p.name()).collect();
                format!("unknown profile `{s}` (expected {})", names.join(", "))
            })
    }
}

/// A complete generated simulation scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// The mobility profile the scenario was generated from, if any.
    /// Recorded in the episode log header so replays are self-describing.
    pub profile: Option<Profile>,
    /// Server name → dotted-quad IPv4 address. Empty unless generated by
    /// [`Scenario::generate_profile`] (attribute scenarios only).
    pub server_ips: Vec<(String, String)>,
    /// Guard enforcement mode.
    pub mode: EnforcementMode,
    /// Whether monotone spatial-approval reuse is enabled on the guard.
    pub approval_reuse: bool,
    /// Coalition server names (`s0`, `s1`, …).
    pub servers: Vec<String>,
    /// Per-server clock skew in seconds (applied to proof timestamps).
    pub skews: Vec<f64>,
    /// Resource names (`r0`, `r1`, …), hosted on every server.
    pub resources: Vec<String>,
    /// Operation names.
    pub ops: Vec<String>,
    /// Validity classes (shared budgets).
    pub classes: Vec<ClassSpec>,
    /// Permissions.
    pub perms: Vec<PermSpec>,
    /// Roles.
    pub roles: Vec<RoleSpec>,
    /// Role-inheritance edges as `(senior, junior)` indices into
    /// [`Scenario::roles`]; always `senior < junior`, hence acyclic.
    pub inherits: Vec<(usize, usize)>,
    /// Mobile objects.
    pub objects: Vec<ObjectSpec>,
    /// Policy revisions installed by [`Event::PolicyFlip`] events, in
    /// epoch order (revision `k` is epoch `k`; the base policy is
    /// epoch 0). Empty unless generated with
    /// [`Scenario::generate_churn`].
    pub revisions: Vec<PolicyRev>,
    /// The time-ordered event schedule.
    pub events: Vec<Event>,
}

impl Scenario {
    /// Deterministically generate the scenario for a seed.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let r = &mut rng;

        // Topology.
        let n_servers = r.gen_range(2usize..5);
        let servers: Vec<String> = (0..n_servers).map(|i| format!("s{i}")).collect();
        let skews: Vec<f64> = (0..n_servers)
            .map(|_| {
                if r.gen_bool(0.3) {
                    r.gen_range(1i64..5) as f64
                } else {
                    0.0
                }
            })
            .collect();
        let n_resources = r.gen_range(2usize..4);
        let resources: Vec<String> = (0..n_resources).map(|i| format!("r{i}")).collect();
        let n_ops = r.gen_range(2usize..4);
        let ops: Vec<String> = OPS[..n_ops].iter().map(|s| s.to_string()).collect();

        let mode = if r.gen_bool(0.6) {
            EnforcementMode::Preventive
        } else {
            EnforcementMode::Reactive
        };
        // Server deaths interact unsoundly with approval reuse: a
        // topology-level denial skips an access without the guard seeing
        // it, so the object's "clean" record no longer implies its future
        // trace was covered by the original approval. The generator never
        // combines the two (see DESIGN.md, "oracle scope").
        let with_deaths = r.gen_bool(0.25);
        let approval_reuse = !with_deaths && r.gen_bool(0.7);

        // Validity classes.
        let mut classes = Vec::new();
        if r.gen_bool(0.3) {
            classes.push(ClassSpec {
                name: "night".to_string(),
                dur: r.gen_range(2i64..9) as f64,
                scheme: gen_scheme(r),
            });
        }

        // Permissions.
        let n_perms = r.gen_range(1usize..5);
        let mut perms = Vec::with_capacity(n_perms);
        for i in 0..n_perms {
            let pick = |r: &mut SplitMix64, pool: &[String]| -> Option<String> {
                if r.gen_bool(0.4) {
                    Some(r.choose(pool).clone())
                } else {
                    None
                }
            };
            let spatial = if r.gen_bool(0.55) {
                Some(gen_constraint(r, &ops, &resources, &servers, 2))
            } else {
                None
            };
            let class = if !classes.is_empty() && r.gen_bool(0.25) {
                Some("night".to_string())
            } else if r.gen_bool(0.05) {
                // Undefined class: the gate falls back to the
                // permission's own validity attributes.
                Some("ghost".to_string())
            } else {
                None
            };
            perms.push(PermSpec {
                name: format!("p{i}"),
                op: pick(r, &ops),
                resource: pick(r, &resources),
                server: pick(r, &servers),
                spatial,
                team_scope: r.gen_bool(0.15),
                validity: if r.gen_bool(0.5) {
                    Some(r.gen_range(2i64..9) as f64)
                } else {
                    None
                },
                scheme: gen_scheme(r),
                class,
                attr_cidr: None,
                attr_cron: None,
            });
        }

        // Roles and inheritance.
        let n_roles = r.gen_range(1usize..4);
        let mut roles = Vec::with_capacity(n_roles);
        for i in 0..n_roles {
            let mut assigned: Vec<usize> = (0..n_perms).filter(|_| r.gen_bool(0.6)).collect();
            if i == 0 && assigned.is_empty() && n_perms > 0 {
                assigned.push(r.gen_range(0..n_perms));
            }
            roles.push(RoleSpec {
                name: format!("role{i}"),
                perms: assigned,
            });
        }
        let mut inherits = Vec::new();
        for senior in 0..n_roles {
            for junior in senior + 1..n_roles {
                if r.gen_bool(0.25) {
                    inherits.push((senior, junior));
                }
            }
        }

        // Mobile objects.
        let n_objects = r.gen_range(1usize..4);
        let mut objects = Vec::with_capacity(n_objects);
        for i in 0..n_objects {
            let mut assigned: Vec<usize> = (0..n_roles).filter(|_| r.gen_bool(0.7)).collect();
            if assigned.is_empty() {
                assigned.push(r.gen_range(0..n_roles));
            }
            let mut enrolled = assigned.clone();
            // Occasionally enroll a role the object is NOT assigned:
            // activation fails silently and the object lacks those perms.
            for role in 0..n_roles {
                if !enrolled.contains(&role) && r.gen_bool(0.15) {
                    enrolled.push(role);
                }
            }
            enrolled.sort_unstable();
            objects.push(ObjectSpec {
                name: format!("n{i}"),
                assigned,
                enrolled,
            });
        }

        // Event schedule: initial (never-dropped) arrivals seed each
        // object at a server, then a random mix at strictly increasing
        // integer times.
        let mut events: Vec<Event> = Vec::new();
        let mut t = 0.0;
        for (i, _) in objects.iter().enumerate() {
            events.push(Event::Arrival {
                obj: i,
                server: r.choose(&servers).clone(),
                time: t,
                dropped: false,
            });
            t += 1.0;
        }
        let n_events = r.gen_range(6usize..17);
        let mut alive: Vec<usize> = (0..n_servers).collect();
        for _ in 0..n_events {
            let roll = r.gen_f64();
            if with_deaths && alive.len() > 1 && roll < 0.08 {
                let k = r.gen_range(0..alive.len());
                let victim = alive.swap_remove(k);
                events.push(Event::ServerDeath {
                    server: servers[victim].clone(),
                    time: t,
                });
            } else if roll < 0.28 {
                events.push(Event::Arrival {
                    obj: r.gen_range(0..n_objects),
                    server: r.choose(&servers).clone(),
                    time: t,
                    dropped: r.gen_bool(0.25),
                });
            } else {
                events.push(Event::Access {
                    obj: r.gen_range(0..n_objects),
                    access: Access::new(r.choose(&ops), r.choose(&resources), r.choose(&servers)),
                    time: t,
                });
            }
            t += 1.0;
        }

        Scenario {
            seed,
            profile: None,
            server_ips: Vec::new(),
            mode,
            approval_reuse,
            servers,
            skews,
            resources,
            ops,
            classes,
            perms,
            roles,
            inherits,
            objects,
            revisions: Vec::new(),
            events,
        }
    }

    /// Generate the scenario for a seed, then append `flips` mid-episode
    /// policy rollouts, each followed by a burst of post-flip traffic.
    ///
    /// Churn draws from its *own* deterministic stream (derived from the
    /// seed), so [`Scenario::generate`] stays byte-stable for every
    /// existing seed, and `generate_churn(seed, n)` is a strict extension
    /// of `generate(seed)`: same topology, same policy base, same event
    /// prefix.
    pub fn generate_churn(seed: u64, flips: usize) -> Scenario {
        let mut sc = Scenario::generate(seed);
        if flips == 0 {
            return sc;
        }
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5bd1_e995_9e37_79b9);
        let r = &mut rng;
        let mut t = sc.events.last().map(|e| e.time() + 1.0).unwrap_or(0.0);
        let n_objects = sc.objects.len();
        for k in 1..=flips {
            // Each revision perturbs the previous one: grant patterns and
            // spatial constraints move; names, validity attributes,
            // team scope and class bindings are revision-invariant (budget
            // keys survive flips, batching soundness is schedule-global).
            let mut perms = sc.perms_at(k - 1).to_vec();
            for p in &mut perms {
                if r.gen_bool(0.5) {
                    let pick = |r: &mut SplitMix64, pool: &[String]| -> Option<String> {
                        if r.gen_bool(0.4) {
                            Some(r.choose(pool).clone())
                        } else {
                            None
                        }
                    };
                    p.op = pick(r, &sc.ops);
                    p.resource = pick(r, &sc.resources);
                    p.server = pick(r, &sc.servers);
                }
                if r.gen_bool(0.45) {
                    p.spatial = r
                        .gen_bool(0.8)
                        .then(|| gen_constraint(r, &sc.ops, &sc.resources, &sc.servers, 2));
                }
            }
            let mut role_perms: Vec<Vec<usize>> = (0..sc.roles.len())
                .map(|i| sc.role_perms_at(k - 1, i).to_vec())
                .collect();
            for (i, rp) in role_perms.iter_mut().enumerate() {
                if r.gen_bool(0.5) {
                    *rp = (0..perms.len()).filter(|_| r.gen_bool(0.6)).collect();
                    if i == 0 && rp.is_empty() && !perms.is_empty() {
                        rp.push(r.gen_range(0..perms.len()));
                    }
                }
            }
            sc.revisions.push(PolicyRev { perms, role_perms });
            sc.events.push(Event::PolicyFlip { rev: k, time: t });
            t += 1.0;
            // Post-flip traffic so every revision actually decides. No
            // new server deaths: the death/approval-reuse envelope is
            // settled by the base generation.
            for _ in 0..r.gen_range(3usize..8) {
                if r.gen_bool(0.25) {
                    sc.events.push(Event::Arrival {
                        obj: r.gen_range(0..n_objects),
                        server: r.choose(&sc.servers).clone(),
                        time: t,
                        dropped: r.gen_bool(0.25),
                    });
                } else {
                    sc.events.push(Event::Access {
                        obj: r.gen_range(0..n_objects),
                        access: Access::new(
                            r.choose(&sc.ops),
                            r.choose(&sc.resources),
                            r.choose(&sc.servers),
                        ),
                        time: t,
                    });
                }
                t += 1.0;
            }
        }
        sc
    }

    /// The permission set of policy revision `rev` (0 = the base policy).
    pub fn perms_at(&self, rev: usize) -> &[PermSpec] {
        if rev == 0 {
            &self.perms
        } else {
            &self.revisions[rev - 1].perms
        }
    }

    /// The permission indices assigned to `role` at policy revision
    /// `rev` (0 = the base policy).
    pub fn role_perms_at(&self, rev: usize, role: usize) -> &[usize] {
        if rev == 0 {
            &self.roles[role].perms
        } else {
            &self.revisions[rev - 1].role_perms[role]
        }
    }

    /// The epoch reference time of policy revision `rev`: the activation
    /// time of its [`Event::PolicyFlip`], or `0` for the base policy.
    /// Attribute (cron) lowering samples calendar windows here, so a live
    /// rollout re-lowers the same attribute spec at the flip time.
    pub fn rev_time(&self, rev: usize) -> f64 {
        if rev == 0 {
            return 0.0;
        }
        self.events
            .iter()
            .find_map(|e| match e {
                Event::PolicyFlip { rev: k, time } if *k == rev => Some(*time),
                _ => None,
            })
            .unwrap_or(0.0)
    }

    /// Deterministically generate an attribute-carrying scenario shaped
    /// by a named mobility [`Profile`].
    ///
    /// Profile scenarios draw from their *own* stream (derived from the
    /// seed and the profile), so [`Scenario::generate`] stays byte-stable
    /// for every existing seed. Every profile:
    ///
    /// * maps each server to an IPv4 address inside its own `10.<i>/16`
    ///   block, so CIDR attributes select server subsets crisply;
    /// * includes at least one CIDR-attributed and one cron-attributed
    ///   permission (second-granularity schedules, so windows open and
    ///   close within the episode);
    /// * may install one mid-episode policy rollout, re-lowering the
    ///   same attribute specs at the flip's reference time.
    pub fn generate_profile(seed: u64, profile: Profile) -> Scenario {
        let idx = Profile::ALL.iter().position(|p| *p == profile).unwrap() as u64;
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6d0b_11e5_ab5c_0000 ^ (idx << 4));
        let r = &mut rng;

        // Topology: per-server /16 blocks in 10.0.0.0/8.
        let n_servers = match profile {
            Profile::Commuter | Profile::Workflow => r.gen_range(2usize..4),
            _ => r.gen_range(3usize..5),
        };
        let servers: Vec<String> = (0..n_servers).map(|i| format!("s{i}")).collect();
        let server_ips: Vec<(String, String)> = (0..n_servers)
            .map(|i| {
                let addr = format!("10.{i}.{}.{}", r.gen_range(0i64..4), r.gen_range(1i64..255));
                (format!("s{i}"), addr)
            })
            .collect();
        let skews: Vec<f64> = (0..n_servers)
            .map(|_| {
                if r.gen_bool(0.3) {
                    r.gen_range(1i64..5) as f64
                } else {
                    0.0
                }
            })
            .collect();
        let resources: Vec<String> = (0..2).map(|i| format!("r{i}")).collect();
        let ops: Vec<String> = match profile {
            Profile::Workflow => ["prepare", "approve", "commit"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            _ => OPS[..r.gen_range(2usize..4)]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        let mode = if r.gen_bool(0.6) {
            EnforcementMode::Preventive
        } else {
            EnforcementMode::Reactive
        };
        // Partition-heal schedules server deaths, which are unsound with
        // approval reuse (see `generate`); every other profile may reuse.
        let approval_reuse = profile != Profile::PartitionHeal && r.gen_bool(0.7);

        // The attribute permission pack.
        let cidr_attr = |r: &mut SplitMix64| -> AttrCidrSpec {
            // Allow a subset of the per-server /16 blocks (occasionally
            // the whole /8); deny one allowed block's half 30% of the
            // time, so deny-wins is exercised.
            let mut allow: Vec<String> = Vec::new();
            if r.gen_bool(0.15) {
                allow.push("10.0.0.0/8".to_string());
            } else {
                let k = r.gen_range(1..n_servers + 1);
                for i in 0..n_servers {
                    if allow.len() < k && (n_servers - i <= k - allow.len() || r.gen_bool(0.5)) {
                        allow.push(format!("10.{i}.0.0/16"));
                    }
                }
            }
            let deny = if r.gen_bool(0.3) {
                vec![format!("10.{}.0.0/17", r.gen_range(0..n_servers))]
            } else {
                Vec::new()
            };
            AttrCidrSpec { allow, deny }
        };
        let cron_attr = |r: &mut SplitMix64| -> AttrCronSpec {
            // Second-granularity schedules so windows cycle inside the
            // episode's few dozen seconds.
            let expr = match r.gen_range(0u32..3) {
                0 => format!("*/{} * * * * *", r.gen_range(2i64..10)),
                1 => {
                    let a = r.gen_range(0i64..40);
                    format!("{a}-{} * * * * *", a + r.gen_range(5i64..20))
                }
                _ => "0 * * * *".to_string(), // fires once at t=0
            };
            AttrCronSpec {
                expr,
                dur: r.gen_range(2i64..12) as f64,
            }
        };
        let blank = |name: &str| PermSpec {
            name: name.to_string(),
            op: None,
            resource: None,
            server: None,
            spatial: None,
            team_scope: false,
            validity: None,
            scheme: BaseTimeScheme::WholeLifetime,
            class: None,
            attr_cidr: None,
            attr_cron: None,
        };
        let mut perms: Vec<PermSpec> = Vec::new();
        match profile {
            Profile::Workflow => {
                // prepare is unguarded; approve rides a cron window;
                // commit requires approved history from a permitted zone.
                let mut prep = blank("p-prepare");
                prep.op = Some("prepare".to_string());
                let mut appr = blank("p-approve");
                appr.op = Some("approve".to_string());
                appr.attr_cron = Some(cron_attr(r));
                let mut commit = blank("p-commit");
                commit.op = Some("commit".to_string());
                commit.attr_cidr = Some(cidr_attr(r));
                commit.spatial = Some(Constraint::at_least(
                    1,
                    Selector::any().with_ops(["approve"]),
                ));
                perms.extend([prep, appr, commit]);
            }
            _ => {
                let mut geo = blank("p-geo");
                geo.attr_cidr = Some(cidr_attr(r));
                if r.gen_bool(0.4) {
                    geo.op = Some(r.choose(&ops).clone());
                }
                let mut shift = blank("p-shift");
                shift.attr_cron = Some(cron_attr(r));
                if r.gen_bool(0.4) {
                    shift.resource = Some(r.choose(&resources).clone());
                }
                let mut mixed = blank("p-mixed");
                if r.gen_bool(0.5) {
                    mixed.attr_cidr = Some(cidr_attr(r));
                    mixed.attr_cron = Some(cron_attr(r));
                } else {
                    mixed.spatial = Some(gen_constraint(r, &ops, &resources, &servers, 1));
                    if r.gen_bool(0.5) {
                        mixed.validity = Some(r.gen_range(2i64..9) as f64);
                        mixed.scheme = gen_scheme(r);
                    }
                }
                if profile == Profile::FleetConvoy && r.gen_bool(0.5) {
                    mixed.team_scope = true;
                }
                perms.extend([geo, shift, mixed]);
            }
        }

        // Roles and objects: role0 holds the full pack; a second role
        // holds a subset half the time.
        let mut roles = vec![RoleSpec {
            name: "role0".to_string(),
            perms: (0..perms.len()).collect(),
        }];
        if r.gen_bool(0.5) {
            roles.push(RoleSpec {
                name: "role1".to_string(),
                perms: (0..perms.len()).filter(|_| r.gen_bool(0.5)).collect(),
            });
        }
        let n_objects = match profile {
            Profile::FlashCrowd => 3,
            Profile::Commuter | Profile::Workflow => r.gen_range(1usize..3),
            _ => r.gen_range(2usize..4),
        };
        let objects: Vec<ObjectSpec> = (0..n_objects)
            .map(|i| {
                let assigned = if roles.len() > 1 && r.gen_bool(0.3) {
                    vec![0, 1]
                } else {
                    vec![0]
                };
                ObjectSpec {
                    name: format!("n{i}"),
                    enrolled: assigned.clone(),
                    assigned,
                }
            })
            .collect();

        // Itinerary. The scheduler advances time by one per event, so
        // times strictly increase by construction.
        struct Sched {
            events: Vec<Event>,
            t: f64,
        }
        impl Sched {
            fn arrive(&mut self, obj: usize, server: &str, dropped: bool) {
                let time = self.t;
                self.t += 1.0;
                self.events.push(Event::Arrival {
                    obj,
                    server: server.to_string(),
                    time,
                    dropped,
                });
            }
            fn access(&mut self, obj: usize, op: &str, res: &str, server: &str) {
                let time = self.t;
                self.t += 1.0;
                self.events.push(Event::Access {
                    obj,
                    access: Access::new(op, res, server),
                    time,
                });
            }
            fn death(&mut self, server: &str) {
                let time = self.t;
                self.t += 1.0;
                self.events.push(Event::ServerDeath {
                    server: server.to_string(),
                    time,
                });
            }
        }
        // One optional mid-episode rollout (always for workflow): the
        // same attribute pack re-lowered at the flip time, with grant
        // patterns lightly perturbed.
        fn do_flip(
            sched: &mut Sched,
            r: &mut SplitMix64,
            revisions: &mut Vec<PolicyRev>,
            perms: &[PermSpec],
            roles: &[RoleSpec],
            servers: &[String],
            profile: Profile,
        ) {
            if !revisions.is_empty() {
                return;
            }
            let mut rev_perms = perms.to_vec();
            for p in &mut rev_perms {
                if profile != Profile::Workflow && r.gen_bool(0.4) {
                    p.server = r.gen_bool(0.4).then(|| r.choose(servers).clone());
                }
            }
            revisions.push(PolicyRev {
                perms: rev_perms,
                role_perms: roles.iter().map(|role| role.perms.clone()).collect(),
            });
            let time = sched.t;
            sched.t += 1.0;
            sched.events.push(Event::PolicyFlip { rev: 1, time });
        }

        let with_flip = profile == Profile::Workflow || r.gen_bool(0.35);
        let mut revisions: Vec<PolicyRev> = Vec::new();
        let mut s = Sched {
            events: Vec::new(),
            t: 0.0,
        };
        match profile {
            Profile::Commuter => {
                // Per-object home/office pair; oscillate with office work
                // and occasional home reads.
                let pairs: Vec<(usize, usize)> = (0..n_objects)
                    .map(|_| {
                        let home = r.gen_range(0..n_servers);
                        let office = (home + 1 + r.gen_range(0..n_servers - 1)) % n_servers;
                        (home, office)
                    })
                    .collect();
                for (i, (home, _)) in pairs.iter().enumerate() {
                    s.arrive(i, &servers[*home], false);
                }
                let cycles = r.gen_range(2usize..4);
                for c in 0..cycles {
                    if c == cycles / 2 && with_flip {
                        do_flip(&mut s, r, &mut revisions, &perms, &roles, &servers, profile);
                    }
                    for (i, (home, office)) in pairs.iter().enumerate() {
                        s.arrive(i, &servers[*office], r.gen_bool(0.1));
                        for _ in 0..r.gen_range(1usize..4) {
                            let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                            s.access(i, &op, &res, &servers[*office]);
                        }
                        s.arrive(i, &servers[*home], false);
                        if r.gen_bool(0.4) {
                            let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                            s.access(i, &op, &res, &servers[*home]);
                        }
                    }
                }
            }
            Profile::FleetConvoy => {
                // The whole fleet hops the server ring together.
                let start = r.gen_range(0..n_servers);
                for i in 0..n_objects {
                    s.arrive(i, &servers[start], false);
                }
                let hops = r.gen_range(3usize..6);
                for h in 1..=hops {
                    if h == hops / 2 + 1 && with_flip {
                        do_flip(&mut s, r, &mut revisions, &perms, &roles, &servers, profile);
                    }
                    let stop = (start + h) % n_servers;
                    for i in 0..n_objects {
                        s.arrive(i, &servers[stop], r.gen_bool(0.15));
                    }
                    for i in 0..n_objects {
                        let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                        s.access(i, &op, &res, &servers[stop]);
                    }
                }
            }
            Profile::FlashCrowd => {
                // Scatter, converge on the hot server, disperse.
                let hot = r.gen_range(0..n_servers);
                let starts: Vec<usize> =
                    (0..n_objects).map(|_| r.gen_range(0..n_servers)).collect();
                for (i, st) in starts.iter().enumerate() {
                    s.arrive(i, &servers[*st], false);
                }
                for (i, st) in starts.iter().enumerate() {
                    if r.gen_bool(0.6) {
                        let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                        s.access(i, &op, &res, &servers[*st]);
                    }
                }
                if with_flip {
                    do_flip(&mut s, r, &mut revisions, &perms, &roles, &servers, profile);
                }
                for i in 0..n_objects {
                    s.arrive(i, &servers[hot], false);
                    for _ in 0..r.gen_range(2usize..4) {
                        let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                        s.access(i, &op, &res, &servers[hot]);
                    }
                }
                for i in 0..n_objects {
                    let away = (hot + 1 + r.gen_range(0..n_servers - 1)) % n_servers;
                    s.arrive(i, &servers[away], r.gen_bool(0.2));
                    let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                    s.access(i, &op, &res, &servers[away]);
                }
            }
            Profile::PartitionHeal => {
                // Spread out, lose a server, heal onto survivors; some
                // stale traffic still targets the victim.
                let victim = r.gen_range(0..n_servers);
                let starts: Vec<usize> =
                    (0..n_objects).map(|_| r.gen_range(0..n_servers)).collect();
                for (i, st) in starts.iter().enumerate() {
                    s.arrive(i, &servers[*st], false);
                }
                for (i, st) in starts.iter().enumerate() {
                    let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                    s.access(i, &op, &res, &servers[*st]);
                }
                s.death(&servers[victim]);
                if with_flip {
                    do_flip(&mut s, r, &mut revisions, &perms, &roles, &servers, profile);
                }
                for (i, st) in starts.iter().enumerate() {
                    if r.gen_bool(0.4) {
                        // Stale access to the dead server.
                        let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                        s.access(i, &op, &res, &servers[victim]);
                    }
                    let heal = if *st == victim {
                        (victim + 1 + r.gen_range(0..n_servers - 1)) % n_servers
                    } else {
                        *st
                    };
                    s.arrive(i, &servers[heal], false);
                    let (op, res) = (r.choose(&ops).clone(), r.choose(&resources).clone());
                    s.access(i, &op, &res, &servers[heal]);
                }
            }
            Profile::Workflow => {
                // prepare → approve → commit chains, twice, with the
                // rollout between the two rounds.
                let starts: Vec<usize> =
                    (0..n_objects).map(|_| r.gen_range(0..n_servers)).collect();
                for (i, st) in starts.iter().enumerate() {
                    s.arrive(i, &servers[*st], false);
                }
                for round in 0..2 {
                    if round == 1 && with_flip {
                        do_flip(&mut s, r, &mut revisions, &perms, &roles, &servers, profile);
                    }
                    for (i, st) in starts.iter().enumerate() {
                        for op in ["prepare", "approve", "commit"] {
                            if op == "approve" && r.gen_bool(0.2) {
                                continue; // skipped approval starves commit
                            }
                            let res = r.choose(&resources).clone();
                            s.access(i, op, &res, &servers[*st]);
                        }
                        if r.gen_bool(0.3) {
                            let next = (*st + 1) % n_servers;
                            s.arrive(i, &servers[next], false);
                        }
                    }
                }
            }
        }
        let events = s.events;

        Scenario {
            seed,
            profile: Some(profile),
            server_ips,
            mode,
            approval_reuse,
            servers,
            skews,
            resources,
            ops,
            classes: Vec::new(),
            perms,
            roles,
            inherits: Vec::new(),
            objects,
            revisions,
            events,
        }
    }
}

fn gen_scheme(r: &mut SplitMix64) -> BaseTimeScheme {
    if r.gen_bool(0.5) {
        BaseTimeScheme::CurrentServer
    } else {
        BaseTimeScheme::WholeLifetime
    }
}

fn gen_access(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
) -> Access {
    Access::new(r.choose(ops), r.choose(resources), r.choose(servers))
}

fn gen_selector(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
) -> Selector {
    let mut s = Selector::any();
    if r.gen_bool(0.5) {
        s = s.with_ops([r.choose(ops).as_str()]);
    }
    if r.gen_bool(0.5) {
        s = s.with_resources([r.choose(resources).as_str()]);
    }
    if r.gen_bool(0.3) {
        s = s.with_servers([r.choose(servers).as_str()]);
    }
    s
}

/// A random SRAC constraint over the scenario's access vocabulary.
fn gen_constraint(
    r: &mut SplitMix64,
    ops: &[String],
    resources: &[String],
    servers: &[String],
    depth: usize,
) -> Constraint {
    let leaf = depth == 0 || r.gen_bool(0.55);
    if leaf {
        match r.gen_range(0u32..5) {
            0 => Constraint::True,
            1 => Constraint::Atom(gen_access(r, ops, resources, servers)),
            2 => Constraint::Ordered(
                gen_access(r, ops, resources, servers),
                gen_access(r, ops, resources, servers),
            ),
            _ => {
                // Cardinality bounds biased wide enough that grants occur.
                let min = if r.gen_bool(0.25) { 1 } else { 0 };
                let max = if r.gen_bool(0.3) {
                    None
                } else {
                    Some(min + r.gen_range(1usize..7))
                };
                Constraint::Card {
                    min,
                    max,
                    selector: gen_selector(r, ops, resources, servers),
                }
            }
        }
    } else {
        let a = gen_constraint(r, ops, resources, servers, depth - 1);
        let b = gen_constraint(r, ops, resources, servers, depth - 1);
        match r.gen_range(0u32..4) {
            0 => a.and(b),
            1 => a.or(b),
            2 => a.implies(b),
            _ => a.not(),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario seed={}", self.seed)?;
        if let Some(p) = self.profile {
            write!(f, " profile={}", p.name())?;
        }
        writeln!(
            f,
            " mode={} reuse={}",
            match self.mode {
                EnforcementMode::Preventive => "preventive",
                EnforcementMode::Reactive => "reactive",
            },
            if self.approval_reuse { "on" } else { "off" }
        )?;
        for (srv, addr) in &self.server_ips {
            writeln!(f, "server-ip {srv} {addr}")?;
        }
        let skewed: Vec<String> = self
            .servers
            .iter()
            .zip(&self.skews)
            .map(|(s, k)| {
                if *k == 0.0 {
                    s.clone()
                } else {
                    format!("{s} skew={k}")
                }
            })
            .collect();
        writeln!(f, "servers: {}", skewed.join(", "))?;
        writeln!(f, "resources: {}", self.resources.join(" "))?;
        writeln!(f, "ops: {}", self.ops.join(" "))?;
        for c in &self.classes {
            writeln!(
                f,
                "class {} dur={} scheme={}",
                c.name,
                c.dur,
                c.scheme.name()
            )?;
        }
        for p in &self.perms {
            write_perm(f, p, "")?;
        }
        for role in &self.roles {
            let names: Vec<&str> = role
                .perms
                .iter()
                .map(|&i| self.perms[i].name.as_str())
                .collect();
            writeln!(f, "role {} perms={}", role.name, names.join(","))?;
        }
        for &(s, j) in &self.inherits {
            writeln!(f, "inherit {} {}", self.roles[s].name, self.roles[j].name)?;
        }
        for o in &self.objects {
            let names = |ix: &[usize]| {
                ix.iter()
                    .map(|&i| self.roles[i].name.as_str())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            writeln!(
                f,
                "object {} roles={} enrolled={}",
                o.name,
                names(&o.assigned),
                names(&o.enrolled)
            )?;
        }
        for (k, rev) in self.revisions.iter().enumerate() {
            writeln!(f, "revision {} (epoch {}):", k + 1, k + 1)?;
            for p in &rev.perms {
                write_perm(f, p, "  ")?;
            }
            for (i, rp) in rev.role_perms.iter().enumerate() {
                let names: Vec<&str> = rp.iter().map(|&pi| rev.perms[pi].name.as_str()).collect();
                writeln!(f, "  role {} perms={}", self.roles[i].name, names.join(","))?;
            }
        }
        writeln!(f, "events:")?;
        for e in &self.events {
            match e {
                Event::Access { obj, access, time } => {
                    writeln!(f, "  [{time}] access {} {access}", self.objects[*obj].name)?;
                }
                Event::Arrival {
                    obj,
                    server,
                    time,
                    dropped,
                } => {
                    writeln!(
                        f,
                        "  [{time}] arrive {} @ {server}{}",
                        self.objects[*obj].name,
                        if *dropped { " (dropped)" } else { "" }
                    )?;
                }
                Event::ServerDeath { server, time } => {
                    writeln!(f, "  [{time}] server-death {server}")?;
                }
                Event::PolicyFlip { rev, time } => {
                    writeln!(f, "  [{time}] policy-flip epoch={rev}")?;
                }
            }
        }
        Ok(())
    }
}

/// Write one permission line (shared by the base policy and revision
/// sections of the scenario rendering).
fn write_perm(f: &mut fmt::Formatter<'_>, p: &PermSpec, indent: &str) -> fmt::Result {
    let part = |x: &Option<String>| x.clone().unwrap_or_else(|| "*".to_string());
    write!(
        f,
        "{indent}perm {} grants={}:{}:{}",
        p.name,
        part(&p.op),
        part(&p.resource),
        part(&p.server)
    )?;
    if let Some(c) = &p.spatial {
        write!(f, " spatial=\"{c}\"")?;
    }
    if p.team_scope {
        write!(f, " scope=team")?;
    }
    if let Some(v) = p.validity {
        write!(f, " validity={v} scheme={}", p.scheme.name())?;
    }
    if let Some(c) = &p.class {
        write!(f, " class={c}")?;
    }
    if let Some(a) = &p.attr_cidr {
        write!(f, " cidr-allow={}", a.allow.join("|"))?;
        if !a.deny.is_empty() {
            write!(f, " cidr-deny={}", a.deny.join("|"))?;
        }
    }
    if let Some(c) = &p.attr_cron {
        write!(f, " cron=\"{}\" cron-dur={}", c.expr, c.dur)?;
    }
    writeln!(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = Scenario::generate(seed).to_string();
            let b = Scenario::generate(seed).to_string();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn times_strictly_increase() {
        for seed in 0..32u64 {
            let sc = Scenario::generate(seed);
            for w in sc.events.windows(2) {
                assert!(w[0].time() < w[1].time(), "seed {seed}");
            }
        }
    }

    #[test]
    fn churn_generation_is_deterministic() {
        for seed in [0u64, 3, 42] {
            let a = Scenario::generate_churn(seed, 4).to_string();
            let b = Scenario::generate_churn(seed, 4).to_string();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn churn_extends_the_base_schedule() {
        for seed in 0..32u64 {
            let base = Scenario::generate(seed);
            let churned = Scenario::generate_churn(seed, 4);
            assert_eq!(churned.revisions.len(), 4, "seed {seed}");
            // Strict extension: the base prefix is untouched and times
            // keep strictly increasing through the churn tail.
            assert!(churned.events.len() > base.events.len(), "seed {seed}");
            for (a, b) in base.events.iter().zip(&churned.events) {
                assert_eq!(a.time(), b.time(), "seed {seed}");
            }
            for w in churned.events.windows(2) {
                assert!(w[0].time() < w[1].time(), "seed {seed}");
            }
            // Revisions never move the revision-invariant attributes.
            for rev in 0..=churned.revisions.len() {
                let perms = churned.perms_at(rev);
                assert_eq!(perms.len(), base.perms.len(), "seed {seed}");
                for (p, q) in base.perms.iter().zip(perms) {
                    assert_eq!(p.name, q.name, "seed {seed}");
                    assert_eq!(p.team_scope, q.team_scope, "seed {seed}");
                    assert_eq!(p.validity, q.validity, "seed {seed}");
                    assert_eq!(p.class, q.class, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn deaths_disable_approval_reuse() {
        for seed in 0..256u64 {
            let sc = Scenario::generate(seed);
            let has_death = sc
                .events
                .iter()
                .any(|e| matches!(e, Event::ServerDeath { .. }));
            if has_death {
                assert!(!sc.approval_reuse, "seed {seed}");
            }
        }
    }
}
