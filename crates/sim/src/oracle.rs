//! The deliberately slow reference oracle.
//!
//! Recomputes every decision from scratch on string keys, straight from
//! the [`Scenario`] spec and its own journals — it shares *no* code with
//! the interned decision path it is checking:
//!
//! * **RBAC lookup** — active roles, inheritance closure and candidate
//!   permissions are rederived per decision by walking the scenario's
//!   role/edge lists (not [`stacl_rbac::RbacModel`]).
//! * **Spatial `P ⊨ C`** — the object's full trace (proven history plus
//!   declared future accesses) is re-evaluated naively through
//!   [`stacl_srac::trace_sat::trace_satisfies`] (Definition 3.6) with a
//!   fresh [`AccessTable`] each time — no residual automata, no caching,
//!   no approval reuse.
//! * **Temporal validity** — accumulated-duration validity is recomputed
//!   from the recorded activation time and arrival journal by a direct
//!   last-refill formula, not [`stacl_temporal::PermissionTimeline`].
//!
//! Divergence-injection hooks ([`OracleBug`]) deliberately corrupt the
//! oracle so the harness can prove the differential loop actually trips,
//! shrinks and replays (they are never enabled in CI sweeps).

use std::collections::{BTreeMap, BTreeSet};

use stacl_abac::{naive_validity_at, parse_ipv4, Cidr, CronExpr};
use stacl_coalition::{DecisionKind, Verdict};
use stacl_srac::trace_sat::{trace_satisfies, ProofOracle};
use stacl_srac::Constraint;
use stacl_sral::Access;
use stacl_temporal::BaseTimeScheme;
use stacl_trace::{AccessTable, Trace};

use crate::scenario::{AttrCidrSpec, PermSpec, Scenario};

/// A deliberate defect injected into the oracle to prove the differential
/// harness catches real divergences end to end.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleBug {
    /// Every finite cardinality upper bound is off by one (too lax).
    CardMaxOffByOne,
    /// Per-server budget refills on migration are ignored.
    IgnoreRefills,
    /// The naive CIDR membership check widens every allow prefix by one
    /// bit (too lax on the allow side) — a deliberately broken attribute
    /// lowering for the shrinking-witness self-test.
    CidrWiden,
}

impl OracleBug {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            OracleBug::CardMaxOffByOne => "card-max-off-by-one",
            OracleBug::IgnoreRefills => "ignore-refills",
            OracleBug::CidrWiden => "cidr-widen",
        }
    }

    /// Parse the CLI name (`none` parses to `None`).
    pub fn parse(s: &str) -> Result<Option<OracleBug>, String> {
        match s {
            "none" => Ok(None),
            "card-max-off-by-one" => Ok(Some(OracleBug::CardMaxOffByOne)),
            "ignore-refills" => Ok(Some(OracleBug::IgnoreRefills)),
            "cidr-widen" => Ok(Some(OracleBug::CidrWiden)),
            other => Err(format!(
                "unknown oracle bug `{other}` (expected none, card-max-off-by-one, \
                 ignore-refills or cidr-widen)"
            )),
        }
    }
}

/// The reference decision oracle: string-keyed journals plus from-scratch
/// recomputation per decision.
#[derive(Debug, Default)]
pub struct ReferenceOracle {
    bug: Option<OracleBug>,
    /// The active policy revision (0 = base). Journals — grants,
    /// arrivals, budget activations — persist across flips: a rollout
    /// swaps the policy, never the objects' histories or spent budgets.
    rev: usize,
    /// Every granted access in grant order, with the granting object.
    grants: Vec<(usize, Access)>,
    /// Per-object observed arrival times.
    arrivals: BTreeMap<usize, Vec<f64>>,
    /// (object, budget-key) → the budget captured at first activation:
    /// activation time, duration and scheme. The gate creates each
    /// timeline once, with the attributes in force at first consult, and
    /// the timeline persists across policy flips — so the oracle journals
    /// the whole budget, not just the activation time (this only matters
    /// for cron attributes, whose lowered duration is epoch-dependent).
    activations: BTreeMap<(usize, String), (f64, Option<f64>, BaseTimeScheme)>,
    /// Dead servers.
    dead: BTreeSet<String>,
}

impl ReferenceOracle {
    /// A fresh oracle, optionally with an injected defect.
    pub fn new(bug: Option<OracleBug>) -> Self {
        ReferenceOracle {
            bug,
            ..Default::default()
        }
    }

    /// Record an observed (non-dropped) arrival.
    pub fn note_arrival(&mut self, obj: usize, time: f64) {
        self.arrivals.entry(obj).or_default().push(time);
    }

    /// Record a server death.
    pub fn note_death(&mut self, server: &str) {
        self.dead.insert(server.to_string());
    }

    /// Record a coalition-wide policy flip: revision `rev` is now the
    /// active policy.
    pub fn note_flip(&mut self, rev: usize) {
        self.rev = rev;
    }

    /// Record a granted access (the oracle's mirror of proof issuance).
    pub fn note_grant(&mut self, obj: usize, access: Access) {
        self.grants.push((obj, access));
    }

    /// Decide one access request from scratch.
    ///
    /// `remaining` is the object's declared remaining straight-line
    /// program, including the attempted access itself.
    pub fn decide(
        &mut self,
        sc: &Scenario,
        obj: usize,
        access: &Access,
        remaining: &[Access],
        time: f64,
    ) -> Verdict {
        if self.dead.contains(&*access.server) || !sc.servers.iter().any(|s| **s == *access.server)
        {
            return Verdict::denied(
                DecisionKind::DeniedUnknownTarget,
                format!("server {} is unreachable", access.server),
            );
        }

        let mut covered = false;
        let mut spatial_failed = false;
        let mut temporal_failed = false;
        for pname in self.candidate_perms(sc, obj) {
            let p = sc
                .perms_at(self.rev)
                .iter()
                .find(|p| p.name == pname)
                .expect("candidate names come from the scenario");
            if !pattern_covers(p, access) {
                continue;
            }
            covered = true;

            let spatial_ok = match &p.attr_cidr {
                Some(a) => self.cidr_holds(sc, obj, p, a, access, remaining),
                None => match &p.spatial {
                    Some(c) => self.spatial_holds(sc, obj, p, c, access, remaining),
                    None => true,
                },
            };
            if !spatial_ok {
                spatial_failed = true;
                continue;
            }

            let (key, dur, scheme) = budget_of(sc, p, sc.rev_time(self.rev));
            let (act, dur, scheme) = *self
                .activations
                .entry((obj, key))
                .or_insert((time, dur, scheme));
            let valid = match dur {
                None => true,
                Some(d) => self.valid_at(obj, act, scheme, d, time),
            };
            if valid {
                return Verdict::granted();
            }
            temporal_failed = true;
        }

        if !covered {
            DecisionKind::DeniedNoPermission.into()
        } else if temporal_failed {
            Verdict::denied(DecisionKind::DeniedTemporal, "validity exhausted")
        } else if spatial_failed {
            Verdict::denied(DecisionKind::DeniedSpatial, "spatial constraint violated")
        } else {
            DecisionKind::DeniedNoPermission.into()
        }
    }

    /// The candidate permission names of the object, in name order: the
    /// union over its *activatable* enrolled roles of each role's
    /// junior-closed permission set.
    fn candidate_perms(&self, sc: &Scenario, obj: usize) -> BTreeSet<String> {
        let spec = &sc.objects[obj];
        let mut out = BTreeSet::new();
        for &role in &spec.enrolled {
            let authorized = spec.assigned.contains(&role)
                || spec
                    .assigned
                    .iter()
                    .any(|&senior| inherits(sc, senior, role));
            if !authorized {
                continue;
            }
            for junior in junior_closure(sc, role) {
                for &pi in sc.role_perms_at(self.rev, junior) {
                    out.insert(sc.perms_at(self.rev)[pi].name.clone());
                }
            }
        }
        out
    }

    /// The full access sequence a spatial check ranges over: proven
    /// history (per scope) plus the declared future (mode-dependent).
    fn full_trace<'a>(
        &'a self,
        sc: &Scenario,
        obj: usize,
        p: &PermSpec,
        access: &'a Access,
        remaining: &'a [Access],
    ) -> Vec<&'a Access> {
        let mut full: Vec<&Access> = self
            .grants
            .iter()
            .filter(|(o, _)| p.team_scope || *o == obj)
            .map(|(_, a)| a)
            .collect();
        match sc.mode {
            stacl_naplet::guard::EnforcementMode::Preventive => full.extend(remaining),
            stacl_naplet::guard::EnforcementMode::Reactive => full.push(access),
        }
        full
    }

    /// `P ⊨ C` by naive trace evaluation: proven history (per scope) plus
    /// the declared future, one flat trace, Definition 3.6 from scratch.
    fn spatial_holds(
        &self,
        sc: &Scenario,
        obj: usize,
        p: &PermSpec,
        c: &Constraint,
        access: &Access,
        remaining: &[Access],
    ) -> bool {
        let full = self.full_trace(sc, obj, p, access, remaining);
        let mut table = AccessTable::new();
        let trace = Trace::from_ids(full.iter().map(|a| table.intern(a)));
        let c = self.bugged(c);
        trace_satisfies(&trace, &c, &table, &ProofOracle::assume_all())
    }

    /// The CIDR attribute by naive bitmask membership, independent of the
    /// SRAC lowering: every access in the trace must land on a server
    /// whose address the rule permits. Unparsable blocks or unmapped
    /// servers deny (default-deny, mirroring the lowering's fail-safe).
    fn cidr_holds(
        &self,
        sc: &Scenario,
        obj: usize,
        p: &PermSpec,
        a: &AttrCidrSpec,
        access: &Access,
        remaining: &[Access],
    ) -> bool {
        let parse_all = |blocks: &[String], widen: bool| -> Option<Vec<Cidr>> {
            blocks
                .iter()
                .map(|b| {
                    Cidr::parse(b).ok().map(|c| {
                        if widen {
                            Cidr {
                                addr: c.addr,
                                prefix: c.prefix.saturating_sub(1),
                            }
                        } else {
                            c
                        }
                    })
                })
                .collect()
        };
        let widen = self.bug == Some(OracleBug::CidrWiden);
        let (Some(allow), Some(deny)) = (parse_all(&a.allow, widen), parse_all(&a.deny, false))
        else {
            return false; // parse error: fail-safe deny, like the lowering
        };
        let permits = |server: &str| -> bool {
            let Some(ip) = sc
                .server_ips
                .iter()
                .find(|(n, _)| n == server)
                .and_then(|(_, addr)| parse_ipv4(addr).ok())
            else {
                return false;
            };
            allow.iter().any(|c| c.contains(ip)) && !deny.iter().any(|c| c.contains(ip))
        };
        self.full_trace(sc, obj, p, access, remaining)
            .iter()
            .all(|acc| permits(&acc.server))
    }

    /// Accumulated-duration validity at `time`, recomputed from the
    /// arrival journal: the budget refills in full at every refill epoch
    /// after activation (all arrivals for the per-server scheme, only the
    /// first for whole-lifetime), and the last refill at or before `time`
    /// decides validity. The window is half-open: a budget of `d` starting
    /// at `b` is valid on `[b, b + d)`.
    fn valid_at(&self, obj: usize, act: f64, scheme: BaseTimeScheme, dur: f64, time: f64) -> bool {
        if time < act {
            return false;
        }
        let journal = self.arrivals.get(&obj).map(Vec::as_slice).unwrap_or(&[]);
        let epochs: &[f64] = match (self.bug, scheme) {
            (Some(OracleBug::IgnoreRefills), _) => &[],
            (_, BaseTimeScheme::WholeLifetime) => &journal[..journal.len().min(1)],
            (_, BaseTimeScheme::CurrentServer) => journal,
        };
        // The last refill epoch in (act, time] restarts a full budget; if
        // none, the budget has been draining since activation.
        let mut base = act;
        for &e in epochs {
            if e > act && e <= time {
                base = base.max(e);
            }
        }
        time - base < dur
    }

    /// Apply the injected defect to a constraint.
    fn bugged(&self, c: &Constraint) -> Constraint {
        match self.bug {
            Some(OracleBug::CardMaxOffByOne) => relax_card(c),
            _ => c.clone(),
        }
    }
}

fn relax_card(c: &Constraint) -> Constraint {
    match c {
        Constraint::Card { min, max, selector } => Constraint::Card {
            min: *min,
            max: max.map(|m| m + 1),
            selector: selector.clone(),
        },
        Constraint::And(a, b) => relax_card(a).and(relax_card(b)),
        Constraint::Or(a, b) => relax_card(a).or(relax_card(b)),
        Constraint::Not(a) => relax_card(a).not(),
        leaf => leaf.clone(),
    }
}

/// Does the permission's grant pattern cover the access?
fn pattern_covers(p: &PermSpec, a: &Access) -> bool {
    let ok = |pat: &Option<String>, v: &str| pat.as_deref().is_none_or(|x| x == v);
    ok(&p.op, &a.op) && ok(&p.resource, &a.resource) && ok(&p.server, &a.server)
}

/// Does `senior` (transitively) inherit `junior`?
fn inherits(sc: &Scenario, senior: usize, junior: usize) -> bool {
    if senior == junior {
        return false;
    }
    let mut stack = vec![senior];
    let mut seen = BTreeSet::new();
    while let Some(r) = stack.pop() {
        for &(s, j) in &sc.inherits {
            if s == r && seen.insert(j) {
                if j == junior {
                    return true;
                }
                stack.push(j);
            }
        }
    }
    false
}

/// The role itself plus every (transitive) junior.
fn junior_closure(sc: &Scenario, role: usize) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut stack = vec![role];
    while let Some(r) = stack.pop() {
        if out.insert(r) {
            for &(s, j) in &sc.inherits {
                if s == r {
                    stack.push(j);
                }
            }
        }
    }
    out
}

/// The budget a permission draws from: `(string key, duration, scheme)`.
/// A defined validity class yields the shared class budget; an undefined
/// class falls back to the permission's own attributes (mirroring the
/// gate's fallback path). A cron attribute's duration is re-derived by
/// naive per-second expansion at the epoch reference time `at` —
/// independent of the arithmetic lowering the guard compiled.
fn budget_of(sc: &Scenario, p: &PermSpec, at: f64) -> (String, Option<f64>, BaseTimeScheme) {
    if let Some(class) = &p.class {
        if let Some(cs) = sc.classes.iter().find(|c| c.name == *class) {
            return (format!("class:{}", cs.name), Some(cs.dur), cs.scheme);
        }
    }
    if let Some(c) = &p.attr_cron {
        let dur = match CronExpr::parse(&c.expr) {
            Ok(e) => naive_validity_at(&e, c.dur, at),
            Err(_) => 0.0, // parse error: zero budget, like the lowering
        };
        return (p.name.clone(), Some(dur), BaseTimeScheme::WholeLifetime);
    }
    (p.name.clone(), p.validity, p.scheme)
}
