//! The deliberately slow reference oracle.
//!
//! Recomputes every decision from scratch on string keys, straight from
//! the [`Scenario`] spec and its own journals — it shares *no* code with
//! the interned decision path it is checking:
//!
//! * **RBAC lookup** — active roles, inheritance closure and candidate
//!   permissions are rederived per decision by walking the scenario's
//!   role/edge lists (not [`stacl_rbac::RbacModel`]).
//! * **Spatial `P ⊨ C`** — the object's full trace (proven history plus
//!   declared future accesses) is re-evaluated naively through
//!   [`stacl_srac::trace_sat::trace_satisfies`] (Definition 3.6) with a
//!   fresh [`AccessTable`] each time — no residual automata, no caching,
//!   no approval reuse.
//! * **Temporal validity** — accumulated-duration validity is recomputed
//!   from the recorded activation time and arrival journal by a direct
//!   last-refill formula, not [`stacl_temporal::PermissionTimeline`].
//!
//! Divergence-injection hooks ([`OracleBug`]) deliberately corrupt the
//! oracle so the harness can prove the differential loop actually trips,
//! shrinks and replays (they are never enabled in CI sweeps).

use std::collections::{BTreeMap, BTreeSet};

use stacl_coalition::{DecisionKind, Verdict};
use stacl_srac::trace_sat::{trace_satisfies, ProofOracle};
use stacl_srac::Constraint;
use stacl_sral::Access;
use stacl_temporal::BaseTimeScheme;
use stacl_trace::{AccessTable, Trace};

use crate::scenario::{PermSpec, Scenario};

/// A deliberate defect injected into the oracle to prove the differential
/// harness catches real divergences end to end.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleBug {
    /// Every finite cardinality upper bound is off by one (too lax).
    CardMaxOffByOne,
    /// Per-server budget refills on migration are ignored.
    IgnoreRefills,
}

impl OracleBug {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            OracleBug::CardMaxOffByOne => "card-max-off-by-one",
            OracleBug::IgnoreRefills => "ignore-refills",
        }
    }

    /// Parse the CLI name (`none` parses to `None`).
    pub fn parse(s: &str) -> Result<Option<OracleBug>, String> {
        match s {
            "none" => Ok(None),
            "card-max-off-by-one" => Ok(Some(OracleBug::CardMaxOffByOne)),
            "ignore-refills" => Ok(Some(OracleBug::IgnoreRefills)),
            other => Err(format!(
                "unknown oracle bug `{other}` (expected none, card-max-off-by-one or ignore-refills)"
            )),
        }
    }
}

/// The reference decision oracle: string-keyed journals plus from-scratch
/// recomputation per decision.
#[derive(Debug, Default)]
pub struct ReferenceOracle {
    bug: Option<OracleBug>,
    /// The active policy revision (0 = base). Journals — grants,
    /// arrivals, budget activations — persist across flips: a rollout
    /// swaps the policy, never the objects' histories or spent budgets.
    rev: usize,
    /// Every granted access in grant order, with the granting object.
    grants: Vec<(usize, Access)>,
    /// Per-object observed arrival times.
    arrivals: BTreeMap<usize, Vec<f64>>,
    /// (object, budget-key) → time the budget was first activated.
    activations: BTreeMap<(usize, String), f64>,
    /// Dead servers.
    dead: BTreeSet<String>,
}

impl ReferenceOracle {
    /// A fresh oracle, optionally with an injected defect.
    pub fn new(bug: Option<OracleBug>) -> Self {
        ReferenceOracle {
            bug,
            ..Default::default()
        }
    }

    /// Record an observed (non-dropped) arrival.
    pub fn note_arrival(&mut self, obj: usize, time: f64) {
        self.arrivals.entry(obj).or_default().push(time);
    }

    /// Record a server death.
    pub fn note_death(&mut self, server: &str) {
        self.dead.insert(server.to_string());
    }

    /// Record a coalition-wide policy flip: revision `rev` is now the
    /// active policy.
    pub fn note_flip(&mut self, rev: usize) {
        self.rev = rev;
    }

    /// Record a granted access (the oracle's mirror of proof issuance).
    pub fn note_grant(&mut self, obj: usize, access: Access) {
        self.grants.push((obj, access));
    }

    /// Decide one access request from scratch.
    ///
    /// `remaining` is the object's declared remaining straight-line
    /// program, including the attempted access itself.
    pub fn decide(
        &mut self,
        sc: &Scenario,
        obj: usize,
        access: &Access,
        remaining: &[Access],
        time: f64,
    ) -> Verdict {
        if self.dead.contains(&*access.server) || !sc.servers.iter().any(|s| **s == *access.server)
        {
            return Verdict::denied(
                DecisionKind::DeniedUnknownTarget,
                format!("server {} is unreachable", access.server),
            );
        }

        let mut covered = false;
        let mut spatial_failed = false;
        let mut temporal_failed = false;
        for pname in self.candidate_perms(sc, obj) {
            let p = sc
                .perms_at(self.rev)
                .iter()
                .find(|p| p.name == pname)
                .expect("candidate names come from the scenario");
            if !pattern_covers(p, access) {
                continue;
            }
            covered = true;

            if let Some(c) = &p.spatial {
                if !self.spatial_holds(sc, obj, p, c, access, remaining) {
                    spatial_failed = true;
                    continue;
                }
            }

            let (key, dur, scheme) = budget_of(sc, p);
            let act = *self.activations.entry((obj, key)).or_insert(time);
            let valid = match dur {
                None => true,
                Some(d) => self.valid_at(obj, act, scheme, d, time),
            };
            if valid {
                return Verdict::granted();
            }
            temporal_failed = true;
        }

        if !covered {
            DecisionKind::DeniedNoPermission.into()
        } else if temporal_failed {
            Verdict::denied(DecisionKind::DeniedTemporal, "validity exhausted")
        } else if spatial_failed {
            Verdict::denied(DecisionKind::DeniedSpatial, "spatial constraint violated")
        } else {
            DecisionKind::DeniedNoPermission.into()
        }
    }

    /// The candidate permission names of the object, in name order: the
    /// union over its *activatable* enrolled roles of each role's
    /// junior-closed permission set.
    fn candidate_perms(&self, sc: &Scenario, obj: usize) -> BTreeSet<String> {
        let spec = &sc.objects[obj];
        let mut out = BTreeSet::new();
        for &role in &spec.enrolled {
            let authorized = spec.assigned.contains(&role)
                || spec
                    .assigned
                    .iter()
                    .any(|&senior| inherits(sc, senior, role));
            if !authorized {
                continue;
            }
            for junior in junior_closure(sc, role) {
                for &pi in sc.role_perms_at(self.rev, junior) {
                    out.insert(sc.perms_at(self.rev)[pi].name.clone());
                }
            }
        }
        out
    }

    /// `P ⊨ C` by naive trace evaluation: proven history (per scope) plus
    /// the declared future, one flat trace, Definition 3.6 from scratch.
    fn spatial_holds(
        &self,
        sc: &Scenario,
        obj: usize,
        p: &PermSpec,
        c: &Constraint,
        access: &Access,
        remaining: &[Access],
    ) -> bool {
        let mut full: Vec<&Access> = self
            .grants
            .iter()
            .filter(|(o, _)| p.team_scope || *o == obj)
            .map(|(_, a)| a)
            .collect();
        match sc.mode {
            stacl_naplet::guard::EnforcementMode::Preventive => full.extend(remaining),
            stacl_naplet::guard::EnforcementMode::Reactive => full.push(access),
        }
        let mut table = AccessTable::new();
        let trace = Trace::from_ids(full.iter().map(|a| table.intern(a)));
        let c = self.bugged(c);
        trace_satisfies(&trace, &c, &table, &ProofOracle::assume_all())
    }

    /// Accumulated-duration validity at `time`, recomputed from the
    /// arrival journal: the budget refills in full at every refill epoch
    /// after activation (all arrivals for the per-server scheme, only the
    /// first for whole-lifetime), and the last refill at or before `time`
    /// decides validity. The window is half-open: a budget of `d` starting
    /// at `b` is valid on `[b, b + d)`.
    fn valid_at(&self, obj: usize, act: f64, scheme: BaseTimeScheme, dur: f64, time: f64) -> bool {
        if time < act {
            return false;
        }
        let journal = self.arrivals.get(&obj).map(Vec::as_slice).unwrap_or(&[]);
        let epochs: &[f64] = match (self.bug, scheme) {
            (Some(OracleBug::IgnoreRefills), _) => &[],
            (_, BaseTimeScheme::WholeLifetime) => &journal[..journal.len().min(1)],
            (_, BaseTimeScheme::CurrentServer) => journal,
        };
        // The last refill epoch in (act, time] restarts a full budget; if
        // none, the budget has been draining since activation.
        let mut base = act;
        for &e in epochs {
            if e > act && e <= time {
                base = base.max(e);
            }
        }
        time - base < dur
    }

    /// Apply the injected defect to a constraint.
    fn bugged(&self, c: &Constraint) -> Constraint {
        match self.bug {
            Some(OracleBug::CardMaxOffByOne) => relax_card(c),
            _ => c.clone(),
        }
    }
}

fn relax_card(c: &Constraint) -> Constraint {
    match c {
        Constraint::Card { min, max, selector } => Constraint::Card {
            min: *min,
            max: max.map(|m| m + 1),
            selector: selector.clone(),
        },
        Constraint::And(a, b) => relax_card(a).and(relax_card(b)),
        Constraint::Or(a, b) => relax_card(a).or(relax_card(b)),
        Constraint::Not(a) => relax_card(a).not(),
        leaf => leaf.clone(),
    }
}

/// Does the permission's grant pattern cover the access?
fn pattern_covers(p: &PermSpec, a: &Access) -> bool {
    let ok = |pat: &Option<String>, v: &str| pat.as_deref().is_none_or(|x| x == v);
    ok(&p.op, &a.op) && ok(&p.resource, &a.resource) && ok(&p.server, &a.server)
}

/// Does `senior` (transitively) inherit `junior`?
fn inherits(sc: &Scenario, senior: usize, junior: usize) -> bool {
    if senior == junior {
        return false;
    }
    let mut stack = vec![senior];
    let mut seen = BTreeSet::new();
    while let Some(r) = stack.pop() {
        for &(s, j) in &sc.inherits {
            if s == r && seen.insert(j) {
                if j == junior {
                    return true;
                }
                stack.push(j);
            }
        }
    }
    false
}

/// The role itself plus every (transitive) junior.
fn junior_closure(sc: &Scenario, role: usize) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut stack = vec![role];
    while let Some(r) = stack.pop() {
        if out.insert(r) {
            for &(s, j) in &sc.inherits {
                if s == r {
                    stack.push(j);
                }
            }
        }
    }
    out
}

/// The budget a permission draws from: `(string key, duration, scheme)`.
/// A defined validity class yields the shared class budget; an undefined
/// class falls back to the permission's own attributes (mirroring the
/// gate's fallback path).
fn budget_of(sc: &Scenario, p: &PermSpec) -> (String, Option<f64>, BaseTimeScheme) {
    if let Some(class) = &p.class {
        if let Some(cs) = sc.classes.iter().find(|c| c.name == *class) {
            return (format!("class:{}", cs.name), Some(cs.dur), cs.scheme);
        }
    }
    (p.name.clone(), p.validity, p.scheme)
}
