//! The episode driver: plays one [`Scenario`] against the real
//! [`CoordinatedGuard`] decision stack while the [`ReferenceOracle`]
//! shadows every decision, and records the first divergence.
//!
//! The driver mirrors [`stacl_naplet::system::NapletSystem`]'s access
//! pipeline: topology resolution first (a dead or unknown server denies
//! with `DeniedUnknownTarget` *without* consulting the guard), then the
//! guard gate, then — on a grant — proof issuance stamped with the local
//! server clock (base time plus the server's skew).

use std::collections::{BTreeMap, BTreeSet};

use stacl_coalition::ledger::{fnv1a, Ledger};
use stacl_coalition::{CoalitionEnv, DecisionKind, ProofStore, Verdict};
use stacl_naplet::guard::{BatchRequest, CoordinatedGuard, GuardRequest};
use stacl_rbac::policy::render_policy;
use stacl_rbac::{AccessPattern, ExtendedRbac, Permission, RbacModel};
use stacl_sral::{Access, Program};
use stacl_temporal::TimePoint;
use stacl_trace::AccessTable;

use crate::oracle::{OracleBug, ReferenceOracle};
use crate::scenario::{Event, Scenario};

/// A disagreement between the guard and the reference oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the offending event in [`Scenario::events`].
    pub step: usize,
    /// Event time.
    pub time: f64,
    /// Requesting object's name.
    pub object: String,
    /// The attempted access.
    pub access: Access,
    /// What the real decision stack said.
    pub guard: DecisionKind,
    /// What the reference oracle said.
    pub oracle: DecisionKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} t={} object {} access {}: guard={} oracle={}",
            self.step,
            self.time,
            self.object,
            self.access,
            self.guard.label(),
            self.oracle.label()
        )
    }
}

/// The outcome of one simulated episode.
#[derive(Clone, Debug)]
pub struct Episode {
    /// The generating seed.
    pub seed: u64,
    /// The full step-by-step episode log (byte-identical per seed).
    pub log: String,
    /// Decision counts by [`DecisionKind::label`].
    pub histogram: BTreeMap<&'static str, usize>,
    /// Number of access decisions made.
    pub decisions: usize,
    /// The first guard/oracle disagreement, if any (the episode stops
    /// there).
    pub divergence: Option<Divergence>,
}

/// Build the RBAC model for policy revision `rev` of a scenario (0 = the
/// base policy). Public so the networked driver can render revision
/// models into policy text for `PolicyPrepare` frames.
///
/// Attribute (CIDR/cron) permissions are lowered here, exactly as the
/// `stacl-abac` front-end lowers policy files: CIDR rules become pure
/// SRAC constraints over the scenario's server→IP map, cron windows
/// become validity budgets sampled at the revision's reference time
/// ([`Scenario::rev_time`]). Lowering problems fail safe (deny) and are
/// counted under `abac.lower-error.*`.
pub fn build_model(sc: &Scenario, rev: usize) -> RbacModel {
    let at = sc.rev_time(rev);
    let server_map: Vec<(String, Option<u32>)> = sc
        .servers
        .iter()
        .map(|srv| {
            let ip = sc
                .server_ips
                .iter()
                .find(|(n, _)| n == srv)
                .and_then(|(_, a)| stacl_abac::parse_ipv4(a).ok());
            (srv.clone(), ip)
        })
        .collect();
    let mut model = RbacModel::new();
    for o in &sc.objects {
        model.add_user(&o.name);
    }
    for role in &sc.roles {
        model.add_role(&role.name);
    }
    for p in sc.perms_at(rev) {
        let pattern = AccessPattern {
            op: p.op.as_deref().map(stacl_sral::ast::name),
            resource: p.resource.as_deref().map(stacl_sral::ast::name),
            server: p.server.as_deref().map(stacl_sral::ast::name),
        };
        let mut perm = Permission::new(&p.name, pattern);
        let spatial = match &p.attr_cidr {
            Some(a) => stacl_abac::lower_cidr_failsafe(&a.allow, &a.deny, &server_map),
            None => p.spatial.clone(),
        };
        if let Some(c) = spatial {
            perm = perm.with_spatial(c);
        }
        if p.team_scope {
            perm = perm.with_scope(stacl_rbac::HistoryScope::Team);
        }
        match &p.attr_cron {
            Some(c) => {
                let v = stacl_abac::cron_validity_failsafe(&c.expr, c.dur, at);
                perm = perm.with_validity(v, stacl_temporal::BaseTimeScheme::WholeLifetime);
            }
            None => {
                if let Some(v) = p.validity {
                    perm = perm.with_validity(v, p.scheme);
                }
            }
        }
        if let Some(class) = &p.class {
            perm = perm.with_class(class);
        }
        model.add_permission(perm).expect("unique generated names");
    }
    for (ri, role) in sc.roles.iter().enumerate() {
        for &pi in sc.role_perms_at(rev, ri) {
            model
                .assign_permission(&role.name, &sc.perms_at(rev)[pi].name)
                .expect("role and permission exist");
        }
    }
    for &(s, j) in &sc.inherits {
        model
            .add_inheritance(&sc.roles[s].name, &sc.roles[j].name)
            .expect("generated senior<junior edges are acyclic");
    }
    for o in &sc.objects {
        for &r in &o.assigned {
            model
                .assign_user(&o.name, &sc.roles[r].name)
                .expect("user and role exist");
        }
    }
    model
}

/// Build the real decision stack for a scenario. Public so transports
/// other than the in-process driver (the networked coalition of
/// `stacl-net`) can replicate the policy onto every member.
pub fn build_guard(sc: &Scenario) -> CoordinatedGuard {
    let mut rbac = ExtendedRbac::new(build_model(sc, 0));
    for c in &sc.classes {
        rbac.define_validity_class(&c.name, c.dur, c.scheme);
    }

    let guard = CoordinatedGuard::new(rbac)
        .with_mode(sc.mode)
        .with_approval_reuse(sc.approval_reuse);
    for o in &sc.objects {
        guard.enroll(
            &o.name,
            o.enrolled.iter().map(|&r| sc.roles[r].name.as_str()),
        );
    }
    guard
}

/// Run one episode, cross-checking every decision against the oracle.
pub fn run_episode(sc: &Scenario, bug: Option<OracleBug>) -> Episode {
    run_episode_with(sc, bug, false)
}

/// One pending access decision within a run of consecutive `Access`
/// events over pairwise-distinct objects.
struct PendingAccess<'a> {
    /// Index of the event in [`Scenario::events`].
    step: usize,
    obj: usize,
    access: &'a Access,
    time: f64,
    remaining: &'a [Access],
    /// The declared remaining program — `None` when topology already
    /// denied the access (the guard is never consulted then).
    program: Option<Program>,
}

/// Run one episode, optionally fanning independent access decisions
/// through [`CoordinatedGuard::decide_batch`].
///
/// With `batched`, maximal runs of consecutive `Access` events over
/// pairwise-distinct objects are decided as one parallel batch; the
/// oracle cross-check, logging and proof issuance still happen
/// sequentially in event order afterwards, so the episode log is
/// **byte-identical** to the sequential driver's for every seed.
/// Scenarios containing any team-scoped permission degrade to batch
/// size 1 (companion histories make cross-object decisions order-
/// dependent).
pub fn run_episode_with(sc: &Scenario, bug: Option<OracleBug>, batched: bool) -> Episode {
    run_episode_opts(sc, bug, batched, None)
}

/// How often the episode drivers journal a verdict into the audit
/// ledger: every `LEDGER_SAMPLE`-th decision (1-indexed), the same on
/// every transport so ledgers byte-compare across them.
pub const LEDGER_SAMPLE: usize = 8;

/// [`run_episode_with`], optionally journaling policy changes and
/// sampled verdicts into an append-only audit [`Ledger`]. The ledger is
/// transport-independent: the networked driver
/// ([`crate::net_driver::run_episode_net_opts`]) produces a byte-identical
/// chain for the same scenario.
pub fn run_episode_opts(
    sc: &Scenario,
    bug: Option<OracleBug>,
    batched: bool,
    mut ledger: Option<&mut Ledger>,
) -> Episode {
    let guard = build_guard(sc);
    if let Some(l) = ledger.as_deref_mut() {
        // Epoch 0 is the boot policy; hash the canonical rendering so
        // in-process and wire chains agree byte-for-byte.
        l.record_policy_change(0, fnv1a(render_policy(&build_model(sc, 0)).as_bytes()));
    }
    let mut env = CoalitionEnv::new();
    for s in &sc.servers {
        env.add_server(s);
        for res in &sc.resources {
            env.add_resource(s, res, sc.ops.iter().map(String::as_str));
        }
    }
    let proofs = ProofStore::new();
    let mut table = AccessTable::new();
    // Pre-saturate the table with the policy's constraint vocabulary so
    // steady-state cursor checks never grow it mid-decision (verdicts
    // and logs are unaffected — they are table-id independent).
    guard.with_rbac(|r| r.saturate_alphabet(&mut table));
    let mut oracle = ReferenceOracle::new(bug);
    // Batching across objects is only sound when no permission reads
    // companions' histories.
    let can_batch = batched && !sc.perms.iter().any(|p| p.team_scope);

    // Each object's future accesses in schedule order; `cursor[i]` marks
    // how many it has already attempted (granted or not — a denied access
    // is skipped, exactly as `OnDeny::Skip` agents behave).
    let per_object: Vec<Vec<Access>> = (0..sc.objects.len())
        .map(|i| {
            sc.events
                .iter()
                .filter_map(|e| match e {
                    Event::Access { obj, access, .. } if *obj == i => Some(access.clone()),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let mut cursor = vec![0usize; sc.objects.len()];

    let mut dead: BTreeSet<String> = BTreeSet::new();
    let mut log = String::new();
    let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut decisions = 0usize;
    let mut divergence = None;

    use std::fmt::Write as _;
    // Profile scenarios announce their workload shape up front, so every
    // replay (and transport) log is self-describing.
    if let Some(p) = sc.profile {
        let _ = writeln!(log, "profile {}", p.name());
    }
    let mut step = 0usize;
    'events: while step < sc.events.len() {
        match &sc.events[step] {
            Event::Arrival {
                obj,
                server,
                time,
                dropped,
            } => {
                let name = &sc.objects[*obj].name;
                if *dropped {
                    let _ = writeln!(log, "[{time}] arrive {name} @ {server} DROPPED");
                } else {
                    guard.note_arrival(name, TimePoint::new(*time));
                    oracle.note_arrival(*obj, *time);
                    let _ = writeln!(log, "[{time}] arrive {name} @ {server}");
                }
                step += 1;
            }
            Event::ServerDeath { server, time } => {
                dead.insert(server.clone());
                oracle.note_death(server);
                let _ = writeln!(log, "[{time}] server-death {server}");
                step += 1;
            }
            Event::PolicyFlip { rev, time } => {
                // The in-process half of the two-phase rollout: build the
                // revision off the hot path, then flip atomically. Epoch
                // numbers are revision numbers.
                let model = build_model(sc, *rev);
                if let Some(l) = ledger.as_deref_mut() {
                    l.record_policy_change(*rev as u64, fnv1a(render_policy(&model).as_bytes()));
                }
                let classes = sc.classes.iter().map(|c| (c.name.clone(), c.dur, c.scheme));
                let prepared = guard
                    .with_rbac_read(|r| r.prepare_epoch(model, classes, *rev as u64, &mut table))
                    .expect("scenario epochs strictly increase");
                guard
                    .with_rbac(|r| r.activate_epoch(prepared))
                    .expect("prepared epoch activates");
                oracle.note_flip(*rev);
                let _ = writeln!(log, "[{time}] policy-flip epoch={rev}");
                step += 1;
            }
            Event::Access { .. } => {
                // Collect the maximal run of consecutive Access events
                // over pairwise-distinct objects (just this event when
                // not batching).
                let mut run_end = step + 1;
                if can_batch {
                    let mut seen = BTreeSet::new();
                    if let Event::Access { obj, .. } = &sc.events[step] {
                        seen.insert(*obj);
                    }
                    while run_end < sc.events.len() {
                        match &sc.events[run_end] {
                            Event::Access { obj, .. } if seen.insert(*obj) => run_end += 1,
                            _ => break,
                        }
                    }
                }

                // Materialise the run's items in event order. Topology is
                // resolved here (it is constant within the run: server
                // deaths break it).
                let mut items: Vec<PendingAccess<'_>> = Vec::with_capacity(run_end - step);
                for i in step..run_end {
                    let Event::Access { obj, access, time } = &sc.events[i] else {
                        unreachable!("run contains only Access events");
                    };
                    let remaining = &per_object[*obj][cursor[*obj]..];
                    cursor[*obj] += 1;
                    let reachable = !dead.contains(&*access.server) && env.resolve(access).is_ok();
                    let program = reachable
                        .then(|| Program::seq_all(remaining.iter().cloned().map(Program::Access)));
                    items.push(PendingAccess {
                        step: i,
                        obj: *obj,
                        access,
                        time: *time,
                        remaining,
                        program,
                    });
                }

                // The guard pass: one parallel batch over the run, or the
                // plain sequential decide. Proofs are issued below, in
                // event order, exactly as the sequential driver does.
                let mut guard_vs: Vec<Option<Verdict>> = items.iter().map(|_| None).collect();
                if can_batch {
                    let mut reqs = Vec::new();
                    let mut slots = Vec::new();
                    for (k, it) in items.iter().enumerate() {
                        if let Some(program) = &it.program {
                            reqs.push(BatchRequest {
                                object: &sc.objects[it.obj].name,
                                access: it.access,
                                remaining: program,
                                time: TimePoint::new(it.time),
                            });
                            slots.push(k);
                        }
                    }
                    for (k, v) in slots
                        .into_iter()
                        .zip(guard.decide_batch(&reqs, &proofs, false))
                    {
                        guard_vs[k] = Some(v);
                    }
                } else {
                    for (k, it) in items.iter().enumerate() {
                        if let Some(program) = &it.program {
                            let req = GuardRequest {
                                object: &sc.objects[it.obj].name,
                                access: it.access,
                                remaining: program,
                                time: TimePoint::new(it.time),
                            };
                            guard_vs[k] = Some(guard.decide(&req, &proofs, &mut table));
                        }
                    }
                }

                // Oracle cross-check, logging and proof issuance, in
                // event order.
                for (k, it) in items.iter().enumerate() {
                    let name = &sc.objects[it.obj].name;
                    let time = it.time;
                    let access = it.access;
                    let oracle_v = oracle.decide(sc, it.obj, access, it.remaining, time);
                    let system_v: Verdict = match guard_vs[k].take() {
                        Some(v) => v,
                        None => {
                            // Topology denial happens before the guard runs,
                            // so record the verdict here to keep the
                            // telemetry invariant (verdict counters sum to
                            // total decisions) exact.
                            stacl_obs::count(stacl_obs::Counter::VerdictDeniedUnknownTarget);
                            Verdict::denied(
                                DecisionKind::DeniedUnknownTarget,
                                format!("server {} is unreachable", access.server),
                            )
                        }
                    };

                    decisions += 1;
                    *histogram.entry(system_v.kind.label()).or_insert(0) += 1;
                    if decisions % LEDGER_SAMPLE == 1 {
                        if let Some(l) = ledger.as_deref_mut() {
                            l.record_verdict(time, name, &access.to_string(), &system_v);
                        }
                    }
                    let _ = writeln!(
                        log,
                        "[{time}] access {name} {access} -> guard={} oracle={}",
                        system_v.kind.label(),
                        oracle_v.kind.label()
                    );

                    if system_v.kind != oracle_v.kind {
                        divergence = Some(Divergence {
                            step: it.step,
                            time,
                            object: name.clone(),
                            access: access.clone(),
                            guard: system_v.kind,
                            oracle: oracle_v.kind,
                        });
                        let _ = writeln!(log, "DIVERGENCE at step {}", it.step);
                        break 'events;
                    }

                    if system_v.is_granted() {
                        // Proofs are stamped with the local server clock —
                        // skew shifts timestamps but not decisions.
                        let skew = sc
                            .servers
                            .iter()
                            .position(|s| **s == *access.server)
                            .map(|i| sc.skews[i])
                            .unwrap_or(0.0);
                        proofs.issue(name, access.clone(), TimePoint::new(time + skew));
                        oracle.note_grant(it.obj, access.clone());
                    }
                }
                step = run_end;
            }
        }
    }

    Episode {
        seed: sc.seed,
        log,
        histogram,
        decisions,
        divergence,
    }
}

/// Generate the scenario for `seed` and run it.
pub fn episode_for_seed(seed: u64, bug: Option<OracleBug>) -> Episode {
    run_episode(&Scenario::generate(seed), bug)
}

/// Generate the scenario for `seed` and run it through the batched
/// parallel driver. The log is byte-identical to
/// [`episode_for_seed`]'s.
pub fn episode_for_seed_batched(seed: u64, bug: Option<OracleBug>) -> Episode {
    run_episode_with(&Scenario::generate(seed), bug, true)
}
