//! Divergence minimization.
//!
//! Given a scenario whose episode diverges, [`shrink`] greedily deletes
//! events and strips permission attributes while the divergence persists,
//! iterating to a fixpoint. Shrinking is fully deterministic: the same
//! diverging scenario always reduces to the same minimal witness, so a
//! repro by seed re-derives the identical shrunk case.

use crate::episode::{run_episode, Episode};
use crate::oracle::OracleBug;
use crate::scenario::Scenario;

/// One shrink attempt: keep the candidate iff it still diverges.
fn try_accept(
    current: &mut Scenario,
    episode: &mut Episode,
    candidate: Scenario,
    bug: Option<OracleBug>,
) -> bool {
    let ep = run_episode(&candidate, bug);
    if ep.divergence.is_some() {
        *current = candidate;
        *episode = ep;
        true
    } else {
        false
    }
}

/// Minimize a diverging scenario. Returns the shrunk scenario and its
/// episode; panics if the input does not diverge.
pub fn shrink(sc: &Scenario, bug: Option<OracleBug>) -> (Scenario, Episode) {
    let mut current = sc.clone();
    let mut episode = run_episode(&current, bug);
    assert!(
        episode.divergence.is_some(),
        "shrink called on a non-diverging scenario"
    );

    loop {
        let mut changed = false;

        // Everything after the diverging event is dead weight.
        if let Some(d) = &episode.divergence {
            if d.step + 1 < current.events.len() {
                let mut candidate = current.clone();
                candidate.events.truncate(d.step + 1);
                changed |= try_accept(&mut current, &mut episode, candidate, bug);
            }
        }

        // Delete individual events, last first (indices stay stable).
        let mut i = current.events.len();
        while i > 0 {
            i -= 1;
            if current.events.len() <= 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if try_accept(&mut current, &mut episode, candidate, bug) {
                changed = true;
            }
        }

        // Strip permission attributes.
        for pi in 0..current.perms.len() {
            if current.perms[pi].spatial.is_some() {
                let mut candidate = current.clone();
                candidate.perms[pi].spatial = None;
                changed |= try_accept(&mut current, &mut episode, candidate, bug);
            }
            if current.perms[pi].validity.is_some() {
                let mut candidate = current.clone();
                candidate.perms[pi].validity = None;
                changed |= try_accept(&mut current, &mut episode, candidate, bug);
            }
            if current.perms[pi].class.is_some() {
                let mut candidate = current.clone();
                candidate.perms[pi].class = None;
                changed |= try_accept(&mut current, &mut episode, candidate, bug);
            }
            if current.perms[pi].attr_cron.is_some() {
                let mut candidate = current.clone();
                candidate.perms[pi].attr_cron = None;
                changed |= try_accept(&mut current, &mut episode, candidate, bug);
            }
            if current.perms[pi].attr_cidr.is_some() {
                // Drop the whole attribute first, then individual deny
                // blocks (the allow set carries the witness most often).
                let mut candidate = current.clone();
                candidate.perms[pi].attr_cidr = None;
                if try_accept(&mut current, &mut episode, candidate, bug) {
                    changed = true;
                } else {
                    let n_deny = current.perms[pi]
                        .attr_cidr
                        .as_ref()
                        .expect("attr survived the drop attempt")
                        .deny
                        .len();
                    for di in (0..n_deny).rev() {
                        let mut candidate = current.clone();
                        candidate.perms[pi]
                            .attr_cidr
                            .as_mut()
                            .expect("attr survived the drop attempt")
                            .deny
                            .remove(di);
                        changed |= try_accept(&mut current, &mut episode, candidate, bug);
                    }
                }
            }
        }

        // Unassign permissions from roles.
        for ri in 0..current.roles.len() {
            let mut k = current.roles[ri].perms.len();
            while k > 0 {
                k -= 1;
                let mut candidate = current.clone();
                candidate.roles[ri].perms.remove(k);
                if try_accept(&mut current, &mut episode, candidate, bug) {
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }
    (current, episode)
}
