//! Sweep accumulation and repro rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::episode::{run_episode, Episode};
use crate::oracle::OracleBug;
use crate::scenario::{Profile, Scenario};
use crate::shrink::shrink;

/// Aggregated results of a multi-seed sweep.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Episodes run.
    pub episodes: usize,
    /// Total access decisions across all episodes.
    pub decisions: usize,
    /// Decision counts by kind label, summed over episodes.
    pub histogram: BTreeMap<&'static str, usize>,
    /// Seeds whose episode diverged.
    pub divergent_seeds: Vec<u64>,
}

impl SweepReport {
    /// An empty report.
    pub fn new() -> Self {
        SweepReport::default()
    }

    /// Fold one episode into the report.
    pub fn absorb(&mut self, seed: u64, ep: &Episode) {
        self.episodes += 1;
        self.decisions += ep.decisions;
        for (k, n) in &ep.histogram {
            *self.histogram.entry(k).or_insert(0) += n;
        }
        if ep.divergence.is_some() {
            self.divergent_seeds.push(seed);
        }
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "episodes={} decisions={} divergences={}",
            self.episodes,
            self.decisions,
            self.divergent_seeds.len()
        );
        for (k, n) in &self.histogram {
            let _ = writeln!(out, "  {k}: {n}");
        }
        if !self.divergent_seeds.is_empty() {
            let seeds: Vec<String> = self.divergent_seeds.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "divergent seeds: {}", seeds.join(" "));
        }
        out
    }
}

/// The full replay report for one seed: the generated scenario, the
/// episode log, and — when the episode diverges — the deterministic
/// shrunk witness with its own log.
pub fn repro(seed: u64, bug: Option<OracleBug>) -> String {
    repro_scenario(&Scenario::generate(seed), bug)
}

/// [`repro`] for a profile-generated scenario: same report, driven by
/// [`Scenario::generate_profile`].
pub fn repro_profile(seed: u64, profile: Profile, bug: Option<OracleBug>) -> String {
    repro_scenario(&Scenario::generate_profile(seed, profile), bug)
}

fn repro_scenario(sc: &Scenario, bug: Option<OracleBug>) -> String {
    let sc = sc.clone();
    let ep = run_episode(&sc, bug);
    let mut out = String::new();
    let _ = writeln!(out, "{sc}");
    let _ = writeln!(out, "episode log:");
    out.push_str(&ep.log);
    match &ep.divergence {
        None => {
            let _ = writeln!(
                out,
                "no divergence: guard and oracle agree on all decisions"
            );
        }
        Some(d) => {
            let _ = writeln!(out, "DIVERGENCE: {d}");
            let (small, small_ep) = shrink(&sc, bug);
            let _ = writeln!(out, "\nshrunk witness ({} events):", small.events.len());
            let _ = writeln!(out, "{small}");
            let _ = writeln!(out, "shrunk episode log:");
            out.push_str(&small_ep.log);
            if let Some(d) = &small_ep.divergence {
                let _ = writeln!(out, "DIVERGENCE (shrunk): {d}");
            }
        }
    }
    out
}
