//! The networked episode driver: wire-level differential validation.
//!
//! [`run_episode_net`] replays a scenario's exact event stream against a
//! coalition of `stacl-net` daemons on loopback — one
//! [`stacl_naplet::guard::CoordinatedGuard`] shard per daemon, custody
//! enforcement on — and produces an [`Episode`] whose log is
//! **byte-identical** to [`crate::run_episode_with`]'s for every seed.
//!
//! How the distributed replay preserves identity:
//!
//! * **Policy** is replicated at build time: every daemon gets the same
//!   [`build_guard`] output (same scenario, same enrollments).
//! * **Proofs** are replicated by the driver: after every grant it
//!   broadcasts `IssueProof` to *all* members in event order, so each
//!   replica's proof store is identical (same contents, same sequence
//!   numbers) — team-scoped constraints read the same combined history
//!   everywhere.
//! * **Per-object gate state** (arrival history, temporal timelines,
//!   spatial approvals) travels with the object: a migration onto a
//!   different daemon triggers the wire handoff pull, after which the
//!   receiver's gate equals the single in-process guard's.
//! * **Topology** stays driver-side, exactly like the in-process driver:
//!   a dead or unknown server denies `DeniedUnknownTarget` before any
//!   member is consulted, and a server death never kills a daemon (a
//!   member outliving one of its servers still custodies its objects).
//!
//! Decisions route to the object's *custodian* — the daemon serving the
//! server of its last non-dropped arrival (server index modulo daemon
//! count when the coalition is smaller than the topology).

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use stacl_coalition::ledger::{fnv1a, Ledger};
use stacl_coalition::{CoalitionEnv, DecisionKind, Placement, ProofStore, Verdict};
use stacl_naplet::guard::Custody;
use stacl_net::frames::scheme_to_u8;
use stacl_net::{Client, DaemonConfig, DaemonHandle};
use stacl_rbac::policy::render_policy;
use stacl_sral::Access;

use crate::episode::{build_guard, build_model, Divergence, Episode, LEDGER_SAMPLE};
use crate::oracle::{OracleBug, ReferenceOracle};
use crate::scenario::{Event, Scenario};

/// Replay `sc` over a loopback coalition of `n_daemons` members.
///
/// Returns an error only on transport-setup or migration failures — a
/// member that cannot *decide* never errors, it fail-safes to
/// `DeniedCoordination` (and that would surface as a divergence).
pub fn run_episode_net(
    sc: &Scenario,
    bug: Option<OracleBug>,
    n_daemons: usize,
) -> Result<Episode, String> {
    run_episode_net_opts(sc, bug, n_daemons, None)
}

/// The window depth the pipelined replay opens per decision. The
/// driver's event stream is data-dependent (each verdict gates the next
/// proof broadcast), so the effective in-flight depth is 1 — what the
/// pipelined replay validates is the full v2 correlated frame path
/// (`Decide2`/`Verdict2`, id matching, coalesced writes), byte-identical
/// to the in-process episode.
const PIPELINE_WINDOW: usize = 16;

/// [`run_episode_net`], optionally journaling policy changes and sampled
/// verdicts into an audit [`Ledger`]. Sampling (every
/// [`LEDGER_SAMPLE`]-th decision) and payloads mirror
/// [`crate::episode::run_episode_opts`] exactly, so the chain
/// byte-compares across transports.
pub fn run_episode_net_opts(
    sc: &Scenario,
    bug: Option<OracleBug>,
    n_daemons: usize,
    ledger: Option<&mut Ledger>,
) -> Result<Episode, String> {
    run_episode_net_driver(sc, bug, n_daemons, ledger, false, None)
}

/// [`run_episode_net_opts`] over the **pipelined v2 transport**:
/// decisions travel as request-id-correlated `Decide2` frames through
/// [`Client::decide_stream_failsafe`] instead of synchronous v1
/// `Decide` calls. Logs and ledgers must stay byte-identical to both
/// the v1 replay and the in-process episode.
pub fn run_episode_net_pipelined(
    sc: &Scenario,
    bug: Option<OracleBug>,
    n_daemons: usize,
    ledger: Option<&mut Ledger>,
) -> Result<Episode, String> {
    run_episode_net_driver(sc, bug, n_daemons, ledger, true, None)
}

/// Options for the placement-routed replay ([`run_episode_net_placement`]).
#[derive(Clone, Copy, Debug)]
pub struct PlacementOpts {
    /// Inject membership churn mid-episode: the last member leaves at the
    /// one-third mark and rejoins at the two-thirds mark, each change
    /// draining exactly the moved keys through the custody rebalance
    /// before the replay continues.
    pub churn: bool,
    /// Per-daemon proof-compaction trigger
    /// ([`stacl_net::DaemonConfig::compact_after`]); `0` disables
    /// compaction. Either setting must leave the verdict log
    /// byte-identical — compaction is verdict-neutral by construction.
    pub compact_after: usize,
}

/// Replay `sc` over a coalition routed by the **rendezvous placement
/// ring** instead of arrival-following custody: every object lives on its
/// ring home, every arrival and decision routes there directly (no
/// handoff per migration), and membership churn rebalances custody via
/// [`stacl_net::DaemonHandle::set_members`]. The verdict log must stay
/// byte-identical to the in-process driver's for every seed, under any
/// churn/compaction setting.
pub fn run_episode_net_placement(
    sc: &Scenario,
    bug: Option<OracleBug>,
    n_daemons: usize,
    ledger: Option<&mut Ledger>,
    opts: PlacementOpts,
) -> Result<Episode, String> {
    run_episode_net_driver(sc, bug, n_daemons, ledger, false, Some(opts))
}

fn run_episode_net_driver(
    sc: &Scenario,
    bug: Option<OracleBug>,
    n_daemons: usize,
    mut ledger: Option<&mut Ledger>,
    pipelined: bool,
    placement: Option<PlacementOpts>,
) -> Result<Episode, String> {
    assert!(n_daemons >= 1, "a coalition needs at least one member");
    if let Some(l) = ledger.as_deref_mut() {
        l.record_policy_change(0, fnv1a(render_policy(&build_model(sc, 0)).as_bytes()));
    }
    let d_of = |server: &str| -> usize {
        sc.servers.iter().position(|s| s == server).unwrap_or(0) % n_daemons
    };

    // Spawn the members: identical policy replicas, custody enforced.
    let mut handles: Vec<DaemonHandle> = Vec::with_capacity(n_daemons);
    for i in 0..n_daemons {
        let guard = build_guard(sc);
        guard.set_custody_enforcement(true);
        let mut cfg = DaemonConfig::new(format!("d{i}"));
        cfg.skew = sc.skews.get(i).copied().unwrap_or(0.0);
        // The legacy (custody-following) replay predates compaction; keep
        // it byte-for-byte stable by disabling the trigger there.
        cfg.compact_after = placement.map_or(0, |p| p.compact_after);
        let h = stacl_net::spawn(guard, ProofStore::new(), cfg)
            .map_err(|e| format!("spawn daemon d{i}: {e}"))?;
        handles.push(h);
    }
    let peers: Vec<(String, SocketAddr)> = handles
        .iter()
        .map(|h| (h.name().to_string(), h.addr()))
        .collect();
    for h in &handles {
        for (n, a) in &peers {
            if n != h.name() {
                h.add_peer(n, *a);
            }
        }
    }

    // Placement mode: install the full-membership ring everywhere. The
    // driver mirrors it to route arrivals and decisions straight to each
    // object's home custodian.
    let mut ring: Option<Placement> = placement.map(|_| {
        let ring = Placement::new(peers.iter().map(|(n, _)| n.clone()));
        for h in &handles {
            h.set_members(&peers);
        }
        ring
    });
    let member_idx = |m: &str| -> usize {
        peers
            .iter()
            .position(|(n, _)| n == m)
            .expect("ring members come from the peer list")
    };
    // Churn schedule: the last member leaves a third of the way in and
    // rejoins at two thirds. Requires at least two members and enough
    // events for the marks to be distinct interior points.
    let churn_marks = placement.and_then(|p| {
        let (p1, p2) = (sc.events.len() / 3, sc.events.len() * 2 / 3);
        (p.churn && n_daemons >= 2 && p1 >= 1 && p2 > p1).then_some((p1, p2))
    });

    // One client per member, vocabulary pre-announced in one frame so
    // the steady-state replay is ids-only.
    let timeout = Some(Duration::from_secs(10));
    let mut clients: Vec<Client> = Vec::with_capacity(n_daemons);
    for h in &handles {
        let mut c = Client::connect(h.addr(), "sim-driver", timeout)
            .map_err(|e| format!("connect to {}: {e}", h.name()))?;
        let names = sc
            .objects
            .iter()
            .map(|o| o.name.as_str())
            .chain(sc.ops.iter().map(String::as_str))
            .chain(sc.resources.iter().map(String::as_str))
            .chain(sc.servers.iter().map(String::as_str));
        c.sync_vocab(names)
            .map_err(|e| format!("vocab sync to {}: {e}", h.name()))?;
        clients.push(c);
    }

    // Driver-side topology and oracle state — mirrors run_episode_with.
    let mut env = CoalitionEnv::new();
    for s in &sc.servers {
        env.add_server(s);
        for res in &sc.resources {
            env.add_resource(s, res, sc.ops.iter().map(String::as_str));
        }
    }
    let mut oracle = ReferenceOracle::new(bug);
    let per_object: Vec<Vec<Access>> = (0..sc.objects.len())
        .map(|i| {
            sc.events
                .iter()
                .filter_map(|e| match e {
                    Event::Access { obj, access, .. } if *obj == i => Some(access.clone()),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let mut cursor = vec![0usize; sc.objects.len()];
    // The object's current custodian member, set by its first arrival.
    let mut custodian = vec![0usize; sc.objects.len()];
    let mut has_custodian = vec![false; sc.objects.len()];

    let mut dead: BTreeSet<String> = BTreeSet::new();
    let mut log = String::new();
    let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut decisions = 0usize;
    let mut divergence = None;

    use std::fmt::Write as _;
    // Same self-describing header as the in-process driver — logs must
    // stay byte-identical across transports.
    if let Some(p) = sc.profile {
        let _ = writeln!(log, "profile {}", p.name());
    }
    'events: for (step, event) in sc.events.iter().enumerate() {
        // Membership churn (placement mode): apply the scheduled change
        // and wait for the custody rebalance to settle — every claimed
        // object resident on its (possibly new) ring home — before
        // replaying further events. The drain moves only keys whose home
        // moved, and it is verdict-neutral, so the log never notices.
        if let (Some((p1, p2)), Some(r)) = (churn_marks, ring.as_mut()) {
            let change: Option<Vec<(String, SocketAddr)>> = if step == p1 {
                // Leave: evict the member homing the first claimed key, so
                // the churn provably drains at least one custody (object
                // names hash deterministically — a fixed choice of leaver
                // could own none of the scenario's few keys).
                let leaver = has_custodian
                    .iter()
                    .position(|c| *c)
                    .map(|i| member_idx(r.home_of(&sc.objects[i].name).expect("nonempty ring")))
                    .unwrap_or(n_daemons - 1);
                Some(
                    peers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != leaver)
                        .map(|(_, p)| p.clone())
                        .collect(),
                )
            } else if step == p2 {
                Some(peers.clone())
            } else {
                None
            };
            if let Some(members) = change {
                *r = Placement::new(members.iter().map(|(n, _)| n.clone()));
                for h in &handles {
                    h.set_members(&members);
                }
                let deadline = Instant::now() + Duration::from_secs(20);
                for (i, claimed) in has_custodian.iter().enumerate() {
                    if !*claimed {
                        continue;
                    }
                    let name = &sc.objects[i].name;
                    let home = member_idx(r.home_of(name).expect("nonempty ring"));
                    while handles[home].guard().custody_of(name) != Custody::Resident {
                        if Instant::now() > deadline {
                            return Err(format!("rebalance of {name} to d{home} never settled"));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        }
        match event {
            Event::Arrival {
                obj,
                server,
                time,
                dropped,
            } => {
                let name = &sc.objects[*obj].name;
                if *dropped {
                    let _ = writeln!(log, "[{time}] arrive {name} @ {server} DROPPED");
                } else {
                    // Placement mode pins custody to the ring home: every
                    // arrival lands there (no `from` — custody never
                    // follows arrivals), so the home accumulates the full
                    // arrival history like the in-process guard. The
                    // legacy replay names the previous custodian so a
                    // cross-member move pulls the handoff; the very first
                    // arrival has none.
                    let (d, from) = match ring.as_ref() {
                        Some(r) => (member_idx(r.home_of(name).expect("nonempty ring")), None),
                        None => (
                            d_of(server),
                            has_custodian[*obj].then(|| peers[custodian[*obj]].0.clone()),
                        ),
                    };
                    clients[d]
                        .arrive(name, *time, from.as_deref())
                        .map_err(|e| format!("arrival of {name} at d{d}: {e}"))?;
                    custodian[*obj] = d;
                    has_custodian[*obj] = true;
                    oracle.note_arrival(*obj, *time);
                    let _ = writeln!(log, "[{time}] arrive {name} @ {server}");
                }
            }
            Event::ServerDeath { server, time } => {
                dead.insert(server.clone());
                oracle.note_death(server);
                let _ = writeln!(log, "[{time}] server-death {server}");
            }
            Event::PolicyFlip { rev, time } => {
                // The wire half of the two-phase rollout: ship the
                // rendered revision to every member (phase 1), then flip
                // them all (phase 2). A member that fails either phase is
                // a transport failure here — the sim models complete
                // rollouts; partial ones are covered by the stacl-net
                // chaos tests.
                let policy = render_policy(&build_model(sc, *rev));
                if let Some(l) = ledger.as_deref_mut() {
                    l.record_policy_change(*rev as u64, fnv1a(policy.as_bytes()));
                }
                let classes: Vec<(String, f64, u8)> = sc
                    .classes
                    .iter()
                    .map(|c| (c.name.clone(), c.dur, scheme_to_u8(c.scheme)))
                    .collect();
                for (i, c) in clients.iter_mut().enumerate() {
                    c.policy_prepare(*rev as u64, &policy, &classes)
                        .map_err(|e| format!("prepare epoch {rev} at d{i}: {e}"))?;
                }
                for (i, c) in clients.iter_mut().enumerate() {
                    c.policy_activate(*rev as u64)
                        .map_err(|e| format!("activate epoch {rev} at d{i}: {e}"))?;
                }
                oracle.note_flip(*rev);
                let _ = writeln!(log, "[{time}] policy-flip epoch={rev}");
            }
            Event::Access { obj, access, time } => {
                let name = &sc.objects[*obj].name;
                let remaining = &per_object[*obj][cursor[*obj]..];
                cursor[*obj] += 1;
                let reachable = !dead.contains(&*access.server) && env.resolve(access).is_ok();
                // Placement mode routes straight to the ring home — any
                // other member would answer with a Redirect.
                let target = match ring.as_ref() {
                    Some(r) => member_idx(r.home_of(name).expect("nonempty ring")),
                    None => custodian[*obj],
                };
                let system_v = if reachable {
                    // An unreachable or crashed member resolves to the
                    // counted fail-safe denial inside either driver.
                    if pipelined {
                        clients[target]
                            .decide_stream_failsafe(
                                &[(name.as_str(), access, remaining, *time)],
                                PIPELINE_WINDOW,
                            )
                            .pop()
                            .expect("one verdict per submitted request")
                    } else {
                        clients[target].decide_failsafe(name, access, remaining, *time)
                    }
                } else {
                    stacl_obs::count(stacl_obs::Counter::VerdictDeniedUnknownTarget);
                    Verdict::denied(
                        DecisionKind::DeniedUnknownTarget,
                        format!("server {} is unreachable", access.server),
                    )
                };
                let oracle_v = oracle.decide(sc, *obj, access, remaining, *time);

                decisions += 1;
                *histogram.entry(system_v.kind.label()).or_insert(0) += 1;
                if decisions % LEDGER_SAMPLE == 1 {
                    if let Some(l) = ledger.as_deref_mut() {
                        l.record_verdict(*time, name, &access.to_string(), &system_v);
                    }
                }
                let _ = writeln!(
                    log,
                    "[{time}] access {name} {access} -> guard={} oracle={}",
                    system_v.kind.label(),
                    oracle_v.kind.label()
                );

                if system_v.kind != oracle_v.kind {
                    divergence = Some(Divergence {
                        step,
                        time: *time,
                        object: name.clone(),
                        access: access.clone(),
                        guard: system_v.kind,
                        oracle: oracle_v.kind,
                    });
                    let _ = writeln!(log, "DIVERGENCE at step {step}");
                    break 'events;
                }

                if system_v.is_granted() {
                    let skew = sc
                        .servers
                        .iter()
                        .position(|s| **s == *access.server)
                        .map(|i| sc.skews[i])
                        .unwrap_or(0.0);
                    // Replicate the proof onto every member, in event
                    // order, so all proof stores stay identical.
                    for (i, c) in clients.iter_mut().enumerate() {
                        c.issue_proof(name, access, *time + skew)
                            .map_err(|e| format!("proof replication to d{i}: {e}"))?;
                    }
                    oracle.note_grant(*obj, access.clone());
                }
            }
        }
    }

    drop(clients);
    for mut h in handles {
        h.shutdown();
    }

    Ok(Episode {
        seed: sc.seed,
        log,
        histogram,
        decisions,
        divergence,
    })
}

/// Generate the scenario for `seed` and replay it over a loopback
/// coalition of `n_daemons` members.
pub fn episode_for_seed_net(
    seed: u64,
    bug: Option<OracleBug>,
    n_daemons: usize,
) -> Result<Episode, String> {
    run_episode_net(&Scenario::generate(seed), bug, n_daemons)
}
