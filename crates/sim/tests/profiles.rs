//! Mobility-profile + attribute-constraint differential suite: every
//! named profile drives CIDR/cron attribute policies through the real
//! guard while the oracle re-evaluates the *attribute* semantics
//! naively (bitmask membership, per-second window expansion) —
//! independent of the abac lowering pass — so a lowering defect in
//! either constraint kind surfaces as a divergence.

use stacl_sim::{
    repro_profile, run_episode, run_episode_net, run_episode_with, shrink, OracleBug, Profile,
    Scenario, SweepReport,
};

/// Fast per-profile window for the tier-1 (non-ignored) tier.
const FAST_SEEDS: std::ops::Range<u64> = 0..12;
/// Full acceptance window, run by the CI `abac` job via `--ignored`.
const FULL_SEEDS: std::ops::Range<u64> = 0..64;

fn sweep(profile: Profile, seeds: std::ops::Range<u64>) -> SweepReport {
    let mut report = SweepReport::new();
    for seed in seeds {
        let sc = Scenario::generate_profile(seed, profile);
        let ep = run_episode(&sc, None);
        assert!(
            ep.divergence.is_none(),
            "{} seed {seed} diverged:\n{}\nrepro:\n{}",
            profile.name(),
            ep.log,
            repro_profile(seed, profile, None)
        );
        report.absorb(seed, &ep);
    }
    report
}

#[test]
fn guard_and_oracle_agree_on_every_profile_fast_window() {
    for profile in Profile::ALL {
        let report = sweep(profile, FAST_SEEDS);
        assert_eq!(report.episodes, FAST_SEEDS.end as usize);
        assert!(
            report.decisions > 20,
            "{}: too few decisions\n{}",
            profile.name(),
            report.render()
        );
    }
}

/// Full acceptance sweep (seeds 0..64 × 5 profiles). Ignored by default
/// so tier-1 stays fast; the CI `abac` job runs it with `--ignored`.
#[test]
#[ignore = "full profile acceptance sweep; run with --ignored"]
fn guard_and_oracle_agree_on_every_profile_seeds_0_64() {
    for profile in Profile::ALL {
        let report = sweep(profile, FULL_SEEDS);
        assert_eq!(report.episodes, FULL_SEEDS.end as usize);
    }
}

/// The profile windows must actually exercise both new constraint
/// kinds — grants *and* denials under CIDR and cron attributes — or the
/// differential check is hollow.
#[test]
fn profile_windows_exercise_attribute_constraints() {
    let (mut cidr, mut cron, mut both) = (false, false, false);
    let mut report = SweepReport::new();
    for profile in Profile::ALL {
        for seed in FAST_SEEDS {
            let sc = Scenario::generate_profile(seed, profile);
            for p in &sc.perms {
                cidr |= p.attr_cidr.is_some();
                cron |= p.attr_cron.is_some();
                both |= p.attr_cidr.is_some() && p.attr_cron.is_some();
            }
            report.absorb(seed, &run_episode(&sc, None));
        }
    }
    assert!(cidr, "no CIDR attribute rules in the fast windows");
    assert!(cron, "no cron attribute rules in the fast windows");
    assert!(both, "no mixed CIDR+cron permission in the fast windows");
    assert!(
        report.histogram.contains_key("granted"),
        "{}",
        report.render()
    );
    assert!(
        report.histogram.contains_key("denied-spatial"),
        "{}",
        report.render()
    );
    assert!(
        report.histogram.contains_key("denied-temporal"),
        "{}",
        report.render()
    );
}

/// Replays are self-describing: the episode log's first line names the
/// profile that generated the itinerary, and `Profile::parse` round-trips
/// every name.
#[test]
fn episode_logs_are_self_describing_and_names_round_trip() {
    for profile in Profile::ALL {
        let sc = Scenario::generate_profile(0, profile);
        let ep = run_episode(&sc, None);
        let first = ep.log.lines().next().unwrap_or_default();
        assert_eq!(
            first,
            format!("profile {}", profile.name()),
            "log header missing"
        );
        assert_eq!(Profile::parse(profile.name()), Ok(profile));
    }
    assert!(Profile::parse("no-such-profile").is_err());
    // Plain `generate` scenarios stay header-free: byte-stability for
    // every pre-profile seed.
    let ep = run_episode(&Scenario::generate(0), None);
    assert!(!ep.log.starts_with("profile "), "unexpected header");
}

/// The batched parallel driver must not change a byte of any
/// profile-generated episode.
#[test]
fn batched_driver_is_byte_identical_on_profiles() {
    for profile in Profile::ALL {
        for seed in FAST_SEEDS {
            let sc = Scenario::generate_profile(seed, profile);
            let seq = run_episode(&sc, None);
            let bat = run_episode_with(&sc, None, true);
            assert_eq!(seq.log, bat.log, "{} seed {seed}", profile.name());
            assert_eq!(
                seq.histogram,
                bat.histogram,
                "{} seed {seed}",
                profile.name()
            );
        }
    }
}

/// Wire replay of a profile episode (2 loopback daemons) is
/// byte-identical to the in-process driver — one seed per profile in the
/// fast tier.
#[test]
fn net_replay_is_byte_identical_on_profiles_smoke() {
    for profile in Profile::ALL {
        let sc = Scenario::generate_profile(3, profile);
        let local = run_episode(&sc, None);
        let net = run_episode_net(&sc, None, 2)
            .unwrap_or_else(|e| panic!("{} seed 3: net failed: {e}", profile.name()));
        assert_eq!(net.log, local.log, "{} seed 3", profile.name());
        assert_eq!(net.histogram, local.histogram, "{} seed 3", profile.name());
    }
}

/// Full wire sweep: every profile, seeds 0..16, 4 daemons. Ignored by
/// default; the CI `abac` job runs it with `--ignored`.
#[test]
#[ignore = "full profile wire sweep; run with --ignored"]
fn net_replay_is_byte_identical_on_profiles_seeds_0_16() {
    for profile in Profile::ALL {
        for seed in 0..16u64 {
            let sc = Scenario::generate_profile(seed, profile);
            let local = run_episode(&sc, None);
            let net = run_episode_net(&sc, None, 4)
                .unwrap_or_else(|e| panic!("{} seed {seed}: net failed: {e}", profile.name()));
            assert_eq!(net.log, local.log, "{} seed {seed}", profile.name());
        }
    }
}

/// Shrinking-witness self-test for a deliberately broken lowering: the
/// `cidr-widen` oracle bug widens every CIDR prefix by one bit in the
/// oracle's naive membership check, so the first scenario whose
/// widened range admits an otherwise-forbidden server diverges — and the
/// witness shrinks deterministically and replays from the seed alone.
#[test]
fn injected_cidr_lowering_bug_is_caught_shrunk_and_replayable() {
    let bug = Some(OracleBug::CidrWiden);
    let (profile, seed) = Profile::ALL
        .into_iter()
        .flat_map(|p| (0..256u64).map(move |s| (p, s)))
        .find(|&(p, s)| {
            run_episode(&Scenario::generate_profile(s, p), bug)
                .divergence
                .is_some()
        })
        .expect("cidr-widen must surface within 256 seeds of some profile");
    let sc = Scenario::generate_profile(seed, profile);

    // Caught.
    let ep = run_episode(&sc, bug);
    assert!(ep.log.contains("DIVERGENCE"));

    // Shrunk: still diverging, no larger than the original, and the
    // attribute-stripping passes keep at least one CIDR attribute (the
    // bug needs one to express).
    let (small, small_ep) = shrink(&sc, bug);
    assert!(small_ep.divergence.is_some());
    assert!(small.events.len() <= sc.events.len());
    assert!(
        small.perms.iter().any(|p| p.attr_cidr.is_some()),
        "shrinker stripped the attribute the divergence depends on:\n{small}"
    );

    // Deterministic.
    let (small2, _) = shrink(&sc, bug);
    assert_eq!(small.to_string(), small2.to_string());

    // Replayable from (seed, profile) alone.
    let dump = repro_profile(seed, profile, bug);
    assert!(dump.contains("DIVERGENCE"));
    assert!(dump.contains("shrunk witness"));
}
