//! Placement-routed differential validation: replaying an episode over a
//! coalition whose custody is pinned by the rendezvous ring — with
//! membership churn rebalancing keys mid-episode and proof compaction
//! bounding per-daemon proof memory — must still produce a verdict log
//! **byte-identical** to the in-process driver's, for every seed.
//!
//! Satellite (d) of the million-object issue: compaction never changes
//! verdicts (on/off byte-identical), and churn drains are verdict-neutral.

use stacl_obs::Counter;
use stacl_sim::{episode_for_seed, run_episode_net_placement, PlacementOpts, Scenario};

/// A compaction trigger low enough that tier-1 scenarios actually hit it
/// (scenarios issue tens of proofs per object class).
const COMPACT_EAGERLY: usize = 4;

fn assert_placement_identical(seed: u64, daemons: usize, opts: PlacementOpts) {
    let local = episode_for_seed(seed, None);
    let sc = Scenario::generate(seed);
    let net = run_episode_net_placement(&sc, None, daemons, None, opts)
        .unwrap_or_else(|e| panic!("seed {seed} ({opts:?}): placement transport failed: {e}"));
    assert!(
        net.divergence.is_none(),
        "seed {seed} ({opts:?}): placement transport diverged from the oracle: {:?}",
        net.divergence
    );
    assert_eq!(
        net.log, local.log,
        "seed {seed} ({opts:?}): placement wire log differs from the in-process log"
    );
    assert_eq!(
        net.histogram, local.histogram,
        "seed {seed} ({opts:?}): histograms differ"
    );
    assert_eq!(
        net.decisions, local.decisions,
        "seed {seed} ({opts:?}): decision counts differ"
    );
}

/// Ring-routed custody, no churn, no compaction: the placement layer in
/// isolation leaves every byte of the log unchanged.
#[test]
fn placement_four_daemons_match_in_process_seeds_0_8() {
    for seed in 0..8 {
        assert_placement_identical(
            seed,
            4,
            PlacementOpts {
                churn: false,
                compact_after: 0,
            },
        );
    }
}

/// The full satellite sweep at tier-1 scale: churn (last member leaves at
/// ⅓, rejoins at ⅔, custody draining through the rebalance pull each
/// time) plus eager proof compaction, still byte-identical. Also checks
/// that the sweep actually exercised both mechanisms: the rebalance and
/// compaction counters must have moved.
#[test]
fn placement_churn_and_compaction_match_in_process_seeds_0_16() {
    let rebalanced = stacl_obs::snapshot().counter(Counter::PlacementRebalance);
    let compacted = stacl_obs::snapshot().counter(Counter::ProofCompaction);
    for seed in 0..16 {
        assert_placement_identical(
            seed,
            4,
            PlacementOpts {
                churn: true,
                compact_after: COMPACT_EAGERLY,
            },
        );
    }
    let snap = stacl_obs::snapshot();
    assert!(
        snap.counter(Counter::PlacementRebalance) > rebalanced,
        "churn sweep never drained a key through the rebalance"
    );
    assert!(
        snap.counter(Counter::ProofCompaction) > compacted,
        "compaction sweep never sealed a proof prefix"
    );
}

/// Compaction on vs. off, same seed, same churn: the two replays must be
/// byte-identical to *each other* (and to the in-process log, which both
/// are compared against) — compaction is verdict-neutral by construction.
#[test]
fn compaction_never_changes_verdicts_seeds_0_8() {
    for seed in 0..8 {
        let sc = Scenario::generate(seed);
        let off = run_episode_net_placement(
            &sc,
            None,
            4,
            None,
            PlacementOpts {
                churn: true,
                compact_after: 0,
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: compaction-off replay failed: {e}"));
        let on = run_episode_net_placement(
            &sc,
            None,
            4,
            None,
            PlacementOpts {
                churn: true,
                compact_after: COMPACT_EAGERLY,
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: compaction-on replay failed: {e}"));
        assert_eq!(
            on.log, off.log,
            "seed {seed}: compaction changed the verdict log"
        );
        assert_eq!(
            on.histogram, off.histogram,
            "seed {seed}: histograms differ"
        );
        assert!(on.divergence.is_none() && off.divergence.is_none());
    }
}

/// Full acceptance range (seeds 0..64, 4 daemons, churn + compaction).
/// Ignored by default so tier-1 stays fast; CI's `net` job runs it with
/// `--ignored`.
#[test]
#[ignore = "full churn/compaction acceptance sweep; run with --ignored"]
fn placement_churn_and_compaction_match_in_process_seeds_0_64() {
    for seed in 0..64 {
        assert_placement_identical(
            seed,
            4,
            PlacementOpts {
                churn: true,
                compact_after: COMPACT_EAGERLY,
            },
        );
    }
}
