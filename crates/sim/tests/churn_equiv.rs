//! Epoch-churn differential validation: episodes with mid-episode policy
//! rollouts must (a) never diverge from the epoch-aware oracle, (b) stay
//! byte-identical across the sequential, batched and wire transports,
//! and (c) produce byte-identical, verifiable audit ledgers on every
//! transport.

use stacl_coalition::Ledger;
use stacl_sim::{run_episode_net_opts, run_episode_net_pipelined, run_episode_opts, Scenario};

const FLIPS: usize = 4;

#[test]
fn churn_episodes_agree_with_the_oracle() {
    for seed in 0..32u64 {
        let sc = Scenario::generate_churn(seed, FLIPS);
        let ep = run_episode_opts(&sc, None, false, None);
        assert!(
            ep.divergence.is_none(),
            "seed {seed} diverged under churn: {:?}\n{}",
            ep.divergence,
            ep.log
        );
        assert!(
            ep.log.contains("policy-flip epoch=4"),
            "seed {seed}: all {FLIPS} flips must land"
        );
    }
}

#[test]
fn batched_churn_is_byte_identical_to_sequential() {
    for seed in 0..16u64 {
        let sc = Scenario::generate_churn(seed, FLIPS);
        let seq = run_episode_opts(&sc, None, false, None);
        let bat = run_episode_opts(&sc, None, true, None);
        assert_eq!(seq.log, bat.log, "seed {seed}");
        assert_eq!(seq.histogram, bat.histogram, "seed {seed}");
    }
}

#[test]
fn churn_ledgers_verify_and_match_across_drivers() {
    for seed in 0..8u64 {
        let sc = Scenario::generate_churn(seed, FLIPS);
        let mut seq_ledger = Ledger::new();
        let seq = run_episode_opts(&sc, None, false, Some(&mut seq_ledger));
        assert!(seq.divergence.is_none(), "seed {seed}");
        let mut bat_ledger = Ledger::new();
        run_episode_opts(&sc, None, true, Some(&mut bat_ledger));

        // Boot policy + one entry per flip, plus sampled verdicts.
        assert!(
            seq_ledger.len() > FLIPS,
            "seed {seed}: ledger records the boot policy and every flip"
        );
        seq_ledger
            .verify()
            .unwrap_or_else(|e| panic!("seed {seed}: ledger verify failed: {e}"));
        assert_eq!(
            seq_ledger.render(),
            bat_ledger.render(),
            "seed {seed}: batched driver must journal identically"
        );

        // Round-trip through the textual chain format.
        let reparsed = Ledger::parse(&seq_ledger.render())
            .unwrap_or_else(|e| panic!("seed {seed}: ledger reparse failed: {e}"));
        reparsed.verify().expect("reparsed chain verifies");
    }
}

#[test]
fn net_churn_matches_in_process_seeds_0_8() {
    for seed in 0..8u64 {
        assert_churn_identical(seed, 2, false);
    }
}

/// Mid-episode policy rollouts interleaved with pipelined v2 decisions:
/// the correlated-frame transport must journal and log identically too.
#[test]
fn net_pipelined_churn_matches_in_process_seeds_0_8() {
    for seed in 0..8u64 {
        assert_churn_identical(seed, 2, true);
    }
}

/// Full acceptance range (seeds 0..64, 4 daemons, ≥4 flips/episode).
/// Ignored by default so tier-1 stays fast; CI's `net` job covers the
/// sweep via `stacl sim run --churn`.
#[test]
#[ignore = "full churn acceptance sweep; run with --ignored"]
fn net_churn_matches_in_process_seeds_0_64() {
    for seed in 0..64u64 {
        assert_churn_identical(seed, 4, false);
    }
}

/// Full pipelined churn acceptance range (seeds 0..64, 4 daemons).
#[test]
#[ignore = "full pipelined churn acceptance sweep; run with --ignored"]
fn net_pipelined_churn_matches_in_process_seeds_0_64() {
    for seed in 0..64u64 {
        assert_churn_identical(seed, 4, true);
    }
}

fn assert_churn_identical(seed: u64, daemons: usize, pipelined: bool) {
    let sc = Scenario::generate_churn(seed, FLIPS);
    let mut local_ledger = Ledger::new();
    let local = run_episode_opts(&sc, None, false, Some(&mut local_ledger));
    let mut net_ledger = Ledger::new();
    let net = if pipelined {
        run_episode_net_pipelined(&sc, None, daemons, Some(&mut net_ledger))
    } else {
        run_episode_net_opts(&sc, None, daemons, Some(&mut net_ledger))
    }
    .unwrap_or_else(|e| panic!("seed {seed}: net transport failed: {e}"));
    assert!(
        net.divergence.is_none(),
        "seed {seed}: net churn diverged from the oracle: {:?}",
        net.divergence
    );
    assert_eq!(
        net.log, local.log,
        "seed {seed}: wire churn log differs from the in-process log"
    );
    assert_eq!(
        net_ledger.render(),
        local_ledger.render(),
        "seed {seed}: audit ledgers differ across transports"
    );
    net_ledger.verify().expect("wire ledger verifies");
}
