//! Wire-level differential validation: replaying an episode's event
//! stream over loopback TCP daemons must produce a verdict log
//! **byte-identical** to the in-process driver's, for every seed —
//! whether decisions travel as synchronous v1 `Decide` calls or as
//! request-id-correlated pipelined v2 `Decide2` frames.

use stacl_coalition::Ledger;
use stacl_sim::{
    episode_for_seed, episode_for_seed_net, run_episode_net_pipelined, run_episode_opts, Scenario,
};

fn assert_identical(seed: u64, daemons: usize) {
    let local = episode_for_seed(seed, None);
    let net = episode_for_seed_net(seed, None, daemons)
        .unwrap_or_else(|e| panic!("seed {seed}: net transport failed: {e}"));
    assert!(
        net.divergence.is_none(),
        "seed {seed}: net transport diverged from the oracle: {:?}",
        net.divergence
    );
    assert_eq!(
        net.log, local.log,
        "seed {seed}: wire log differs from the in-process log"
    );
    assert_eq!(
        net.histogram, local.histogram,
        "seed {seed}: histograms differ"
    );
    assert_eq!(
        net.decisions, local.decisions,
        "seed {seed}: decision counts differ"
    );
}

/// Satellite (b): a single daemon hosting the whole coalition — the wire
/// protocol round-trips every decision without changing a byte.
#[test]
fn single_daemon_matches_in_process_seeds_0_16() {
    for seed in 0..16 {
        assert_identical(seed, 1);
    }
}

/// The tentpole acceptance shape at tier-1 scale: four members, custody
/// migrating between them via wire handoffs, still byte-identical.
#[test]
fn four_daemons_match_in_process_seeds_0_16() {
    for seed in 0..16 {
        assert_identical(seed, 4);
    }
}

/// Full acceptance range (seeds 0..64, 4 daemons). Ignored by default so
/// tier-1 stays fast; CI's `net` job covers 0..16 via `sim run`.
#[test]
#[ignore = "full acceptance sweep; run with --ignored"]
fn four_daemons_match_in_process_seeds_0_64() {
    for seed in 0..64 {
        assert_identical(seed, 4);
    }
}

/// Pipelined variant of [`assert_identical`]: the same episode driven
/// through the v2 correlated-frame transport, byte-comparing the verdict
/// log AND the hash-chained audit ledger against the in-process driver.
fn assert_identical_pipelined(seed: u64, daemons: usize) {
    let sc = Scenario::generate(seed);
    let mut local_ledger = Ledger::new();
    let local = run_episode_opts(&sc, None, false, Some(&mut local_ledger));
    let mut net_ledger = Ledger::new();
    let net = run_episode_net_pipelined(&sc, None, daemons, Some(&mut net_ledger))
        .unwrap_or_else(|e| panic!("seed {seed}: pipelined transport failed: {e}"));
    assert!(
        net.divergence.is_none(),
        "seed {seed}: pipelined transport diverged from the oracle: {:?}",
        net.divergence
    );
    assert_eq!(
        net.log, local.log,
        "seed {seed}: pipelined wire log differs from the in-process log"
    );
    assert_eq!(
        net.histogram, local.histogram,
        "seed {seed}: histograms differ under pipelining"
    );
    assert_eq!(
        net_ledger.render(),
        local_ledger.render(),
        "seed {seed}: audit ledgers differ under pipelining"
    );
    net_ledger.verify().expect("pipelined wire ledger verifies");
}

/// The pipelined v2 transport at tier-1 scale: four members, correlated
/// `Decide2` frames, logs and ledgers still byte-identical.
#[test]
fn pipelined_four_daemons_match_in_process_seeds_0_16() {
    for seed in 0..16 {
        assert_identical_pipelined(seed, 4);
    }
}

/// Full pipelined acceptance range (seeds 0..64, 4 daemons). Ignored by
/// default so tier-1 stays fast; CI's `net` job runs it with --ignored.
#[test]
#[ignore = "full pipelined acceptance sweep; run with --ignored"]
fn pipelined_four_daemons_match_in_process_seeds_0_64() {
    for seed in 0..64 {
        assert_identical_pipelined(seed, 4);
    }
}
