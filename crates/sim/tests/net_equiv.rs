//! Wire-level differential validation: replaying an episode's event
//! stream over loopback TCP daemons must produce a verdict log
//! **byte-identical** to the in-process driver's, for every seed.

use stacl_sim::{episode_for_seed, episode_for_seed_net};

fn assert_identical(seed: u64, daemons: usize) {
    let local = episode_for_seed(seed, None);
    let net = episode_for_seed_net(seed, None, daemons)
        .unwrap_or_else(|e| panic!("seed {seed}: net transport failed: {e}"));
    assert!(
        net.divergence.is_none(),
        "seed {seed}: net transport diverged from the oracle: {:?}",
        net.divergence
    );
    assert_eq!(
        net.log, local.log,
        "seed {seed}: wire log differs from the in-process log"
    );
    assert_eq!(
        net.histogram, local.histogram,
        "seed {seed}: histograms differ"
    );
    assert_eq!(
        net.decisions, local.decisions,
        "seed {seed}: decision counts differ"
    );
}

/// Satellite (b): a single daemon hosting the whole coalition — the wire
/// protocol round-trips every decision without changing a byte.
#[test]
fn single_daemon_matches_in_process_seeds_0_16() {
    for seed in 0..16 {
        assert_identical(seed, 1);
    }
}

/// The tentpole acceptance shape at tier-1 scale: four members, custody
/// migrating between them via wire handoffs, still byte-identical.
#[test]
fn four_daemons_match_in_process_seeds_0_16() {
    for seed in 0..16 {
        assert_identical(seed, 4);
    }
}

/// Full acceptance range (seeds 0..64, 4 daemons). Ignored by default so
/// tier-1 stays fast; CI's `net` job covers 0..16 via `sim run`.
#[test]
#[ignore = "full acceptance sweep; run with --ignored"]
fn four_daemons_match_in_process_seeds_0_64() {
    for seed in 0..64 {
        assert_identical(seed, 4);
    }
}
