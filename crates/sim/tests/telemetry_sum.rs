//! Telemetry conservation over the simulator: across sim seeds 0..64,
//! the verdict counters advance by exactly the number of decisions each
//! episode reports — per kind, not just in total. Every decision is
//! recorded once (by `CoordinatedGuard::decide` or, for pre-guard
//! topology denials, by the episode driver) and nothing else records
//! verdicts.
//!
//! The telemetry registry is process-global, so this file holds a SINGLE
//! `#[test]` and asserts on snapshot diffs.

use std::collections::BTreeMap;

use stacl_obs::{snapshot, Counter};
use stacl_sim::episode_for_seed;

#[test]
fn verdict_counters_sum_to_total_decisions_over_seeds() {
    assert!(stacl_obs::enabled(), "telemetry must default to on");
    let base = snapshot();
    let mut total = 0u64;
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for seed in 0..64 {
        let ep = episode_for_seed(seed, None);
        assert!(ep.divergence.is_none(), "seed {seed} diverged");
        total += ep.decisions as u64;
        for (k, n) in &ep.histogram {
            *by_kind.entry(k).or_insert(0) += *n as u64;
        }
    }
    let d = snapshot().diff(&base);
    assert!(total > 0, "the sweep must exercise the guard");
    assert_eq!(
        d.verdict_total(),
        total,
        "verdict counters must sum to total decisions: {d:?}"
    );
    for (counter, label) in [
        (Counter::VerdictGranted, "granted"),
        (Counter::VerdictDeniedNoPermission, "denied-no-permission"),
        (Counter::VerdictDeniedSpatial, "denied-spatial"),
        (Counter::VerdictDeniedTemporal, "denied-temporal"),
        (Counter::VerdictDeniedUnknownTarget, "denied-unknown-target"),
    ] {
        assert_eq!(
            d.counter(counter),
            by_kind.get(label).copied().unwrap_or(0),
            "counter {label} must match the episode histograms"
        );
    }
    // Every fast-path consultation resolves to exactly one of: hit, cold
    // start, or a §8 decline — so spatial cursor activity is internally
    // conserved as well (it can only be observed where it happened).
    let consultations = d.counter(Counter::CursorFastPathHit)
        + d.counter(Counter::CursorColdStart)
        + d.decline_total();
    assert!(
        consultations > 0,
        "64 seeds must exercise the cursor fast path: {d:?}"
    );
}
