//! Tier-1 smoke suite: fixed seeds, deterministic, fast (<5 s).

use stacl_sim::{
    episode_for_seed, episode_for_seed_batched, repro, shrink, Event, OracleBug, Scenario,
    SweepReport,
};

/// The fixed seed window the smoke suite sweeps.
const SMOKE_SEEDS: std::ops::Range<u64> = 0..64;

#[test]
fn guard_and_oracle_agree_on_smoke_seeds() {
    let mut report = SweepReport::new();
    for seed in SMOKE_SEEDS {
        let ep = episode_for_seed(seed, None);
        assert!(
            ep.divergence.is_none(),
            "seed {seed} diverged:\n{}\nrepro:\n{}",
            ep.log,
            repro(seed, None)
        );
        report.absorb(seed, &ep);
    }
    assert_eq!(report.episodes, 64);
    assert!(report.decisions > 100, "{}", report.render());
}

#[test]
fn same_seed_produces_byte_identical_episode_logs() {
    for seed in [0u64, 7, 42, 1234, 0xfeed] {
        let a = episode_for_seed(seed, None);
        let b = episode_for_seed(seed, None);
        assert_eq!(a.log, b.log, "seed {seed}");
        assert_eq!(a.histogram, b.histogram, "seed {seed}");
    }
}

#[test]
fn batched_driver_is_byte_identical_to_sequential() {
    // The batched parallel driver must not change a single byte of any
    // episode log (including histograms and divergence behaviour): same
    // verdicts, same order, same proof timestamps. The window is wider
    // than SMOKE_SEEDS: the constraint-cache/table-version interaction
    // this locks down (one rbac-level cache serving per-worker tables)
    // first surfaced at seed 76, outside the 0..64 window.
    for seed in 0..256u64 {
        let seq = episode_for_seed(seed, None);
        let bat = episode_for_seed_batched(seed, None);
        assert_eq!(seq.log, bat.log, "seed {seed}");
        assert_eq!(seq.histogram, bat.histogram, "seed {seed}");
        assert_eq!(seq.decisions, bat.decisions, "seed {seed}");
    }
}

#[test]
fn smoke_window_exercises_the_decision_space() {
    let mut report = SweepReport::new();
    for seed in SMOKE_SEEDS {
        report.absorb(seed, &episode_for_seed(seed, None));
    }
    // The generator must produce grants and at least two distinct denial
    // kinds within the fixed window, or the differential check is hollow.
    assert!(
        report.histogram.contains_key("granted"),
        "{}",
        report.render()
    );
    let denial_kinds = report
        .histogram
        .keys()
        .filter(|k| k.starts_with("denied"))
        .count();
    assert!(denial_kinds >= 2, "{}", report.render());
}

#[test]
fn smoke_window_exercises_fault_injection() {
    let (mut dropped, mut deaths, mut skews, mut reactive) = (false, false, false, false);
    for seed in SMOKE_SEEDS {
        let sc = Scenario::generate(seed);
        dropped |= sc
            .events
            .iter()
            .any(|e| matches!(e, Event::Arrival { dropped: true, .. }));
        deaths |= sc
            .events
            .iter()
            .any(|e| matches!(e, Event::ServerDeath { .. }));
        skews |= sc.skews.iter().any(|&k| k != 0.0);
        reactive |= sc.mode == stacl_naplet::guard::EnforcementMode::Reactive;
    }
    assert!(dropped, "no dropped arrivals generated in the smoke window");
    assert!(deaths, "no server deaths generated in the smoke window");
    assert!(skews, "no clock skew generated in the smoke window");
    assert!(reactive, "no reactive-mode scenarios in the smoke window");
}

/// Find the first seed whose episode diverges under an injected bug.
fn first_divergent_seed(bug: OracleBug) -> u64 {
    (0..512u64)
        .find(|&seed| episode_for_seed(seed, Some(bug)).divergence.is_some())
        .expect("an injected oracle defect must surface within 512 seeds")
}

#[test]
fn injected_oracle_bug_is_caught_shrunk_and_replayable() {
    for bug in [OracleBug::CardMaxOffByOne, OracleBug::IgnoreRefills] {
        let seed = first_divergent_seed(bug);
        let sc = Scenario::generate(seed);

        // Caught.
        let ep = episode_for_seed(seed, Some(bug));
        assert!(ep.divergence.is_some(), "{bug:?}");
        assert!(ep.log.contains("DIVERGENCE"), "{bug:?}");

        // Shrunk: still diverging, no larger than the original.
        let (small, small_ep) = shrink(&sc, Some(bug));
        assert!(small_ep.divergence.is_some(), "{bug:?}");
        assert!(small.events.len() <= sc.events.len(), "{bug:?}");

        // Shrinking is deterministic.
        let (small2, _) = shrink(&sc, Some(bug));
        assert_eq!(small.to_string(), small2.to_string(), "{bug:?}");

        // Replayable from nothing but the seed.
        let dump = repro(seed, Some(bug));
        assert!(dump.contains("DIVERGENCE"), "{bug:?}");
        assert!(dump.contains("shrunk witness"), "{bug:?}");
    }
}
