//! Property tests for the automata machinery: the DFA operations must
//! satisfy the boolean-algebra and language-theory laws the constraint
//! checker relies on. Driven by the in-tree seeded `stacl_ids::prop`
//! runner.

use stacl_ids::prop::forall;
use stacl_ids::rng::SplitMix64;

use stacl_trace::dfa::{advance, ProductMode};
use stacl_trace::enumerate::enumerate_traces;
use stacl_trace::symbol::AccessId;
use stacl_trace::{Dfa, Regex, Trace};

fn gen_regex(rng: &mut SplitMix64, n_syms: u32, depth: u32) -> Regex {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0u32..4) {
            0 | 1 => Regex::Sym(AccessId(rng.gen_range(0..n_syms))),
            2 => Regex::Eps,
            _ => Regex::Empty,
        };
    }
    match rng.gen_range(0u32..4) {
        0 => Regex::alt(
            gen_regex(rng, n_syms, depth - 1),
            gen_regex(rng, n_syms, depth - 1),
        ),
        1 => Regex::cat(
            gen_regex(rng, n_syms, depth - 1),
            gen_regex(rng, n_syms, depth - 1),
        ),
        2 => Regex::shuffle(
            gen_regex(rng, n_syms, depth - 1),
            gen_regex(rng, n_syms, depth - 1),
        ),
        _ => Regex::star(gen_regex(rng, n_syms, depth - 1)),
    }
}

fn gen_trace(rng: &mut SplitMix64, n_syms: u32) -> Trace {
    let len = rng.gen_range(0usize..8);
    Trace::from_ids((0..len).map(|_| AccessId(rng.gen_range(0..n_syms))))
}

/// Double complement is the identity language.
#[test]
fn complement_involution() {
    forall("complement_involution", 0xd0a1, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let t = gen_trace(rng, 3);
        let d = Dfa::from_regex(&re);
        let cc = d.complement().complement();
        assert_eq!(d.accepts(&t), cc.accepts(&t));
    });
}

/// Minimisation preserves the language.
#[test]
fn minimize_preserves_language() {
    forall("minimize_preserves_language", 0xd0a2, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let t = gen_trace(rng, 3);
        let d = Dfa::from_regex(&re);
        let m = d.minimize();
        assert_eq!(d.accepts(&t), m.accepts(&t));
        assert!(m.num_states() <= d.num_states());
        // Minimisation is idempotent on state count.
        assert_eq!(m.minimize().num_states(), m.num_states());
    });
}

/// Product modes implement their boolean tables pointwise.
#[test]
fn product_modes_are_pointwise() {
    forall("product_modes_are_pointwise", 0xd0a3, 128, |rng| {
        let a = gen_regex(rng, 3, 3);
        let b = gen_regex(rng, 3, 3);
        let t = gen_trace(rng, 3);
        let union = a.alphabet().union(&b.alphabet());
        // Reindex over a COMMON superset alphabet covering the trace too.
        let mut full = union;
        for i in 0..3 {
            full.insert(AccessId(i));
        }
        let da = Dfa::from_regex_with(&a, full.clone());
        let db = Dfa::from_regex_with(&b, full.clone());
        let (ra, rb) = (da.accepts(&t), db.accepts(&t));
        assert_eq!(da.product(&db, ProductMode::And).accepts(&t), ra && rb);
        assert_eq!(da.product(&db, ProductMode::Or).accepts(&t), ra || rb);
        assert_eq!(da.product(&db, ProductMode::Diff).accepts(&t), ra && !rb);
        assert_eq!(da.product(&db, ProductMode::Xor).accepts(&t), ra != rb);
    });
}

/// `equivalent` is reflexive and agrees with itself under syntactic
/// rebuilds; `subset_of` is reflexive and antisymmetric up to
/// equivalence.
#[test]
fn equivalence_laws() {
    forall("equivalence_laws", 0xd0a4, 128, |rng| {
        let a = gen_regex(rng, 3, 3);
        let b = gen_regex(rng, 3, 3);
        let da = Dfa::from_regex(&a);
        let db = Dfa::from_regex(&b);
        assert!(da.equivalent(&da));
        assert!(da.subset_of(&da));
        if da.subset_of(&db) && db.subset_of(&da) {
            assert!(da.equivalent(&db));
        }
        if da.equivalent(&db) {
            assert!(da.subset_of(&db) && db.subset_of(&da));
        }
        // Witness soundness: a non-subset yields a trace in a \ b.
        if let Some(w) = da.witness_not_subset(&db) {
            assert!(da.accepts(&w));
            assert!(!db.accepts(&w));
            assert!(!da.subset_of(&db));
        } else {
            assert!(da.subset_of(&db));
        }
    });
}

/// `advance` computes the residual (Brzozowski derivative).
#[test]
fn advance_is_derivative() {
    forall("advance_is_derivative", 0xd0a5, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let prefix = gen_trace(rng, 3);
        let rest = gen_trace(rng, 3);
        // Build over the full 3-symbol alphabet so the prefix always maps.
        let mut al = re.alphabet();
        for i in 0..3 {
            al.insert(AccessId(i));
        }
        let d = Dfa::from_regex_with(&re, al);
        let residual = advance(&d, &prefix).expect("alphabet covers prefix");
        assert_eq!(residual.accepts(&rest), d.accepts(&prefix.concat(&rest)));
    });
}

/// Shuffle is commutative and associative at the language level.
#[test]
fn shuffle_laws() {
    forall("shuffle_laws", 0xd0a6, 128, |rng| {
        let a = gen_regex(rng, 2, 2);
        let b = gen_regex(rng, 2, 2);
        let c = gen_regex(rng, 2, 2);
        let ab = Regex::shuffle(a.clone(), b.clone());
        let ba = Regex::shuffle(b.clone(), a.clone());
        assert!(Dfa::equivalent_regexes(&ab, &ba));
        let ab_c = Regex::shuffle(ab, c.clone());
        let a_bc = Regex::shuffle(a, Regex::shuffle(b, c));
        assert!(Dfa::equivalent_regexes(&ab_c, &a_bc));
    });
}

/// Union and concatenation distribute as the trace-model rules say:
/// (a ∪ b)·c ≡ a·c ∪ b·c.
#[test]
fn cat_distributes_over_alt() {
    forall("cat_distributes_over_alt", 0xd0a7, 128, |rng| {
        let a = gen_regex(rng, 2, 2);
        let b = gen_regex(rng, 2, 2);
        let c = gen_regex(rng, 2, 2);
        let lhs = Regex::cat(Regex::alt(a.clone(), b.clone()), c.clone());
        let rhs = Regex::alt(Regex::cat(a, c.clone()), Regex::cat(b, c));
        assert!(Dfa::equivalent_regexes(&lhs, &rhs));
    });
}

/// Star laws: (m*)* ≡ m*, and m* ≡ ε ∪ m·m*.
#[test]
fn star_unrolling() {
    forall("star_unrolling", 0xd0a8, 128, |rng| {
        let m = gen_regex(rng, 2, 2);
        let star = Regex::star(m.clone());
        let star_star = Regex::Star(Box::new(star.clone()));
        assert!(Dfa::equivalent_regexes(&star, &star_star));
        let unrolled = Regex::alt(Regex::Eps, Regex::cat(m, star.clone()));
        assert!(Dfa::equivalent_regexes(&star, &unrolled));
    });
}

/// State elimination inverts compilation: extracting a regex from any
/// DFA yields the same language.
#[test]
fn extraction_roundtrip() {
    forall("extraction_roundtrip", 0xd0a9, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let d = Dfa::from_regex(&re);
        let extracted = stacl_trace::dfa_to_regex(&d);
        assert!(
            Dfa::equivalent_regexes(&re, &extracted),
            "extraction of {re} gave {extracted}"
        );
    });
}

/// Enumeration agrees with acceptance: everything enumerated is
/// accepted, and every accepted short trace is enumerated.
#[test]
fn enumeration_is_sound_and_complete() {
    forall("enumeration_is_sound_and_complete", 0xd0aa, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let d = Dfa::from_regex(&re);
        let listed = enumerate_traces(&d, 4, 100_000);
        for t in &listed {
            assert!(d.accepts(t), "enumerated {t} not accepted");
        }
        // Completeness via counting.
        let counts = stacl_trace::enumerate::count_traces_by_length(&d, 4);
        let total: u64 = counts.iter().sum();
        assert_eq!(listed.len() as u64, total);
    });
}

/// `minimize` output is *minimal*: no two states are language-equivalent.
/// Checked by Moore refinement to a fixpoint — if the automaton were not
/// minimal, two states would share acceptance and successor classes at
/// every refinement round and the class count would fall short of the
/// state count. Also pins that canonicalization keeps minimality and is
/// deterministic across two independent builds of the same language.
#[test]
fn minimize_output_is_minimal() {
    forall("minimize_output_is_minimal", 0xd0ab, 128, |rng| {
        let re = gen_regex(rng, 3, 3);
        let d = Dfa::from_regex(&re).minimize();
        let n = d.num_states();
        let k = d.alphabet_len();
        // Moore refinement: classes start as acceptance, refine by
        // (own class, successor-class vector) signatures. Each round
        // strictly refines the partition or reaches the fixpoint, so the
        // class count is stationary exactly at the fixpoint.
        let mut class: Vec<u32> = d.accept.iter().map(|&a| u32::from(a)).collect();
        let mut distinct = class.iter().collect::<std::collections::HashSet<_>>().len();
        loop {
            let mut sig_index: std::collections::HashMap<(u32, Vec<u32>), u32> =
                std::collections::HashMap::new();
            let mut next_class = vec![0u32; n];
            for s in 0..n as u32 {
                let succ: Vec<u32> = (0..k as u32)
                    .map(|sym| class[d.next(s, sym) as usize])
                    .collect();
                let fresh = sig_index.len() as u32;
                let id = *sig_index.entry((class[s as usize], succ)).or_insert(fresh);
                next_class[s as usize] = id;
            }
            let next_distinct = sig_index.len();
            class = next_class;
            if next_distinct == distinct {
                break;
            }
            distinct = next_distinct;
        }
        assert_eq!(
            distinct, n,
            "minimize left language-equivalent states: {distinct} classes over {n} states ({re})"
        );
        // Canonical forms of independently built equal languages coincide.
        let c1 = d.canonicalize();
        let c2 = Dfa::from_regex(&re).minimize().canonicalize();
        assert!(c1.same_structure(&c2), "canonical form unstable for {re}");
        assert_eq!(c1.structural_hash(), c2.structural_hash());
    });
}
