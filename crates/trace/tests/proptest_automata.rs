//! Property tests for the automata machinery: the DFA operations must
//! satisfy the boolean-algebra and language-theory laws the constraint
//! checker relies on.

use proptest::prelude::*;

use stacl_trace::dfa::{advance, ProductMode};
use stacl_trace::enumerate::enumerate_traces;
use stacl_trace::symbol::AccessId;
use stacl_trace::{Dfa, Regex, Trace};

fn arb_regex(n_syms: u32, depth: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..n_syms).prop_map(|i| Regex::Sym(AccessId(i))),
        Just(Regex::Eps),
        Just(Regex::Empty),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::cat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::shuffle(a, b)),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_trace(n_syms: u32) -> impl Strategy<Value = Trace> {
    prop::collection::vec(0..n_syms, 0..8)
        .prop_map(|v| Trace::from_ids(v.into_iter().map(AccessId)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Double complement is the identity language.
    #[test]
    fn complement_involution(re in arb_regex(3, 3), t in arb_trace(3)) {
        let d = Dfa::from_regex(&re);
        let cc = d.complement().complement();
        prop_assert_eq!(d.accepts(&t), cc.accepts(&t));
    }

    /// Minimisation preserves the language.
    #[test]
    fn minimize_preserves_language(re in arb_regex(3, 3), t in arb_trace(3)) {
        let d = Dfa::from_regex(&re);
        let m = d.minimize();
        prop_assert_eq!(d.accepts(&t), m.accepts(&t));
        prop_assert!(m.num_states() <= d.num_states());
        // Minimisation is idempotent on state count.
        prop_assert_eq!(m.minimize().num_states(), m.num_states());
    }

    /// Product modes implement their boolean tables pointwise.
    #[test]
    fn product_modes_are_pointwise(
        a in arb_regex(3, 3),
        b in arb_regex(3, 3),
        t in arb_trace(3),
    ) {
        let union = a.alphabet().union(&b.alphabet());
        // Reindex over a COMMON superset alphabet covering the trace too.
        let mut full = union;
        for i in 0..3 {
            full.insert(AccessId(i));
        }
        let da = Dfa::from_regex_with(&a, full.clone());
        let db = Dfa::from_regex_with(&b, full.clone());
        let (ra, rb) = (da.accepts(&t), db.accepts(&t));
        prop_assert_eq!(da.product(&db, ProductMode::And).accepts(&t), ra && rb);
        prop_assert_eq!(da.product(&db, ProductMode::Or).accepts(&t), ra || rb);
        prop_assert_eq!(da.product(&db, ProductMode::Diff).accepts(&t), ra && !rb);
        prop_assert_eq!(da.product(&db, ProductMode::Xor).accepts(&t), ra != rb);
    }

    /// `equivalent` is reflexive and agrees with itself under syntactic
    /// rebuilds; `subset_of` is reflexive and antisymmetric up to
    /// equivalence.
    #[test]
    fn equivalence_laws(a in arb_regex(3, 3), b in arb_regex(3, 3)) {
        let da = Dfa::from_regex(&a);
        let db = Dfa::from_regex(&b);
        prop_assert!(da.equivalent(&da));
        prop_assert!(da.subset_of(&da));
        if da.subset_of(&db) && db.subset_of(&da) {
            prop_assert!(da.equivalent(&db));
        }
        if da.equivalent(&db) {
            prop_assert!(da.subset_of(&db) && db.subset_of(&da));
        }
        // Witness soundness: a non-subset yields a trace in a \ b.
        if let Some(w) = da.witness_not_subset(&db) {
            prop_assert!(da.accepts(&w));
            prop_assert!(!db.accepts(&w));
            prop_assert!(!da.subset_of(&db));
        } else {
            prop_assert!(da.subset_of(&db));
        }
    }

    /// `advance` computes the residual (Brzozowski derivative).
    #[test]
    fn advance_is_derivative(
        re in arb_regex(3, 3),
        prefix in arb_trace(3),
        rest in arb_trace(3),
    ) {
        // Build over the full 3-symbol alphabet so the prefix always maps.
        let mut al = re.alphabet();
        for i in 0..3 {
            al.insert(AccessId(i));
        }
        let d = Dfa::from_regex_with(&re, al);
        let residual = advance(&d, &prefix).expect("alphabet covers prefix");
        prop_assert_eq!(
            residual.accepts(&rest),
            d.accepts(&prefix.concat(&rest))
        );
    }

    /// Shuffle is commutative and associative at the language level.
    #[test]
    fn shuffle_laws(
        a in arb_regex(2, 2),
        b in arb_regex(2, 2),
        c in arb_regex(2, 2),
    ) {
        let ab = Regex::shuffle(a.clone(), b.clone());
        let ba = Regex::shuffle(b.clone(), a.clone());
        prop_assert!(Dfa::equivalent_regexes(&ab, &ba));
        let ab_c = Regex::shuffle(ab, c.clone());
        let a_bc = Regex::shuffle(a, Regex::shuffle(b, c));
        prop_assert!(Dfa::equivalent_regexes(&ab_c, &a_bc));
    }

    /// Union and concatenation distribute as the trace-model rules say:
    /// (a ∪ b)·c ≡ a·c ∪ b·c.
    #[test]
    fn cat_distributes_over_alt(
        a in arb_regex(2, 2),
        b in arb_regex(2, 2),
        c in arb_regex(2, 2),
    ) {
        let lhs = Regex::cat(Regex::alt(a.clone(), b.clone()), c.clone());
        let rhs = Regex::alt(Regex::cat(a, c.clone()), Regex::cat(b, c));
        prop_assert!(Dfa::equivalent_regexes(&lhs, &rhs));
    }

    /// Star laws: (m*)* ≡ m*, and m* ≡ ε ∪ m·m*.
    #[test]
    fn star_unrolling(m in arb_regex(2, 2)) {
        let star = Regex::star(m.clone());
        let star_star = Regex::Star(Box::new(star.clone()));
        prop_assert!(Dfa::equivalent_regexes(&star, &star_star));
        let unrolled = Regex::alt(Regex::Eps, Regex::cat(m, star.clone()));
        prop_assert!(Dfa::equivalent_regexes(&star, &unrolled));
    }

    /// State elimination inverts compilation: extracting a regex from any
    /// DFA yields the same language.
    #[test]
    fn extraction_roundtrip(re in arb_regex(3, 3)) {
        let d = Dfa::from_regex(&re);
        let extracted = stacl_trace::dfa_to_regex(&d);
        prop_assert!(
            Dfa::equivalent_regexes(&re, &extracted),
            "extraction of {} gave {}", re, extracted
        );
    }

    /// Enumeration agrees with acceptance: everything enumerated is
    /// accepted, and every accepted short trace is enumerated.
    #[test]
    fn enumeration_is_sound_and_complete(re in arb_regex(3, 3)) {
        let d = Dfa::from_regex(&re);
        let listed = enumerate_traces(&d, 4, 100_000);
        for t in &listed {
            prop_assert!(d.accepts(t), "enumerated {t} not accepted");
        }
        // Completeness via counting.
        let counts = stacl_trace::enumerate::count_traces_by_length(&d, 4);
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(listed.len() as u64, total);
    }
}
