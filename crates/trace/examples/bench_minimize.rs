//! Minimisation microbench: Hopcroft over counting-style automata at
//! growing state counts and alphabet widths — the shapes the constraint
//! compiler produces. Exercises the CSR reverse-edge layout and the
//! smaller-half worklist seeding.
//!
//! Run with `cargo run --release -p stacl-trace --example bench_minimize`.

use std::time::Instant;

use stacl_trace::dfa::Dfa;
use stacl_trace::symbol::{AccessId, Alphabet};

/// A saturating counter DFA: `n_states` counter values over `k` symbols,
/// of which the first `matching` bump the counter — structurally the
/// compiled `count(min, max, σ)` automaton before minimisation.
fn counting_dfa(n_states: usize, k: usize, matching: usize) -> Dfa {
    let alphabet = Alphabet::from_ids((0..k as u32).map(AccessId));
    let mut trans = vec![0u32; n_states * k];
    for state in 0..n_states {
        for sym in 0..k {
            let next = if sym < matching {
                (state + 1).min(n_states - 1)
            } else {
                state
            };
            trans[state * k + sym] = next as u32;
        }
    }
    let accept: Vec<bool> = (0..n_states).map(|c| c < n_states - 1).collect();
    Dfa::from_parts(alphabet, trans, 0, accept)
}

fn main() {
    println!("states  symbols  min_states  best_of_5_us");
    for (n, k) in [
        (130, 8),
        (130, 512),
        (130, 4096),
        (1026, 8),
        (1026, 512),
        (1026, 4096),
    ] {
        let d = counting_dfa(n, k, 2);
        let mut best = u128::MAX;
        let mut states = 0;
        for _ in 0..5 {
            let t0 = Instant::now();
            let m = d.minimize();
            best = best.min(t0.elapsed().as_micros());
            states = m.num_states();
        }
        println!("{n:>6}  {k:>7}  {states:>10}  {best:>12}");
    }
}
