//! Concrete traces: finite sequences of accesses.
//!
//! A trace records, in order, the shared-resource accesses a mobile object
//! performed during one execution (§3.2). Traces here hold interned
//! [`AccessId`]s; use an [`AccessTable`](crate::symbol::AccessTable) to
//! render them.

use std::fmt;

use crate::symbol::{AccessId, AccessTable};

/// A finite sequence of accesses.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct Trace(pub Vec<AccessId>);

impl Trace {
    /// The empty trace ε.
    pub fn empty() -> Self {
        Trace(Vec::new())
    }

    /// A single-access trace `<a>`.
    pub fn single(a: AccessId) -> Self {
        Trace(vec![a])
    }

    /// Build from an iterator of ids.
    pub fn from_ids(ids: impl IntoIterator<Item = AccessId>) -> Self {
        Trace(ids.into_iter().collect())
    }

    /// Length of the trace.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for ε.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The first access, if any (the paper's `head`).
    pub fn head(&self) -> Option<AccessId> {
        self.0.first().copied()
    }

    /// Everything after the first access (the paper's `tail`).
    pub fn tail(&self) -> Trace {
        if self.0.is_empty() {
            Trace::empty()
        } else {
            Trace(self.0[1..].to_vec())
        }
    }

    /// Concatenation `t ∘ v`.
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Trace(v)
    }

    /// True when access `a` occurs anywhere in the trace (the `a ∈ t` of
    /// Definition 3.6).
    pub fn contains(&self, a: AccessId) -> bool {
        self.0.contains(&a)
    }

    /// Number of occurrences of accesses satisfying `pred` — the basis of
    /// the `#(m, n, σ(A))` cardinality constraints.
    pub fn count_matching(&self, mut pred: impl FnMut(AccessId) -> bool) -> usize {
        self.0.iter().filter(|&&a| pred(a)).count()
    }

    /// The position of the first occurrence of `a`.
    pub fn position(&self, a: AccessId) -> Option<usize> {
        self.0.iter().position(|&x| x == a)
    }

    /// All interleavings of `self` and `other` (the `t # v` operator of
    /// §3.2). The result has `C(n+m, n)` traces — exponential in the
    /// lengths — so this is a test oracle, not a production path; symbolic
    /// work uses the shuffle product on automata instead.
    pub fn interleavings(&self, other: &Trace) -> Vec<Trace> {
        fn go(t: &[AccessId], v: &[AccessId], prefix: &mut Vec<AccessId>, out: &mut Vec<Trace>) {
            match (t.first(), v.first()) {
                (None, None) => out.push(Trace(prefix.clone())),
                (Some(&h), None) => {
                    prefix.push(h);
                    go(&t[1..], v, prefix, out);
                    prefix.pop();
                }
                (None, Some(&h)) => {
                    prefix.push(h);
                    go(t, &v[1..], prefix, out);
                    prefix.pop();
                }
                (Some(&ht), Some(&hv)) => {
                    prefix.push(ht);
                    go(&t[1..], v, prefix, out);
                    prefix.pop();
                    prefix.push(hv);
                    go(t, &v[1..], prefix, out);
                    prefix.pop();
                }
            }
        }
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(self.len() + other.len());
        go(&self.0, &other.0, &mut prefix, &mut out);
        // Interleaving two traces that share symbols can produce duplicate
        // sequences via different merge paths; dedupe to get a set.
        out.sort();
        out.dedup();
        out
    }

    /// Render the trace using `table` to resolve accesses.
    pub fn display<'a>(&'a self, table: &'a AccessTable) -> TraceDisplay<'a> {
        TraceDisplay { trace: self, table }
    }
}

impl FromIterator<AccessId> for Trace {
    fn from_iter<T: IntoIterator<Item = AccessId>>(iter: T) -> Self {
        Trace(iter.into_iter().collect())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ">")
    }
}

/// Helper returned by [`Trace::display`] that renders accesses in full.
pub struct TraceDisplay<'a> {
    trace: &'a Trace,
    table: &'a AccessTable,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, &a) in self.trace.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.table.resolve(a))?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacl_sral::Access;

    fn ids(v: &[u32]) -> Trace {
        Trace::from_ids(v.iter().map(|&i| AccessId(i)))
    }

    #[test]
    fn head_tail() {
        let t = ids(&[1, 2, 3]);
        assert_eq!(t.head(), Some(AccessId(1)));
        assert_eq!(t.tail(), ids(&[2, 3]));
        assert_eq!(Trace::empty().head(), None);
        assert_eq!(Trace::empty().tail(), Trace::empty());
    }

    #[test]
    fn concat() {
        assert_eq!(ids(&[1]).concat(&ids(&[2, 3])), ids(&[1, 2, 3]));
        assert_eq!(Trace::empty().concat(&ids(&[1])), ids(&[1]));
    }

    #[test]
    fn contains_and_count() {
        let t = ids(&[1, 2, 1, 3]);
        assert!(t.contains(AccessId(1)));
        assert!(!t.contains(AccessId(9)));
        assert_eq!(t.count_matching(|a| a == AccessId(1)), 2);
        assert_eq!(t.position(AccessId(3)), Some(3));
    }

    #[test]
    fn interleavings_counts() {
        // |t|=2, |v|=1 with distinct symbols -> C(3,1) = 3 interleavings.
        let t = ids(&[1, 2]);
        let v = ids(&[3]);
        let inter = t.interleavings(&v);
        assert_eq!(inter.len(), 3);
        assert!(inter.contains(&ids(&[3, 1, 2])));
        assert!(inter.contains(&ids(&[1, 3, 2])));
        assert!(inter.contains(&ids(&[1, 2, 3])));
    }

    #[test]
    fn interleavings_preserve_relative_order() {
        let t = ids(&[1, 2]);
        let v = ids(&[3, 4]);
        for w in t.interleavings(&v) {
            let p1 = w.position(AccessId(1)).unwrap();
            let p2 = w.position(AccessId(2)).unwrap();
            let p3 = w.position(AccessId(3)).unwrap();
            let p4 = w.position(AccessId(4)).unwrap();
            assert!(p1 < p2);
            assert!(p3 < p4);
        }
    }

    #[test]
    fn interleavings_with_empty() {
        let t = ids(&[1, 2]);
        assert_eq!(t.interleavings(&Trace::empty()), vec![t.clone()]);
        assert_eq!(Trace::empty().interleavings(&t), vec![t]);
    }

    #[test]
    fn interleavings_dedupe_shared_symbols() {
        // <1> # <1> has the single outcome <1,1> (reached two ways).
        let t = ids(&[1]);
        assert_eq!(t.interleavings(&t), vec![ids(&[1, 1])]);
    }

    #[test]
    fn display_with_table() {
        let mut table = AccessTable::new();
        let a = table.intern(&Access::new("read", "r", "s"));
        let t = Trace::from_ids([a]);
        assert_eq!(t.display(&table).to_string(), "<read r @ s>");
        assert_eq!(t.to_string(), "<#0>");
    }
}
