//! Nondeterministic finite automata over dense local symbols.
//!
//! NFAs are built from [`Regex`](crate::regex::Regex) by Thompson's
//! construction; the shuffle operator `#` is compiled by a product of the
//! two operand NFAs in which each input symbol advances *either* component
//! (interleaving preserves the relative order inside each operand, which is
//! exactly what the product does).
//!
//! Symbols are *local* alphabet indices (`u32`), mapped to global
//! [`AccessId`](crate::symbol::AccessId)s by an
//! [`Alphabet`](crate::symbol::Alphabet).

use std::collections::{HashMap, VecDeque};

use crate::regex::Regex;
use crate::symbol::Alphabet;

/// One NFA state: ε-successors plus labelled successors.
#[derive(Clone, Default, Debug)]
struct State {
    eps: Vec<u32>,
    /// `(symbol, target)` pairs, unsorted.
    trans: Vec<(u32, u32)>,
}

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    states: Vec<State>,
    /// The start state.
    pub start: u32,
    /// Acceptance flags, one per state.
    pub accept: Vec<bool>,
    /// Number of symbols in the (local) alphabet.
    pub alphabet_len: usize,
}

impl Nfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    fn new(alphabet_len: usize) -> Self {
        Nfa {
            states: Vec::new(),
            start: 0,
            accept: Vec::new(),
            alphabet_len,
        }
    }

    fn add_state(&mut self) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(State::default());
        self.accept.push(false);
        id
    }

    fn add_eps(&mut self, from: u32, to: u32) {
        self.states[from as usize].eps.push(to);
    }

    fn add_trans(&mut self, from: u32, sym: u32, to: u32) {
        self.states[from as usize].trans.push((sym, to));
    }

    /// Build an NFA recognising `re`, with symbols resolved through `al`.
    /// Symbols of `re` absent from `al` panic — callers derive `al` from
    /// the regex (or a superset union alphabet).
    pub fn from_regex(re: &Regex, al: &Alphabet) -> Nfa {
        let mut nfa = Nfa::new(al.len());
        let (s, f) = build(&mut nfa, re, al);
        nfa.start = s;
        nfa.accept[f as usize] = true;
        nfa
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, set: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<u32> = Vec::with_capacity(set.len());
        for &s in set {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// States reachable from `set` on `sym` (before ε-closure).
    pub fn step(&self, set: &[u32], sym: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for &s in set {
            for &(x, t) in &self.states[s as usize].trans {
                if x == sym {
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Simulate the NFA on a word of local symbols.
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut cur = self.eps_closure(&[self.start]);
        for &sym in word {
            let next = self.step(&cur, sym);
            if next.is_empty() {
                return false;
            }
            cur = self.eps_closure(&next);
        }
        cur.iter().any(|&s| self.accept[s as usize])
    }

    /// The shuffle product of two NFAs over the *same* alphabet: accepts
    /// exactly the interleavings of words of `a` with words of `b`.
    pub fn shuffle(a: &Nfa, b: &Nfa, alphabet_len: usize) -> Nfa {
        assert_eq!(a.alphabet_len, alphabet_len);
        assert_eq!(b.alphabet_len, alphabet_len);
        let mut out = Nfa::new(alphabet_len);
        // Lazily explore reachable pairs.
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut queue = VecDeque::new();
        let start_pair = (a.start, b.start);
        let start = out.add_state();
        index.insert(start_pair, start);
        queue.push_back(start_pair);
        out.start = start;

        while let Some((qa, qb)) = queue.pop_front() {
            let id = index[&(qa, qb)];
            out.accept[id as usize] = a.accept[qa as usize] && b.accept[qb as usize];

            let get = |out: &mut Nfa,
                       index: &mut HashMap<(u32, u32), u32>,
                       queue: &mut VecDeque<(u32, u32)>,
                       pair: (u32, u32)| {
                *index.entry(pair).or_insert_with(|| {
                    let s = out.add_state();
                    queue.push_back(pair);
                    s
                })
            };

            // ε-moves of either component.
            for &ta in &a.states[qa as usize].eps {
                let t = get(&mut out, &mut index, &mut queue, (ta, qb));
                out.add_eps(id, t);
            }
            for &tb in &b.states[qb as usize].eps {
                let t = get(&mut out, &mut index, &mut queue, (qa, tb));
                out.add_eps(id, t);
            }
            // Symbol moves of either component.
            for &(sym, ta) in &a.states[qa as usize].trans {
                let t = get(&mut out, &mut index, &mut queue, (ta, qb));
                out.add_trans(id, sym, t);
            }
            for &(sym, tb) in &b.states[qb as usize].trans {
                let t = get(&mut out, &mut index, &mut queue, (qa, tb));
                out.add_trans(id, sym, t);
            }
        }
        out
    }
}

/// Thompson construction: returns `(start, accept)` fragment states.
fn build(nfa: &mut Nfa, re: &Regex, al: &Alphabet) -> (u32, u32) {
    match re {
        Regex::Empty => {
            let s = nfa.add_state();
            let f = nfa.add_state();
            // No transition: f unreachable.
            (s, f)
        }
        Regex::Eps => {
            let s = nfa.add_state();
            let f = nfa.add_state();
            nfa.add_eps(s, f);
            (s, f)
        }
        Regex::Sym(a) => {
            let sym = al.index_of(*a).expect("regex symbol missing from alphabet");
            let s = nfa.add_state();
            let f = nfa.add_state();
            nfa.add_trans(s, sym, f);
            (s, f)
        }
        Regex::Alt(a, b) => {
            let (sa, fa) = build(nfa, a, al);
            let (sb, fb) = build(nfa, b, al);
            let s = nfa.add_state();
            let f = nfa.add_state();
            nfa.add_eps(s, sa);
            nfa.add_eps(s, sb);
            nfa.add_eps(fa, f);
            nfa.add_eps(fb, f);
            (s, f)
        }
        Regex::Cat(a, b) => {
            let (sa, fa) = build(nfa, a, al);
            let (sb, fb) = build(nfa, b, al);
            nfa.add_eps(fa, sb);
            (sa, fb)
        }
        Regex::Star(a) => {
            let (sa, fa) = build(nfa, a, al);
            let s = nfa.add_state();
            let f = nfa.add_state();
            nfa.add_eps(s, sa);
            nfa.add_eps(s, f);
            nfa.add_eps(fa, sa);
            nfa.add_eps(fa, f);
            (s, f)
        }
        Regex::Shuffle(a, b) => {
            // Compile both operands as standalone NFAs over the same
            // alphabet and take the shuffle product, then graft the result
            // into `nfa` with a fresh accept state.
            let na = Nfa::from_regex(a, al);
            let nb = Nfa::from_regex(b, al);
            let prod = Nfa::shuffle(&na, &nb, al.len());
            // Graft: renumber product states into `nfa`.
            let base = nfa.states.len() as u32;
            for st in &prod.states {
                let id = nfa.add_state();
                let _ = id;
                let new_id = (nfa.states.len() - 1) as u32;
                debug_assert_eq!(new_id, base + (new_id - base));
                // Copy transitions with offset below (after all states exist).
                let _ = st;
            }
            // Second pass: copy transitions now that all states exist.
            for (i, st) in prod.states.iter().enumerate() {
                let from = base + i as u32;
                for &t in &st.eps {
                    nfa.add_eps(from, base + t);
                }
                for &(sym, t) in &st.trans {
                    nfa.add_trans(from, sym, base + t);
                }
            }
            let f = nfa.add_state();
            for (i, &acc) in prod.accept.iter().enumerate() {
                if acc {
                    nfa.add_eps(base + i as u32, f);
                }
            }
            (base + prod.start, f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::AccessId;

    fn sym(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    fn nfa_for(re: &Regex) -> (Nfa, Alphabet) {
        let al = re.alphabet();
        (Nfa::from_regex(re, &al), al)
    }

    /// Convert global-symbol word to local indices for `accepts`.
    fn w(al: &Alphabet, ids: &[u32]) -> Vec<u32> {
        ids.iter()
            .map(|&i| al.index_of(AccessId(i)).unwrap())
            .collect()
    }

    #[test]
    fn single_symbol() {
        let (n, al) = nfa_for(&sym(0));
        assert!(n.accepts(&w(&al, &[0])));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn empty_accepts_nothing() {
        let (n, _) = nfa_for(&Regex::Empty);
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn eps_accepts_only_empty() {
        let (n, _) = nfa_for(&Regex::Eps);
        assert!(n.accepts(&[]));
    }

    #[test]
    fn cat_and_alt() {
        let re = Regex::cat(sym(0), Regex::alt(sym(1), sym(2)));
        let (n, al) = nfa_for(&re);
        assert!(n.accepts(&w(&al, &[0, 1])));
        assert!(n.accepts(&w(&al, &[0, 2])));
        assert!(!n.accepts(&w(&al, &[0])));
        assert!(!n.accepts(&w(&al, &[1, 0])));
    }

    #[test]
    fn star_iterates() {
        let re = Regex::star(sym(0));
        let (n, al) = nfa_for(&re);
        assert!(n.accepts(&[]));
        assert!(n.accepts(&w(&al, &[0])));
        assert!(n.accepts(&w(&al, &[0, 0, 0, 0])));
    }

    #[test]
    fn shuffle_accepts_all_interleavings() {
        // (0·1) # (2) — three interleavings, nothing else.
        let re = Regex::shuffle(Regex::cat(sym(0), sym(1)), sym(2));
        let (n, al) = nfa_for(&re);
        assert!(n.accepts(&w(&al, &[2, 0, 1])));
        assert!(n.accepts(&w(&al, &[0, 2, 1])));
        assert!(n.accepts(&w(&al, &[0, 1, 2])));
        assert!(!n.accepts(&w(&al, &[1, 0, 2])));
        assert!(!n.accepts(&w(&al, &[0, 1])));
        assert!(!n.accepts(&w(&al, &[0, 1, 2, 2])));
    }

    #[test]
    fn shuffle_with_star() {
        // 0* # 1 — any number of 0s with exactly one 1 anywhere.
        let re = Regex::shuffle(Regex::star(sym(0)), sym(1));
        let (n, al) = nfa_for(&re);
        assert!(n.accepts(&w(&al, &[1])));
        assert!(n.accepts(&w(&al, &[0, 1, 0, 0])));
        assert!(!n.accepts(&w(&al, &[0, 0])));
        assert!(!n.accepts(&w(&al, &[1, 1])));
    }

    #[test]
    fn nested_shuffle() {
        // (0 # 1) # 2 — all permutations of {0,1,2}.
        let re = Regex::shuffle(Regex::shuffle(sym(0), sym(1)), sym(2));
        let (n, al) = nfa_for(&re);
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(n.accepts(&w(&al, &perm)), "{perm:?}");
        }
        assert!(!n.accepts(&w(&al, &[0, 1])));
    }

    #[test]
    fn eps_closure_is_sorted_and_deduped() {
        let re = Regex::alt(Regex::Eps, Regex::alt(Regex::Eps, Regex::Eps));
        let (n, _) = nfa_for(&re);
        let cl = n.eps_closure(&[n.start]);
        let mut sorted = cl.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cl, sorted);
    }
}
