//! Deterministic finite automata: the workhorse of symbolic trace-model
//! reasoning.
//!
//! DFAs here are *complete* (every state has a transition on every symbol;
//! a dead sink absorbs rejected prefixes), which makes complementation a
//! flag flip and products total. The module provides subset construction,
//! Hopcroft minimisation, boolean products, emptiness with shortest
//! witnesses, and language equivalence — everything Theorem 3.2's
//! satisfaction checking and Theorem 3.1's round-trip validation need.

use std::collections::VecDeque;

use crate::hash::FnvHashMap;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Alphabet;
use crate::trace::Trace;

/// How to combine acceptance in a product construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProductMode {
    /// Intersection: both accept.
    And,
    /// Union: either accepts.
    Or,
    /// Difference: left accepts, right does not.
    Diff,
    /// Symmetric difference: exactly one accepts.
    Xor,
}

impl ProductMode {
    fn combine(self, a: bool, b: bool) -> bool {
        match self {
            ProductMode::And => a && b,
            ProductMode::Or => a || b,
            ProductMode::Diff => a && !b,
            ProductMode::Xor => a != b,
        }
    }
}

/// A complete deterministic finite automaton over a local alphabet.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Maps local symbol indices to global [`AccessId`](crate::symbol::AccessId)s.
    pub alphabet: Alphabet,
    /// Row-major transition table: `trans[state * k + sym]`.
    trans: Vec<u32>,
    /// The start state.
    pub start: u32,
    /// Acceptance flags.
    pub accept: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Number of symbols.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// The successor of `state` on local symbol `sym`.
    #[inline]
    pub fn next(&self, state: u32, sym: u32) -> u32 {
        self.trans[state as usize * self.alphabet.len() + sym as usize]
    }

    /// Whether `state` is accepting.
    #[inline]
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// Build a DFA from raw parts. `trans` must be row-major with
    /// `accept.len() * alphabet.len()` in-range entries; the automaton must
    /// be complete. Panics on malformed input.
    pub fn from_parts(alphabet: Alphabet, trans: Vec<u32>, start: u32, accept: Vec<bool>) -> Dfa {
        let n = accept.len();
        let k = alphabet.len();
        assert_eq!(trans.len(), n * k, "transition table has wrong shape");
        assert!((start as usize) < n, "start state out of range");
        assert!(
            trans.iter().all(|&t| (t as usize) < n),
            "transition target out of range"
        );
        Dfa {
            alphabet,
            trans,
            start,
            accept,
        }
    }

    /// Determinise `nfa` by subset construction. `alphabet` supplies the
    /// symbol mapping (must match the NFA's `alphabet_len`).
    pub fn from_nfa(nfa: &Nfa, alphabet: Alphabet) -> Dfa {
        assert_eq!(nfa.alphabet_len, alphabet.len());
        let k = alphabet.len();
        let mut index: FnvHashMap<Vec<u32>, u32> = FnvHashMap::default();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue: VecDeque<Vec<u32>> = VecDeque::new();

        let start_set = nfa.eps_closure(&[nfa.start]);
        index.insert(start_set.clone(), 0);
        accept.push(start_set.iter().any(|&s| nfa.accept[s as usize]));
        trans.resize(k, u32::MAX);
        queue.push_back(start_set);

        while let Some(set) = queue.pop_front() {
            let id = index[&set];
            for sym in 0..k as u32 {
                let moved = nfa.step(&set, sym);
                let closed = nfa.eps_closure(&moved);
                let next_id = match index.get(&closed) {
                    Some(&i) => i,
                    None => {
                        let i = accept.len() as u32;
                        index.insert(closed.clone(), i);
                        accept.push(closed.iter().any(|&s| nfa.accept[s as usize]));
                        trans.resize(trans.len() + k, u32::MAX);
                        queue.push_back(closed);
                        i
                    }
                };
                trans[id as usize * k + sym as usize] = next_id;
            }
        }
        debug_assert!(trans.iter().all(|&t| t != u32::MAX));
        Dfa {
            alphabet,
            trans,
            start: 0,
            accept,
        }
    }

    /// Build directly from a regex, over the regex's own alphabet.
    pub fn from_regex(re: &Regex) -> Dfa {
        let al = re.alphabet();
        Dfa::from_regex_with(re, al)
    }

    /// Build from a regex over a caller-supplied (superset) alphabet —
    /// required when two automata must share symbol indices.
    pub fn from_regex_with(re: &Regex, alphabet: Alphabet) -> Dfa {
        let nfa = Nfa::from_regex(re, &alphabet);
        Dfa::from_nfa(&nfa, alphabet).minimize()
    }

    /// Run the DFA on a word of local symbols.
    pub fn accepts_local(&self, word: &[u32]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next(s, sym);
        }
        self.accept[s as usize]
    }

    /// Run the DFA on a trace of global ids. Ids outside the alphabet make
    /// the trace rejected (they can never be produced by the modelled
    /// program).
    pub fn accepts(&self, trace: &Trace) -> bool {
        let mut s = self.start;
        for &id in &trace.0 {
            match self.alphabet.index_of(id) {
                Some(sym) => s = self.next(s, sym),
                None => return false,
            }
        }
        self.accept[s as usize]
    }

    /// Complement: flip acceptance (valid because the DFA is complete).
    /// Note the complement is relative to the DFA's own alphabet.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// Rebuild this DFA over the (superset) alphabet `to`. Symbols new to
    /// this automaton lead to a dead state.
    pub fn reindex(&self, to: &Alphabet) -> Dfa {
        let k_new = to.len();
        let n = self.num_states();
        // One extra dead state at index n.
        let dead = n as u32;
        let mut trans = vec![dead; (n + 1) * k_new];
        for state in 0..n {
            for new_sym in 0..k_new as u32 {
                let id = to.id_at(new_sym);
                if let Some(old_sym) = self.alphabet.index_of(id) {
                    trans[state * k_new + new_sym as usize] = self.next(state as u32, old_sym);
                }
            }
        }
        let mut accept = self.accept.clone();
        accept.push(false);
        Dfa {
            alphabet: to.clone(),
            trans,
            start: self.start,
            accept,
        }
    }

    /// Product construction over a shared alphabet. Panics when alphabets
    /// differ — reindex both to the union first.
    pub fn product(&self, other: &Dfa, mode: ProductMode) -> Dfa {
        self.product_from(self.start, other, other.start, mode)
    }

    /// [`Dfa::product`] started from an arbitrary state pair instead of
    /// the two start states — the incremental-cursor primitive: a cursor
    /// holds the constraint automaton's state after the proven history,
    /// and `prog.product_from(prog.start, cons, cursor_state, Diff)` is
    /// then exactly the residual `L(A_P ∩ ¬A_C)` emptiness problem
    /// without re-walking the history or cloning the automaton. Only the
    /// part reachable from `(self_start, other_start)` is built.
    pub fn product_from(
        &self,
        self_start: u32,
        other: &Dfa,
        other_start: u32,
        mode: ProductMode,
    ) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires a shared alphabet; reindex first"
        );
        assert!((self_start as usize) < self.num_states());
        assert!((other_start as usize) < other.num_states());
        let k = self.alphabet.len();
        let mut index: FnvHashMap<(u32, u32), u32> = FnvHashMap::default();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue = VecDeque::new();

        let start = (self_start, other_start);
        index.insert(start, 0);
        accept.push(mode.combine(
            self.accept[self_start as usize],
            other.accept[other_start as usize],
        ));
        trans.resize(k, u32::MAX);
        queue.push_back(start);

        while let Some((qa, qb)) = queue.pop_front() {
            let id = index[&(qa, qb)];
            for sym in 0..k as u32 {
                let pair = (self.next(qa, sym), other.next(qb, sym));
                let next_id =
                    match index.get(&pair) {
                        Some(&i) => i,
                        None => {
                            let i = accept.len() as u32;
                            index.insert(pair, i);
                            accept.push(mode.combine(
                                self.accept[pair.0 as usize],
                                other.accept[pair.1 as usize],
                            ));
                            trans.resize(trans.len() + k, u32::MAX);
                            queue.push_back(pair);
                            i
                        }
                    };
                trans[id as usize * k + sym as usize] = next_id;
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: 0,
            accept,
        }
    }

    /// True when the language is empty.
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted_local().is_none()
    }

    /// Shortest accepted word (local symbols), by BFS from the start state.
    pub fn shortest_accepted_local(&self) -> Option<Vec<u32>> {
        let n = self.num_states();
        let k = self.alphabet.len();
        let mut pred: Vec<Option<(u32, u32)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        let mut hit: Option<u32> = None;
        if self.accept[self.start as usize] {
            hit = Some(self.start);
        }
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for sym in 0..k as u32 {
                let t = self.next(s, sym);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    pred[t as usize] = Some((s, sym));
                    if self.accept[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut state = hit?;
        let mut word = Vec::new();
        while let Some((p, sym)) = pred[state as usize] {
            word.push(sym);
            state = p;
        }
        word.reverse();
        Some(word)
    }

    /// Shortest accepted trace, rendered as global ids.
    pub fn shortest_accepted(&self) -> Option<Trace> {
        self.shortest_accepted_local()
            .map(|w| Trace::from_ids(w.into_iter().map(|sym| self.alphabet.id_at(sym))))
    }

    /// Hopcroft's partition-refinement minimisation. Unreachable states are
    /// dropped first; the result is the canonical minimal complete DFA.
    pub fn minimize(&self) -> Dfa {
        let k = self.alphabet.len();
        // 1. Restrict to reachable states.
        let n_all = self.num_states();
        let mut reach_map = vec![u32::MAX; n_all];
        let mut order: Vec<u32> = Vec::new();
        {
            let mut queue = VecDeque::new();
            reach_map[self.start as usize] = 0;
            order.push(self.start);
            queue.push_back(self.start);
            while let Some(s) = queue.pop_front() {
                for sym in 0..k as u32 {
                    let t = self.next(s, sym);
                    if reach_map[t as usize] == u32::MAX {
                        reach_map[t as usize] = order.len() as u32;
                        order.push(t);
                        queue.push_back(t);
                    }
                }
            }
        }
        let n = order.len();
        // Dense reachable automaton.
        let mut trans = vec![0u32; n * k];
        let mut accept = vec![false; n];
        for (new_s, &old_s) in order.iter().enumerate() {
            accept[new_s] = self.accept[old_s as usize];
            for sym in 0..k {
                trans[new_s * k + sym] = reach_map[self.next(old_s, sym as u32) as usize];
            }
        }

        if n == 0 {
            return self.clone();
        }

        // 2. Hopcroft refinement.
        // block[s] = block id of state s.
        let mut block = vec![0u32; n];
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let acc: Vec<u32> = (0..n as u32).filter(|&s| accept[s as usize]).collect();
        let rej: Vec<u32> = (0..n as u32).filter(|&s| !accept[s as usize]).collect();
        for (i, b) in [acc, rej].into_iter().filter(|b| !b.is_empty()).enumerate() {
            for &s in &b {
                block[s as usize] = i as u32;
            }
            blocks.push(b);
        }

        // Reverse transitions in CSR layout: for bucket `i = sym * n + t`,
        // `rev[rev_off[i]..rev_off[i + 1]]` lists the states s with
        // trans(s, sym) = t. A `Vec<Vec<Vec<u32>>>` here would allocate
        // k × n vectors — ruinous for large (identity-mapped) alphabets —
        // while CSR is two flat arrays filled in two passes.
        let mut rev_off = vec![0u32; k * n + 1];
        for s in 0..n {
            for sym in 0..k {
                rev_off[sym * n + trans[s * k + sym] as usize + 1] += 1;
            }
        }
        for i in 0..k * n {
            rev_off[i + 1] += rev_off[i];
        }
        let mut rev = vec![0u32; n * k];
        {
            let mut cursor: Vec<u32> = rev_off[..k * n].to_vec();
            for s in 0..n {
                for sym in 0..k {
                    let bucket = sym * n + trans[s * k + sym] as usize;
                    rev[cursor[bucket] as usize] = s as u32;
                    cursor[bucket] += 1;
                }
            }
        }
        let rev_of = |sym: usize, t: usize| {
            let i = sym * n + t;
            &rev[rev_off[i] as usize..rev_off[i + 1] as usize]
        };

        // Worklist of (block id, symbol), seeded per Hopcroft with only
        // the *smaller* of the two initial partitions: refining against
        // min(F, Q∖F) on every symbol already distinguishes everything
        // refining against both would (the classic worklist invariant),
        // and the split step below keeps the invariant by leaving the
        // larger half under the old id — pending entries keep referring
        // to it — while enqueuing the smaller half.
        let mut worklist: VecDeque<(u32, u32)> = VecDeque::new();
        let seed = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() {
            1u32
        } else {
            0u32
        };
        for sym in 0..k as u32 {
            worklist.push_back((seed, sym));
        }

        while let Some((b_id, sym)) = worklist.pop_front() {
            // X = preimage of block b under sym.
            let mut x: Vec<u32> = Vec::new();
            for &t in &blocks[b_id as usize] {
                x.extend_from_slice(rev_of(sym as usize, t as usize));
            }
            if x.is_empty() {
                continue;
            }
            // Group X by current block.
            let mut touched: FnvHashMap<u32, Vec<u32>> = FnvHashMap::default();
            for &s in &x {
                touched.entry(block[s as usize]).or_default().push(s);
            }
            for (y_id, x_in_y) in touched {
                let y_len = blocks[y_id as usize].len();
                if x_in_y.len() == y_len {
                    continue; // Y ⊆ X: no split.
                }
                // Split Y into (Y ∩ X) and (Y \ X).
                let new_id = blocks.len() as u32;
                let mut in_x = vec![false; n];
                for &s in &x_in_y {
                    in_x[s as usize] = true;
                }
                let y = std::mem::take(&mut blocks[y_id as usize]);
                let (yx, rest): (Vec<u32>, Vec<u32>) =
                    y.into_iter().partition(|&s| in_x[s as usize]);
                // Keep the larger part under the old id (Hopcroft's trick).
                let (keep, split) = if yx.len() <= rest.len() {
                    (rest, yx)
                } else {
                    (yx, rest)
                };
                for &s in &split {
                    block[s as usize] = new_id;
                }
                blocks[y_id as usize] = keep;
                blocks.push(split);
                for sym2 in 0..k as u32 {
                    worklist.push_back((new_id, sym2));
                }
            }
        }

        // 3. Build the quotient automaton.
        let m = blocks.len();
        let mut q_trans = vec![0u32; m * k];
        let mut q_accept = vec![false; m];
        for (b_id, b) in blocks.iter().enumerate() {
            let rep = b[0] as usize;
            q_accept[b_id] = accept[rep];
            for sym in 0..k {
                q_trans[b_id * k + sym] = block[trans[rep * k + sym] as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans: q_trans,
            start: block[0], // reachable-state 0 is the original start.
            accept: q_accept,
        }
    }

    /// The raw row-major transition table (`trans[state * k + sym]`).
    /// Exposed read-only so batch cursor banks can advance many automata
    /// in a flat loop without per-step method dispatch.
    #[inline]
    pub fn transitions(&self) -> &[u32] {
        &self.trans
    }

    /// Renumber states by breadth-first discovery order from the start
    /// state, exploring symbols in index order, and drop unreachable
    /// states. A *minimal* DFA is unique up to state renaming, and BFS
    /// discovery order is itself determined by the transition structure —
    /// so two minimal automata recognise the same language over the same
    /// alphabet **iff** their canonical forms are structurally identical.
    /// That equivalence is what [`Dfa::structural_hash`] hash-consing
    /// rests on.
    pub fn canonicalize(&self) -> Dfa {
        let n = self.num_states();
        let k = self.alphabet.len();
        let mut map = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        map[self.start as usize] = 0;
        order.push(self.start);
        let mut head = 0;
        while head < order.len() {
            let s = order[head];
            head += 1;
            for sym in 0..k as u32 {
                let t = self.next(s, sym);
                if map[t as usize] == u32::MAX {
                    map[t as usize] = order.len() as u32;
                    order.push(t);
                }
            }
        }
        let m = order.len();
        let mut trans = vec![0u32; m * k];
        let mut accept = vec![false; m];
        for (new_s, &old_s) in order.iter().enumerate() {
            accept[new_s] = self.accept[old_s as usize];
            for sym in 0..k {
                trans[new_s * k + sym] = map[self.next(old_s, sym as u32) as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: 0,
            accept,
        }
    }

    /// FNV-1a hash of the automaton's exact structure: alphabet ids,
    /// start state, acceptance flags and transition table. Equal
    /// structures hash equal; on [canonical](Dfa::canonicalize) minimal
    /// automata the hash is therefore a language fingerprint (modulo
    /// collisions, which [`Dfa::same_structure`] resolves).
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::hash::FnvHasher::default();
        for id in self.alphabet.ids() {
            id.0.hash(&mut h);
        }
        self.start.hash(&mut h);
        self.accept.hash(&mut h);
        self.trans.hash(&mut h);
        h.finish()
    }

    /// Exact structural equality: same alphabet (ids in the same order),
    /// start, acceptance and transitions. On canonical minimal automata
    /// this *is* language equality over that alphabet.
    pub fn same_structure(&self, other: &Dfa) -> bool {
        self.start == other.start
            && self.accept == other.accept
            && self.trans == other.trans
            && self.alphabet == other.alphabet
    }

    /// Shortest word accepted by the *mapped* product of `self` (stepped
    /// on its own symbols, from `self_start`) and `other` (stepped on
    /// `map[sym]`, from `other_start`), combining acceptance with `mode`.
    /// Returns the word in `self`-local symbols, or `None` when the
    /// product language is empty.
    ///
    /// `map` must translate every `self` symbol to an `other` symbol —
    /// the compressed-alphabet bridge: `self` is a program automaton over
    /// the full-table alphabet, `other` a constraint automaton over its
    /// symbol-class representatives, and `map` the global-id → class
    /// table. Because every id in a class acts identically on the
    /// constraint, this explores exactly the reachable part of the
    /// product `self × reindex(other)` would — without ever materialising
    /// either the reindexed automaton or the product transition table,
    /// and stopping at the first (BFS-shortest) accepting pair.
    pub fn product_shortest_mapped(
        &self,
        self_start: u32,
        other: &Dfa,
        other_start: u32,
        mode: ProductMode,
        map: &[u32],
    ) -> Option<Vec<u32>> {
        assert_eq!(
            map.len(),
            self.alphabet.len(),
            "symbol map must cover the left alphabet"
        );
        debug_assert!(map
            .iter()
            .all(|&m| (m as usize) < other.alphabet_len().max(1)));
        assert!((self_start as usize) < self.num_states());
        assert!((other_start as usize) < other.num_states());
        let k = self.alphabet.len();
        let start = (self_start, other_start);
        if mode.combine(
            self.accept[self_start as usize],
            other.accept[other_start as usize],
        ) {
            return Some(Vec::new());
        }
        let mut index: FnvHashMap<(u32, u32), u32> = FnvHashMap::default();
        let mut pairs: Vec<(u32, u32)> = vec![start];
        // pred[i] = (parent index, symbol taken); u32::MAX marks the root.
        let mut pred: Vec<(u32, u32)> = vec![(u32::MAX, 0)];
        index.insert(start, 0);
        let mut head = 0usize;
        while head < pairs.len() {
            let (qa, qb) = pairs[head];
            for sym in 0..k as u32 {
                let pair = (self.next(qa, sym), other.next(qb, map[sym as usize]));
                if index.contains_key(&pair) {
                    continue;
                }
                index.insert(pair, pairs.len() as u32);
                if mode.combine(self.accept[pair.0 as usize], other.accept[pair.1 as usize]) {
                    let mut word = vec![sym];
                    let mut at = head as u32;
                    while pred[at as usize].0 != u32::MAX {
                        word.push(pred[at as usize].1);
                        at = pred[at as usize].0;
                    }
                    word.reverse();
                    return Some(word);
                }
                pred.push((head as u32, sym));
                pairs.push(pair);
            }
            head += 1;
        }
        None
    }

    /// Language equivalence via symmetric-difference emptiness, after
    /// reindexing both automata over the union alphabet.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let union = self.alphabet.union(&other.alphabet);
        let a = self.reindex(&union);
        let b = other.reindex(&union);
        a.product(&b, ProductMode::Xor).is_empty()
    }

    /// Language containment `self ⊆ other` (over the union alphabet).
    pub fn subset_of(&self, other: &Dfa) -> bool {
        let union = self.alphabet.union(&other.alphabet);
        let a = self.reindex(&union);
        let b = other.reindex(&union);
        a.product(&b, ProductMode::Diff).is_empty()
    }

    /// A trace accepted by `self` but not `other`, if any — the witness for
    /// a containment failure.
    pub fn witness_not_subset(&self, other: &Dfa) -> Option<Trace> {
        let union = self.alphabet.union(&other.alphabet);
        let a = self.reindex(&union);
        let b = other.reindex(&union);
        a.product(&b, ProductMode::Diff).shortest_accepted()
    }

    /// Convenience: are two regexes language-equal?
    pub fn equivalent_regexes(a: &Regex, b: &Regex) -> bool {
        let union = a.alphabet().union(&b.alphabet());
        let da = Dfa::from_regex_with(a, union.clone());
        let db = Dfa::from_regex_with(b, union);
        da.product(&db, ProductMode::Xor).is_empty()
    }
}

/// Build a DFA accepting exactly the given finite set of traces — useful
/// in tests and for compiling history prefixes.
pub fn dfa_of_traces(traces: &[Trace], alphabet: Alphabet) -> Dfa {
    let re = Regex::alt_all(
        traces
            .iter()
            .map(|t| Regex::cat_all(t.0.iter().map(|&id| Regex::Sym(id)))),
    );
    Dfa::from_regex_with(&re, alphabet)
}

/// The derivative DFA: `self` with its start state advanced by `prefix`.
/// Returns `None` when the prefix mentions an unknown symbol (in which case
/// the residual language is empty).
pub fn advance(dfa: &Dfa, prefix: &Trace) -> Option<Dfa> {
    let mut s = dfa.start;
    for &id in &prefix.0 {
        let sym = dfa.alphabet.index_of(id)?;
        s = dfa.next(s, sym);
    }
    let mut out = dfa.clone();
    out.start = s;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::AccessId;

    fn sym(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    fn t(v: &[u32]) -> Trace {
        Trace::from_ids(v.iter().map(|&i| AccessId(i)))
    }

    #[test]
    fn subset_construction_accepts() {
        let re = Regex::cat(sym(0), Regex::star(sym(1)));
        let d = Dfa::from_regex(&re);
        assert!(d.accepts(&t(&[0])));
        assert!(d.accepts(&t(&[0, 1, 1])));
        assert!(!d.accepts(&t(&[1])));
        assert!(!d.accepts(&t(&[])));
    }

    #[test]
    fn unknown_symbols_reject() {
        let d = Dfa::from_regex(&sym(0));
        assert!(!d.accepts(&t(&[7])));
    }

    #[test]
    fn complement_flips() {
        let d = Dfa::from_regex(&sym(0));
        let c = d.complement();
        assert!(c.accepts(&t(&[])));
        assert!(!c.accepts(&t(&[0])));
        assert!(c.accepts(&t(&[0, 0])));
    }

    #[test]
    fn minimization_canonicalises() {
        // (0 ∪ 0·0*·0?) style redundancy: a* built two ways.
        let a = Regex::star(sym(0));
        let b = Regex::alt(Regex::Eps, Regex::cat(sym(0), Regex::star(sym(0))));
        let da = Dfa::from_regex(&a);
        let db = Dfa::from_regex(&b);
        assert_eq!(da.num_states(), db.num_states());
        assert!(da.equivalent(&db));
    }

    #[test]
    fn minimal_star_has_one_state() {
        // 0* over alphabet {0}: a single accepting state suffices.
        let d = Dfa::from_regex(&Regex::star(sym(0)));
        assert_eq!(d.num_states(), 1);
        assert!(d.accept[d.start as usize]);
    }

    #[test]
    fn product_modes() {
        let union = Regex::alt(sym(0), sym(1)).alphabet();
        let d0 = Dfa::from_regex_with(&sym(0), union.clone());
        let d1 = Dfa::from_regex_with(&sym(1), union.clone());
        assert!(d0.product(&d1, ProductMode::And).is_empty());
        let or = d0.product(&d1, ProductMode::Or);
        assert!(or.accepts(&t(&[0])));
        assert!(or.accepts(&t(&[1])));
        assert!(!or.accepts(&t(&[0, 1])));
        let diff = d0.product(&d1, ProductMode::Diff);
        assert!(diff.accepts(&t(&[0])));
        assert!(!diff.accepts(&t(&[1])));
    }

    #[test]
    fn product_from_advanced_state_equals_advance_then_product() {
        // Residual emptiness two ways: clone-and-advance the constraint
        // automaton (the slow path) vs. starting the product at the
        // advanced state pair (the cursor fast path).
        let union = Regex::alt(sym(0), sym(1)).alphabet();
        // Constraint: at most two 0s (as a DFA over {0,1}).
        let cons = Dfa::from_regex_with(
            &Regex::cat(
                Regex::star(sym(1)),
                Regex::alt(
                    Regex::Eps,
                    Regex::cat(
                        sym(0),
                        Regex::cat(
                            Regex::star(sym(1)),
                            Regex::alt(Regex::Eps, Regex::cat(sym(0), Regex::star(sym(1)))),
                        ),
                    ),
                ),
            ),
            union.clone(),
        );
        for history in [t(&[]), t(&[0]), t(&[0, 1, 0]), t(&[0, 0, 0])] {
            // Fast path: fold the history into a state.
            let mut state = cons.start;
            for &id in &history.0 {
                state = cons.next(state, cons.alphabet.index_of(id).unwrap());
            }
            for prog_re in [sym(0), sym(1), Regex::cat(sym(0), sym(0))] {
                let prog = Dfa::from_regex_with(&prog_re, union.clone());
                let fast = prog
                    .product_from(prog.start, &cons, state, ProductMode::Diff)
                    .is_empty();
                // Slow path: advance() clones the DFA, then ¬C product.
                let advanced = advance(&cons, &history).unwrap();
                let slow = prog
                    .product(&advanced.complement(), ProductMode::And)
                    .is_empty();
                assert_eq!(fast, slow, "history {history} prog {prog_re:?}");
            }
        }
    }

    #[test]
    fn product_delegates_to_product_from() {
        let union = Regex::alt(sym(0), sym(1)).alphabet();
        let d0 = Dfa::from_regex_with(&sym(0), union.clone());
        let d1 = Dfa::from_regex_with(&sym(1), union.clone());
        let via_product = d0.product(&d1, ProductMode::Xor);
        let via_from = d0.product_from(d0.start, &d1, d1.start, ProductMode::Xor);
        assert!(via_product.equivalent(&via_from));
    }

    #[test]
    fn equivalence_and_subset() {
        // 0·1 ⊆ 0·(1 ∪ 2)
        let small = Regex::cat(sym(0), sym(1));
        let big = Regex::cat(sym(0), Regex::alt(sym(1), sym(2)));
        let ds = Dfa::from_regex(&small);
        let db = Dfa::from_regex(&big);
        assert!(ds.subset_of(&db));
        assert!(!db.subset_of(&ds));
        assert!(!ds.equivalent(&db));
        let wit = db.witness_not_subset(&ds).unwrap();
        assert_eq!(wit, t(&[0, 2]));
    }

    #[test]
    fn equivalence_across_alphabets() {
        // Same language, one regex mentions an extra (unused) symbol path.
        let a = sym(0);
        let b = Regex::alt(sym(0), Regex::cat(sym(1), Regex::Empty));
        assert!(Dfa::equivalent_regexes(&a, &b));
    }

    #[test]
    fn empty_language_detection() {
        assert!(Dfa::from_regex(&Regex::Empty).is_empty());
        assert!(!Dfa::from_regex(&Regex::Eps).is_empty());
        assert!(Dfa::from_regex(&Regex::cat(sym(0), Regex::Empty)).is_empty());
    }

    #[test]
    fn shortest_witness_is_shortest() {
        // Language 0·0·0 ∪ 0 — shortest is <0>.
        let re = Regex::alt(Regex::cat_all([sym(0), sym(0), sym(0)]), sym(0));
        let d = Dfa::from_regex(&re);
        assert_eq!(d.shortest_accepted().unwrap(), t(&[0]));
    }

    #[test]
    fn shortest_witness_of_eps_language() {
        let d = Dfa::from_regex(&Regex::Eps);
        assert_eq!(d.shortest_accepted().unwrap(), Trace::empty());
    }

    #[test]
    fn advance_computes_residual() {
        let re = Regex::cat_all([sym(0), sym(1), sym(2)]);
        let d = Dfa::from_regex(&re);
        let r = advance(&d, &t(&[0, 1])).unwrap();
        assert!(r.accepts(&t(&[2])));
        assert!(!r.accepts(&t(&[0, 1, 2])));
        assert!(advance(&d, &t(&[99])).is_none());
    }

    #[test]
    fn dfa_of_traces_matches_set() {
        let al = Alphabet::from_ids([AccessId(0), AccessId(1)]);
        let d = dfa_of_traces(&[t(&[0, 1]), t(&[1])], al);
        assert!(d.accepts(&t(&[0, 1])));
        assert!(d.accepts(&t(&[1])));
        assert!(!d.accepts(&t(&[0])));
        assert!(!d.accepts(&t(&[])));
    }

    #[test]
    fn shuffle_regex_through_dfa() {
        // (0·1) # (0·1): contains 0011, 0101, but never starts with 1.
        let half = Regex::cat(sym(0), sym(1));
        let re = Regex::shuffle(half.clone(), half);
        let d = Dfa::from_regex(&re);
        assert!(d.accepts(&t(&[0, 0, 1, 1])));
        assert!(d.accepts(&t(&[0, 1, 0, 1])));
        assert!(!d.accepts(&t(&[1, 0, 0, 1])));
        assert!(!d.accepts(&t(&[0, 1])));
    }

    #[test]
    fn canonicalize_is_language_preserving_and_stable() {
        let re = Regex::shuffle(Regex::star(sym(0)), Regex::cat(sym(1), sym(2)));
        let d = Dfa::from_regex(&re).minimize().canonicalize();
        assert!(d.equivalent(&Dfa::from_regex(&re)));
        assert_eq!(d.start, 0);
        // Canonicalizing twice is a fixpoint.
        let d2 = d.canonicalize();
        assert!(d.same_structure(&d2));
        assert_eq!(d.structural_hash(), d2.structural_hash());
    }

    #[test]
    fn canonical_forms_of_equal_languages_coincide() {
        // Two syntactically different regexes for the same language must
        // canonicalize to bit-identical automata (the hash-consing
        // invariant).
        let a = Regex::star(sym(0));
        let b = Regex::alt(Regex::Eps, Regex::cat(sym(0), Regex::star(sym(0))));
        let union = Regex::alt(sym(0), sym(1)).alphabet();
        let da = Dfa::from_regex_with(&a, union.clone())
            .minimize()
            .canonicalize();
        let db = Dfa::from_regex_with(&b, union).minimize().canonicalize();
        assert!(da.same_structure(&db));
        assert_eq!(da.structural_hash(), db.structural_hash());
        // And a genuinely different language must differ structurally.
        let dc = Dfa::from_regex(&sym(0)).minimize().canonicalize();
        assert!(!da.same_structure(&dc));
    }

    #[test]
    fn mapped_product_equals_materialised_product() {
        // Identity map: the mapped BFS must agree with product_from +
        // shortest_accepted_local on every mode and start pair.
        let union = Regex::alt(sym(0), sym(1)).alphabet();
        let cons = Dfa::from_regex_with(&Regex::star(Regex::alt(sym(1), sym(0))), union.clone());
        let prog = Dfa::from_regex_with(&Regex::cat(sym(0), sym(1)), union.clone());
        let ident: Vec<u32> = (0..union.len() as u32).collect();
        for mode in [
            ProductMode::And,
            ProductMode::Or,
            ProductMode::Diff,
            ProductMode::Xor,
        ] {
            let fast = prog.product_shortest_mapped(prog.start, &cons, cons.start, mode, &ident);
            let slow = prog
                .product_from(prog.start, &cons, cons.start, mode)
                .shortest_accepted_local();
            assert_eq!(fast, slow, "mode {mode:?}");
        }
    }

    #[test]
    fn mapped_product_bridges_compressed_alphabets() {
        // prog over {0,1,2}; cons over a 2-symbol compressed alphabet
        // where global ids 1 and 2 share class 1. The mapped Diff
        // emptiness must equal the full-width product after reindexing.
        let full = Alphabet::from_ids([AccessId(0), AccessId(1), AccessId(2)]);
        let prog = Dfa::from_regex_with(&Regex::cat(sym(1), sym(2)), full.clone());
        // cons (compressed): "at most one symbol of class 1".
        let small = Alphabet::from_ids([AccessId(0), AccessId(1)]);
        let cons_small = Dfa::from_regex_with(
            &Regex::cat(
                Regex::star(Regex::Sym(AccessId(0))),
                Regex::alt(
                    Regex::Eps,
                    Regex::cat(
                        Regex::Sym(AccessId(1)),
                        Regex::star(Regex::Sym(AccessId(0))),
                    ),
                ),
            ),
            small,
        );
        let map = vec![0u32, 1, 1]; // ids 1 and 2 collapse to class 1.
                                    // prog performs two class-1 accesses: violates the cap.
        let witness = prog
            .product_shortest_mapped(
                prog.start,
                &cons_small,
                cons_small.start,
                ProductMode::Diff,
                &map,
            )
            .expect("two class-1 accesses violate the cap");
        assert_eq!(witness, vec![1, 2]);
        // The same language expressed full-width agrees.
        let cons_full = Dfa::from_regex_with(
            &Regex::cat(
                Regex::star(sym(0)),
                Regex::alt(
                    Regex::Eps,
                    Regex::cat(Regex::alt(sym(1), sym(2)), Regex::star(sym(0))),
                ),
            ),
            full,
        );
        let slow = prog
            .product_from(prog.start, &cons_full, cons_full.start, ProductMode::Diff)
            .shortest_accepted_local();
        assert_eq!(slow, Some(vec![1, 2]));
    }

    #[test]
    fn minimize_is_idempotent() {
        let re = Regex::shuffle(Regex::star(sym(0)), Regex::cat(sym(1), sym(2)));
        let d = Dfa::from_regex(&re); // already minimised by from_regex_with
        let d2 = d.minimize();
        assert_eq!(d.num_states(), d2.num_states());
        assert!(d.equivalent(&d2));
    }
}
