//! Regex extraction from DFAs by state elimination
//! (Brzozowski–McCluskey): the inverse of the compilation pipeline.
//!
//! Given any DFA — e.g. the automaton of `traces(P)` — produce a regex
//! denoting the same language. Together with
//! [`synthesis`](crate::synthesis) this closes the loop: *program → trace
//! model → canonical (minimal-DFA) regex → program*, giving a normal form
//! for trace models that the CLI's `traces` command prints.
//!
//! The resulting regex is language-equal to the input (property-tested)
//! but not guaranteed syntactically minimal; states are eliminated in a
//! lowest-degree-first order, a standard heuristic that keeps the output
//! small in practice.

use std::collections::HashMap;

use crate::dfa::Dfa;
use crate::regex::Regex;

/// Extract a regex for `dfa`'s language.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    let n = dfa.num_states();
    let k = dfa.alphabet_len() as u32;

    // Generalised NFA edges: (from, to) → regex. Two synthetic nodes:
    // start = n, accept = n + 1.
    let start = n;
    let accept = n + 1;
    let mut edges: HashMap<(usize, usize), Regex> = HashMap::new();
    let add = |edges: &mut HashMap<(usize, usize), Regex>, f: usize, t: usize, re: Regex| {
        if re == Regex::Empty {
            return;
        }
        edges
            .entry((f, t))
            .and_modify(|e| *e = Regex::alt(e.clone(), re.clone()))
            .or_insert(re);
    };

    for s in 0..n {
        for sym in 0..k {
            let t = dfa.next(s as u32, sym) as usize;
            add(&mut edges, s, t, Regex::Sym(dfa.alphabet.id_at(sym)));
        }
        if dfa.accept[s] {
            add(&mut edges, s, accept, Regex::Eps);
        }
    }
    add(&mut edges, start, dfa.start as usize, Regex::Eps);

    // Eliminate original states, lowest combined degree first.
    let mut remaining: Vec<usize> = (0..n).collect();
    while !remaining.is_empty() {
        // Pick the state with the fewest incident edges.
        let (&victim, _) = remaining
            .iter()
            .map(|&s| {
                let deg = edges.keys().filter(|&&(f, t)| f == s || t == s).count();
                (s, deg)
            })
            .min_by_key(|&(_, deg)| deg)
            .map(|(s, d)| (remaining.iter().find(|&&x| x == s).unwrap(), d))
            .expect("remaining is non-empty");
        remaining.retain(|&s| s != victim);

        let self_loop = edges.remove(&(victim, victim));
        let loop_star = match self_loop {
            Some(re) => Regex::star(re),
            None => Regex::Eps,
        };
        let into: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(_, t), _)| t == victim)
            .map(|(&(f, _), re)| (f, re.clone()))
            .collect();
        let out_of: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(f, _), _)| f == victim)
            .map(|(&(_, t), re)| (t, re.clone()))
            .collect();
        edges.retain(|&(f, t), _| f != victim && t != victim);
        for (f, re_in) in &into {
            for (t, re_out) in &out_of {
                let through =
                    Regex::cat(re_in.clone(), Regex::cat(loop_star.clone(), re_out.clone()));
                add(&mut edges, *f, *t, through);
            }
        }
    }

    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::AccessId;
    use crate::trace::Trace;

    fn sym(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    fn roundtrip(re: &Regex) {
        let d = Dfa::from_regex(re);
        let extracted = dfa_to_regex(&d);
        assert!(
            Dfa::equivalent_regexes(re, &extracted),
            "extraction of {re} gave {extracted}"
        );
    }

    #[test]
    fn basic_shapes() {
        roundtrip(&Regex::Empty);
        roundtrip(&Regex::Eps);
        roundtrip(&sym(0));
        roundtrip(&Regex::cat(sym(0), sym(1)));
        roundtrip(&Regex::alt(sym(0), sym(1)));
        roundtrip(&Regex::star(sym(0)));
    }

    #[test]
    fn composite_shapes() {
        roundtrip(&Regex::cat(
            Regex::star(Regex::alt(sym(0), Regex::cat(sym(1), sym(2)))),
            sym(2),
        ));
        roundtrip(&Regex::shuffle(Regex::cat(sym(0), sym(1)), sym(2)));
        roundtrip(&Regex::alt(
            Regex::star(sym(0)),
            Regex::cat(sym(1), Regex::star(sym(2))),
        ));
    }

    #[test]
    fn empty_language_extracts_empty() {
        let d = Dfa::from_regex(&Regex::cat(sym(0), Regex::Empty));
        assert_eq!(dfa_to_regex(&d), Regex::Empty);
    }

    #[test]
    fn extraction_accepts_same_short_traces() {
        let re = Regex::cat(Regex::star(sym(0)), Regex::alt(sym(1), sym(2)));
        let d = Dfa::from_regex(&re);
        let d2 = Dfa::from_regex(&dfa_to_regex(&d));
        for t in crate::enumerate::enumerate_traces(&d, 5, 1000) {
            assert!(d2.accepts(&t), "{t}");
        }
        for t in crate::enumerate::enumerate_traces(&d2, 5, 1000) {
            assert!(d.accepts(&t), "{t}");
        }
        let _ = Trace::empty();
    }
}
