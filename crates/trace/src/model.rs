//! Finite trace models: explicit sets of traces.
//!
//! `traces(p)` is infinite whenever `p` loops, so the production pipeline is
//! symbolic ([`crate::regex`] → automata). Finite models remain invaluable
//! as a *test oracle*: for loop-free programs the explicit set is exactly
//! the trace model, and every operator here mirrors Definition 3.2 of the
//! paper, letting property tests cross-check the symbolic machinery.

use std::collections::BTreeSet;

use crate::symbol::AccessId;
use crate::trace::Trace;

/// A finite set of traces.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct TraceModel {
    traces: BTreeSet<Trace>,
}

impl TraceModel {
    /// The empty model ∅ (no traces at all — not even ε).
    pub fn empty() -> Self {
        TraceModel::default()
    }

    /// The unit model {ε}.
    pub fn epsilon() -> Self {
        let mut m = TraceModel::empty();
        m.traces.insert(Trace::empty());
        m
    }

    /// The singleton model {⟨a⟩} (Definition 3.3's base case).
    pub fn single(a: AccessId) -> Self {
        let mut m = TraceModel::empty();
        m.traces.insert(Trace::single(a));
        m
    }

    /// Build from an iterator of traces.
    pub fn from_traces(traces: impl IntoIterator<Item = Trace>) -> Self {
        TraceModel {
            traces: traces.into_iter().collect(),
        }
    }

    /// Number of traces in the model.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when the model is ∅.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Trace) -> bool {
        self.traces.contains(t)
    }

    /// Iterate traces in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Union (`traces(if c then p1 else p2) = traces(p1) ∪ traces(p2)`).
    pub fn union(&self, other: &TraceModel) -> TraceModel {
        TraceModel {
            traces: self.traces.union(&other.traces).cloned().collect(),
        }
    }

    /// Concatenation (`traces(p1 ; p2) = traces(p1) · traces(p2)`).
    pub fn concat(&self, other: &TraceModel) -> TraceModel {
        let mut out = BTreeSet::new();
        for t in &self.traces {
            for v in &other.traces {
                out.insert(t.concat(v));
            }
        }
        TraceModel { traces: out }
    }

    /// Interleaving (`traces(p1 || p2) = traces(p1) # traces(p2)`).
    pub fn interleave(&self, other: &TraceModel) -> TraceModel {
        let mut out = BTreeSet::new();
        for t in &self.traces {
            for v in &other.traces {
                out.extend(t.interleavings(v));
            }
        }
        TraceModel { traces: out }
    }

    /// Bounded Kleene closure: ε plus up to `k` self-concatenations
    /// (`traces(while c do p) = traces(p)*`, truncated for finiteness).
    pub fn star_bounded(&self, k: usize) -> TraceModel {
        let mut out = TraceModel::epsilon();
        let mut power = TraceModel::epsilon();
        for _ in 0..k {
            power = power.concat(self);
            out = out.union(&power);
        }
        out
    }

    /// The longest trace length in the model (0 for ∅ and {ε}).
    pub fn max_len(&self) -> usize {
        self.traces.iter().map(Trace::len).max().unwrap_or(0)
    }
}

impl FromIterator<Trace> for TraceModel {
    fn from_iter<T: IntoIterator<Item = Trace>>(iter: T) -> Self {
        TraceModel::from_traces(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[u32]) -> Trace {
        Trace::from_ids(v.iter().map(|&i| AccessId(i)))
    }

    #[test]
    fn empty_vs_epsilon() {
        assert!(TraceModel::empty().is_empty());
        let eps = TraceModel::epsilon();
        assert_eq!(eps.len(), 1);
        assert!(eps.contains(&Trace::empty()));
    }

    #[test]
    fn concat_distributes() {
        let m1 = TraceModel::from_traces([t(&[1]), t(&[2])]);
        let m2 = TraceModel::from_traces([t(&[3])]);
        let m = m1.concat(&m2);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&t(&[1, 3])));
        assert!(m.contains(&t(&[2, 3])));
    }

    #[test]
    fn concat_with_empty_annihilates() {
        let m = TraceModel::from_traces([t(&[1])]);
        assert!(m.concat(&TraceModel::empty()).is_empty());
        assert!(TraceModel::empty().concat(&m).is_empty());
    }

    #[test]
    fn concat_with_epsilon_is_identity() {
        let m = TraceModel::from_traces([t(&[1, 2]), t(&[3])]);
        assert_eq!(m.concat(&TraceModel::epsilon()), m);
        assert_eq!(TraceModel::epsilon().concat(&m), m);
    }

    #[test]
    fn union_matches_paper_if_rule() {
        let m1 = TraceModel::single(AccessId(1));
        let m2 = TraceModel::single(AccessId(2));
        let m = m1.union(&m2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn interleave_example_from_def() {
        // {<1,2>} # {<3>} = three interleavings.
        let m1 = TraceModel::from_traces([t(&[1, 2])]);
        let m2 = TraceModel::from_traces([t(&[3])]);
        let m = m1.interleave(&m2);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn interleave_with_epsilon_is_identity() {
        let m = TraceModel::from_traces([t(&[1, 2])]);
        assert_eq!(m.interleave(&TraceModel::epsilon()), m);
    }

    #[test]
    fn star_bounded_growth() {
        let m = TraceModel::single(AccessId(1));
        let s = m.star_bounded(3);
        // ε, <1>, <1,1>, <1,1,1>
        assert_eq!(s.len(), 4);
        assert!(s.contains(&Trace::empty()));
        assert!(s.contains(&t(&[1, 1, 1])));
        assert_eq!(s.max_len(), 3);
    }

    #[test]
    fn star_of_empty_is_epsilon() {
        let s = TraceModel::empty().star_bounded(5);
        assert_eq!(s, TraceModel::epsilon());
    }

    #[test]
    fn operators_are_associative_where_expected() {
        let a = TraceModel::single(AccessId(1));
        let b = TraceModel::single(AccessId(2));
        let c = TraceModel::single(AccessId(3));
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(
            a.interleave(&b).interleave(&c),
            a.interleave(&b.interleave(&c))
        );
    }

    #[test]
    fn interleave_commutes() {
        let m1 = TraceModel::from_traces([t(&[1, 2])]);
        let m2 = TraceModel::from_traces([t(&[3, 4])]);
        assert_eq!(m1.interleave(&m2), m2.interleave(&m1));
    }
}
