//! FNV-1a hashing for the automata hot paths.
//!
//! Subset construction, product construction and the constraint cache all
//! key small, trusted, fixed-shape values (`Vec<u32>` state sets,
//! `(u32, u32)` state pairs, constraint ASTs). The std `HashMap`'s
//! SipHash is DoS-resistant but pays for it per byte; these maps never
//! see attacker-chosen keys, so the ledger's FNV-1a (already hand-rolled
//! in `stacl-coalition`) is the right trade — and keeps the workspace
//! dependency-free.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a hasher (64-bit).
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// A [`BuildHasher`] producing [`FnvHasher`]s — drop-in hasher parameter
/// for `HashMap`s on the automata hot paths.
#[derive(Clone, Copy, Default, Debug)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` keyed with FNV-1a instead of SipHash.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// Hash `value` with FNV-1a via its `Hash` impl.
pub fn fnv_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FnvHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        fn fnv(bytes: &[u8]) -> u64 {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        }
        assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FnvHashMap<(u32, u32), u32> = FnvHashMap::default();
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), Some(&4));
        assert_eq!(m.len(), 2);
    }
}
