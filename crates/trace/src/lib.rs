//! # stacl-trace — the trace model of SRAL programs
//!
//! Section 3.2 of the paper models a mobile object program `p` by
//! `traces(p)`, the set of access sequences `p` can perform, built with
//! concatenation, union, interleaving and Kleene closure (Definition 3.2).
//! *Regular trace models* (Definition 3.3) are exactly the regular
//! languages over the access alphabet, and Theorem 3.1 shows SRAL is
//! complete for them.
//!
//! This crate makes the trace model executable:
//!
//! * [`symbol`] — interning of [`Access`](stacl_sral::Access)es into dense
//!   `u32` symbols ([`symbol::AccessTable`]) for cache-friendly automata;
//! * [`trace`] — concrete traces and their operators;
//! * [`model`] — *finite* trace models (sets of traces) used as a test
//!   oracle against the symbolic machinery;
//! * [`regex`] — symbolic regular trace models (access regexes with a
//!   shuffle operator for `||`);
//! * [`nfa`] / [`dfa`] — Thompson construction, shuffle products, subset
//!   construction, Hopcroft minimisation, boolean operations, emptiness,
//!   equivalence and shortest-witness extraction;
//! * [`abstraction`] — `traces(p)`: SRAL program → regex (Definition 3.2);
//! * [`synthesis`] — regex → SRAL program (the constructive content of
//!   Theorem 3.1);
//! * [`enumerate`] — bounded enumeration of accepted traces.
//!
//! ## Example: Theorem 3.1 round trip
//!
//! ```
//! use stacl_sral::parser::parse_program;
//! use stacl_trace::abstraction::{traces, AbstractionConfig};
//! use stacl_trace::symbol::AccessTable;
//! use stacl_trace::synthesis::synthesize;
//! use stacl_trace::dfa::Dfa;
//!
//! let mut table = AccessTable::new();
//! let p = parse_program("read r @ s1 ; while x > 0 do { write r @ s2 }").unwrap();
//! let re = traces(&p, &mut table, AbstractionConfig::default());
//!
//! // Synthesize a (different) program with the same trace model …
//! let q = synthesize(&re, &table).unwrap();
//! let re2 = traces(&q, &mut table, AbstractionConfig::default());
//!
//! // … and verify language equality on minimal DFAs.
//! assert!(Dfa::equivalent_regexes(&re, &re2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod dfa;
pub mod enumerate;
pub mod extract;
pub mod hash;
pub mod model;
pub mod nfa;
pub mod regex;
pub mod symbol;
pub mod synthesis;
pub mod trace;

pub use abstraction::{traces, AbstractionConfig};
pub use dfa::Dfa;
pub use extract::dfa_to_regex;
pub use regex::Regex;
pub use symbol::{AccessId, AccessTable, Alphabet};
pub use trace::Trace;
