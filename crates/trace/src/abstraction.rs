//! `traces(p)` — abstraction of an SRAL program into its symbolic trace
//! model (Definition 3.2 of the paper).
//!
//! The rules are:
//!
//! ```text
//! traces(a)                    = {⟨a⟩}
//! traces(p1 ; p2)              = traces(p1) · traces(p2)
//! traces(if c then p1 else p2) = traces(p1) ∪ traces(p2)
//! traces(p1 || p2)             = traces(p1) # traces(p2)
//! traces(while c do p)         = traces(p)*
//! ```
//!
//! A trace records *shared-resource accesses* (§3.2: "we record the shared
//! resource accesses that are performed"), so channel, signal and
//! assignment actions abstract to ε by default. Setting
//! [`AbstractionConfig::observe_sync`] makes synchronisation operations
//! observable as pseudo-accesses — useful when constraints range over
//! coordination behaviour too.

use stacl_sral::{Access, Program};

use crate::regex::Regex;
use crate::symbol::AccessTable;

/// Options controlling which primitives are observable in the trace model.
#[derive(Clone, Copy, Debug, Default)]
pub struct AbstractionConfig {
    /// When true, `ch?x`, `ch!e`, `signal(ξ)` and `wait(ξ)` appear in
    /// traces as pseudo-accesses with operations `recv`/`send`/`signal`/
    /// `wait` on the synthetic server `<sync>`. Default: false.
    pub observe_sync: bool,
}

/// Compute the symbolic trace model of `p`, interning accesses in `table`.
pub fn traces(p: &Program, table: &mut AccessTable, cfg: AbstractionConfig) -> Regex {
    match p {
        Program::Skip | Program::Assign { .. } => Regex::Eps,
        Program::Access(a) => Regex::Sym(table.intern(a)),
        Program::Recv { channel, .. } => sync_sym(table, cfg, "recv", channel),
        Program::Send { channel, .. } => sync_sym(table, cfg, "send", channel),
        Program::Signal(s) => sync_sym(table, cfg, "signal", s),
        Program::Wait(s) => sync_sym(table, cfg, "wait", s),
        Program::Seq(a, b) => Regex::cat(traces(a, table, cfg), traces(b, table, cfg)),
        Program::If {
            then_branch,
            else_branch,
            ..
        } => Regex::alt(
            traces(then_branch, table, cfg),
            traces(else_branch, table, cfg),
        ),
        Program::While { body, .. } => Regex::star(traces(body, table, cfg)),
        Program::Par(a, b) => Regex::shuffle(traces(a, table, cfg), traces(b, table, cfg)),
    }
}

fn sync_sym(table: &mut AccessTable, cfg: AbstractionConfig, op: &str, name: &str) -> Regex {
    if cfg.observe_sync {
        Regex::Sym(table.intern(&Access::new(op, name, "<sync>")))
    } else {
        Regex::Eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::trace::Trace;
    use stacl_sral::builder::*;
    use stacl_sral::expr::{CmpOp, Cond, Expr};
    use stacl_sral::parser::parse_program;

    fn re_of(src: &str, table: &mut AccessTable) -> Regex {
        let p = parse_program(src).unwrap();
        traces(&p, table, AbstractionConfig::default())
    }

    #[test]
    fn single_access_is_symbol() {
        let mut t = AccessTable::new();
        let re = re_of("read r @ s", &mut t);
        assert!(matches!(re, Regex::Sym(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn seq_is_cat() {
        let mut t = AccessTable::new();
        let re = re_of("a r @ s ; b r @ s", &mut t);
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        let b = t.id_of(&Access::new("b", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::from_ids([a, b])));
        assert!(!d.accepts(&Trace::from_ids([b, a])));
        assert!(!d.accepts(&Trace::from_ids([a])));
    }

    #[test]
    fn if_is_union() {
        let mut t = AccessTable::new();
        let re = re_of("if x > 0 then { a r @ s } else { b r @ s }", &mut t);
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        let b = t.id_of(&Access::new("b", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::single(a)));
        assert!(d.accepts(&Trace::single(b)));
        assert!(!d.accepts(&Trace::from_ids([a, b])));
    }

    #[test]
    fn while_is_star() {
        let mut t = AccessTable::new();
        let re = re_of("while x > 0 do { a r @ s }", &mut t);
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::empty()));
        assert!(d.accepts(&Trace::from_ids([a, a, a])));
    }

    #[test]
    fn par_is_shuffle() {
        let mut t = AccessTable::new();
        let re = re_of("{ a r @ s ; b r @ s } || c r @ s", &mut t);
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        let b = t.id_of(&Access::new("b", "r", "s")).unwrap();
        let c = t.id_of(&Access::new("c", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::from_ids([a, b, c])));
        assert!(d.accepts(&Trace::from_ids([a, c, b])));
        assert!(d.accepts(&Trace::from_ids([c, a, b])));
        assert!(!d.accepts(&Trace::from_ids([b, a, c])));
    }

    #[test]
    fn sync_is_silent_by_default() {
        let mut t = AccessTable::new();
        let re = re_of("ch ? x ; signal(go) ; a r @ s ; ch ! x", &mut t);
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::single(a)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sync_observable_when_configured() {
        let mut t = AccessTable::new();
        let p = parse_program("signal(go) ; a r @ s").unwrap();
        let re = traces(&p, &mut t, AbstractionConfig { observe_sync: true });
        let d = Dfa::from_regex(&re);
        let sig = t.id_of(&Access::new("signal", "go", "<sync>")).unwrap();
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::from_ids([sig, a])));
        assert!(!d.accepts(&Trace::single(a)));
    }

    #[test]
    fn assignments_are_always_silent() {
        let mut t = AccessTable::new();
        let p = seq([assign("x", Expr::Int(1)), access("a", "r", "s")]);
        let re = traces(&p, &mut t, AbstractionConfig { observe_sync: true });
        let d = Dfa::from_regex(&re);
        let a = t.id_of(&Access::new("a", "r", "s")).unwrap();
        assert!(d.accepts(&Trace::single(a)));
    }

    #[test]
    fn loop_free_program_agrees_with_finite_oracle() {
        // Build a finite program, enumerate its trace model explicitly, and
        // compare with the DFA language.
        use crate::model::TraceModel;
        let mut t = AccessTable::new();
        let p = seq([
            access("a", "r", "s"),
            branch(
                Cond::cmp(CmpOp::Gt, Expr::var("x"), Expr::Int(0)),
                access("b", "r", "s"),
                access("c", "r", "s"),
            ),
            par([access("d", "r", "s"), access("e", "r", "s")]),
        ]);
        let re = traces(&p, &mut t, AbstractionConfig::default());
        let d = Dfa::from_regex(&re);

        let a = |op: &str| t.id_of(&Access::new(op, "r", "s")).unwrap();
        let m_a = TraceModel::single(a("a"));
        let m_bc = TraceModel::single(a("b")).union(&TraceModel::single(a("c")));
        let m_de = TraceModel::single(a("d")).interleave(&TraceModel::single(a("e")));
        let oracle = m_a.concat(&m_bc).concat(&m_de);

        // Every oracle trace is accepted …
        for tr in oracle.iter() {
            assert!(d.accepts(tr), "{tr}");
        }
        // … and the counts match (oracle: 1 × 2 × 2 = 4 traces, all of
        // length 4; DFA accepts exactly those among all length-≤4 words).
        assert_eq!(oracle.len(), 4);
        let words = crate::enumerate::enumerate_traces(&d, 4, 100);
        assert_eq!(words.len(), 4);
    }
}
