//! Bounded enumeration of the traces accepted by a DFA.
//!
//! Used by the test oracle (cross-checking symbolic results against the
//! finite [`TraceModel`](crate::model::TraceModel)) and by the E9 ablation
//! bench, which contrasts symbolic constraint checking with explicit
//! enumeration on programs whose trace sets explode.

use std::collections::VecDeque;

use crate::dfa::Dfa;
use crate::trace::Trace;

/// Enumerate accepted traces of `dfa` in length-lexicographic order, up to
/// `max_len` symbols per trace and at most `max_count` traces.
pub fn enumerate_traces(dfa: &Dfa, max_len: usize, max_count: usize) -> Vec<Trace> {
    let mut out = Vec::new();
    if max_count == 0 {
        return out;
    }
    let k = dfa.alphabet_len() as u32;
    // BFS over (state, word) — prefixes whose state is dead could be pruned
    // with a co-reachability precomputation; for oracle-sized runs BFS with
    // dead-state pruning via live set is enough.
    let live = live_states(dfa);
    let mut queue: VecDeque<(u32, Vec<u32>)> = VecDeque::new();
    queue.push_back((dfa.start, Vec::new()));
    while let Some((state, word)) = queue.pop_front() {
        if dfa.accept[state as usize] {
            out.push(Trace::from_ids(
                word.iter().map(|&sym| dfa.alphabet.id_at(sym)),
            ));
            if out.len() >= max_count {
                return out;
            }
        }
        if word.len() >= max_len {
            continue;
        }
        for sym in 0..k {
            let t = dfa.next(state, sym);
            if live[t as usize] {
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((t, w));
            }
        }
    }
    out
}

/// Count accepted traces of each length `0..=max_len` by dynamic
/// programming over the transition table — O(states × symbols × max_len).
pub fn count_traces_by_length(dfa: &Dfa, max_len: usize) -> Vec<u64> {
    let n = dfa.num_states();
    let k = dfa.alphabet_len() as u32;
    // paths[s] = number of words of current length leading start → s.
    let mut paths = vec![0u64; n];
    paths[dfa.start as usize] = 1;
    let mut counts = Vec::with_capacity(max_len + 1);
    for _len in 0..=max_len {
        let accepted: u64 = (0..n)
            .filter(|&s| dfa.accept[s])
            .map(|s| paths[s])
            .fold(0u64, u64::saturating_add);
        counts.push(accepted);
        let mut next = vec![0u64; n];
        for (s, &count) in paths.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for sym in 0..k {
                let t = dfa.next(s as u32, sym) as usize;
                next[t] = next[t].saturating_add(count);
            }
        }
        paths = next;
    }
    counts
}

/// States from which an accepting state is reachable.
fn live_states(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.num_states();
    let k = dfa.alphabet_len() as u32;
    // Reverse edges.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        for sym in 0..k {
            rev[dfa.next(s, sym) as usize].push(s);
        }
    }
    let mut live = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for (s, &accept) in dfa.accept.iter().enumerate().take(n) {
        if accept {
            live[s] = true;
            queue.push_back(s as u32);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &p in &rev[s as usize] {
            if !live[p as usize] {
                live[p as usize] = true;
                queue.push_back(p);
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::symbol::AccessId;

    fn sym(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    fn t(v: &[u32]) -> Trace {
        Trace::from_ids(v.iter().map(|&i| AccessId(i)))
    }

    #[test]
    fn enumerates_finite_language_completely() {
        let re = Regex::cat(sym(0), Regex::alt(sym(1), sym(2)));
        let d = Dfa::from_regex(&re);
        let ts = enumerate_traces(&d, 10, 100);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&t(&[0, 1])));
        assert!(ts.contains(&t(&[0, 2])));
    }

    #[test]
    fn respects_max_len() {
        let re = Regex::star(sym(0));
        let d = Dfa::from_regex(&re);
        let ts = enumerate_traces(&d, 3, 100);
        // ε, 0, 00, 000.
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn respects_max_count() {
        let re = Regex::star(sym(0));
        let d = Dfa::from_regex(&re);
        let ts = enumerate_traces(&d, 50, 5);
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn shortest_first_order() {
        let re = Regex::star(Regex::alt(sym(0), sym(1)));
        let d = Dfa::from_regex(&re);
        let ts = enumerate_traces(&d, 2, 100);
        let lens: Vec<_> = ts.iter().map(Trace::len).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(lens, sorted);
        // 1 + 2 + 4.
        assert_eq!(ts.len(), 7);
    }

    #[test]
    fn counts_by_length() {
        // (0 ∪ 1)* — 2^n words of each length n.
        let re = Regex::star(Regex::alt(sym(0), sym(1)));
        let d = Dfa::from_regex(&re);
        let counts = count_traces_by_length(&d, 5);
        assert_eq!(counts, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn counts_of_finite_language() {
        let re = Regex::cat(sym(0), sym(1));
        let d = Dfa::from_regex(&re);
        let counts = count_traces_by_length(&d, 4);
        assert_eq!(counts, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn empty_language_enumerates_nothing() {
        let d = Dfa::from_regex(&Regex::Empty);
        assert!(enumerate_traces(&d, 10, 10).is_empty());
        assert_eq!(count_traces_by_length(&d, 3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn shuffle_counts_are_binomial() {
        // (0·0) # (1·1): C(4,2) = 6 interleavings of length 4.
        let re = Regex::shuffle(Regex::cat(sym(0), sym(0)), Regex::cat(sym(1), sym(1)));
        let d = Dfa::from_regex(&re);
        let counts = count_traces_by_length(&d, 4);
        assert_eq!(counts[4], 6);
        assert_eq!(counts[0..4], [0, 0, 0, 0]);
    }
}
