//! Symbolic regular trace models: regexes over the access alphabet.
//!
//! Definition 3.3 defines regular trace models inductively from singletons
//! `{⟨a⟩}` under union, concatenation and Kleene closure. We add the
//! *shuffle* (interleaving) operator `#` used by Definition 3.2 for
//! parallel composition — shuffle preserves regularity, so this stays
//! within regular trace models.
//!
//! Constructors apply cheap algebraic normalisations (∅ and ε identities,
//! star idempotence) so that trivially-equal models compare equal without a
//! DFA build; full semantic equality lives in [`crate::dfa`].

use std::fmt;

use crate::symbol::{AccessId, AccessTable, Alphabet};

/// A regular trace model in symbolic form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// ∅ — the empty model: no traces.
    Empty,
    /// ε — the unit model: only the empty trace.
    Eps,
    /// `{⟨a⟩}` — a single access.
    Sym(AccessId),
    /// Union `m1 ∪ m2`.
    Alt(Box<Regex>, Box<Regex>),
    /// Concatenation `m1 · m2`.
    Cat(Box<Regex>, Box<Regex>),
    /// Kleene closure `m*`.
    Star(Box<Regex>),
    /// Interleaving `m1 # m2` (shuffle).
    Shuffle(Box<Regex>, Box<Regex>),
}

impl Regex {
    /// Smart union: `∅ ∪ m = m`, identical operands collapse.
    pub fn alt(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, m) | (m, Regex::Empty) => m,
            (x, y) if x == y => x,
            (x, y) => Regex::Alt(Box::new(x), Box::new(y)),
        }
    }

    /// Smart concatenation: `∅ · m = ∅`, `ε · m = m`.
    pub fn cat(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Eps, m) | (m, Regex::Eps) => m,
            (x, y) => Regex::Cat(Box::new(x), Box::new(y)),
        }
    }

    /// Smart star: `∅* = ε* = ε`, `(m*)* = m*`.
    pub fn star(a: Regex) -> Regex {
        match a {
            Regex::Empty | Regex::Eps => Regex::Eps,
            s @ Regex::Star(_) => s,
            m => Regex::Star(Box::new(m)),
        }
    }

    /// Smart shuffle: `∅ # m = ∅`, `ε # m = m`.
    pub fn shuffle(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Eps, m) | (m, Regex::Eps) => m,
            (x, y) => Regex::Shuffle(Box::new(x), Box::new(y)),
        }
    }

    /// Union of many operands.
    pub fn alt_all(parts: impl IntoIterator<Item = Regex>) -> Regex {
        parts.into_iter().fold(Regex::Empty, Regex::alt)
    }

    /// Concatenation of many operands.
    pub fn cat_all(parts: impl IntoIterator<Item = Regex>) -> Regex {
        parts.into_iter().fold(Regex::Eps, Regex::cat)
    }

    /// True when ε is in the model (the regex is *nullable*).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Eps | Regex::Star(_) => true,
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Cat(a, b) | Regex::Shuffle(a, b) => a.nullable() && b.nullable(),
        }
    }

    /// True when the model is semantically ∅ (no trace at all).
    pub fn is_void(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Eps | Regex::Sym(_) | Regex::Star(_) => false,
            Regex::Alt(a, b) => a.is_void() && b.is_void(),
            Regex::Cat(a, b) | Regex::Shuffle(a, b) => a.is_void() || b.is_void(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Eps | Regex::Sym(_) => 1,
            Regex::Alt(a, b) | Regex::Cat(a, b) | Regex::Shuffle(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) => 1 + a.size(),
        }
    }

    /// The distinct symbols mentioned, in first-occurrence order.
    pub fn alphabet(&self) -> Alphabet {
        let mut al = Alphabet::new();
        self.collect_symbols(&mut al);
        al
    }

    fn collect_symbols(&self, al: &mut Alphabet) {
        match self {
            Regex::Empty | Regex::Eps => {}
            Regex::Sym(a) => {
                al.insert(*a);
            }
            Regex::Alt(a, b) | Regex::Cat(a, b) | Regex::Shuffle(a, b) => {
                a.collect_symbols(al);
                b.collect_symbols(al);
            }
            Regex::Star(a) => a.collect_symbols(al),
        }
    }

    /// Render using `table` to resolve accesses.
    pub fn display<'a>(&'a self, table: &'a AccessTable) -> RegexDisplay<'a> {
        RegexDisplay { re: self, table }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Eps => write!(f, "ε"),
            Regex::Sym(a) => write!(f, "{a}"),
            Regex::Alt(a, b) => write!(f, "({a} ∪ {b})"),
            Regex::Cat(a, b) => write!(f, "({a} · {b})"),
            Regex::Star(a) => write!(f, "({a})*"),
            Regex::Shuffle(a, b) => write!(f, "({a} # {b})"),
        }
    }
}

/// Helper returned by [`Regex::display`] rendering accesses in full.
pub struct RegexDisplay<'a> {
    re: &'a Regex,
    table: &'a AccessTable,
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(re: &Regex, table: &AccessTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match re {
                Regex::Empty => write!(f, "∅"),
                Regex::Eps => write!(f, "ε"),
                Regex::Sym(a) => write!(f, "[{}]", table.resolve(*a)),
                Regex::Alt(a, b) => {
                    write!(f, "(")?;
                    go(a, table, f)?;
                    write!(f, " ∪ ")?;
                    go(b, table, f)?;
                    write!(f, ")")
                }
                Regex::Cat(a, b) => {
                    write!(f, "(")?;
                    go(a, table, f)?;
                    write!(f, " · ")?;
                    go(b, table, f)?;
                    write!(f, ")")
                }
                Regex::Star(a) => {
                    write!(f, "(")?;
                    go(a, table, f)?;
                    write!(f, ")*")
                }
                Regex::Shuffle(a, b) => {
                    write!(f, "(")?;
                    go(a, table, f)?;
                    write!(f, " # ")?;
                    go(b, table, f)?;
                    write!(f, ")")
                }
            }
        }
        go(self.re, self.table, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    #[test]
    fn smart_constructors_normalise() {
        assert_eq!(Regex::alt(Regex::Empty, s(1)), s(1));
        assert_eq!(Regex::alt(s(1), s(1)), s(1));
        assert_eq!(Regex::cat(Regex::Eps, s(1)), s(1));
        assert_eq!(Regex::cat(Regex::Empty, s(1)), Regex::Empty);
        assert_eq!(Regex::star(Regex::Empty), Regex::Eps);
        assert_eq!(Regex::star(Regex::star(s(1))), Regex::star(s(1)));
        assert_eq!(Regex::shuffle(Regex::Eps, s(1)), s(1));
        assert_eq!(Regex::shuffle(Regex::Empty, s(1)), Regex::Empty);
    }

    #[test]
    fn nullable_cases() {
        assert!(!s(1).nullable());
        assert!(Regex::Eps.nullable());
        assert!(Regex::star(s(1)).nullable());
        assert!(Regex::alt(s(1), Regex::Eps).nullable());
        assert!(!Regex::cat(s(1), Regex::star(s(2))).nullable());
        assert!(Regex::Shuffle(Box::new(Regex::Eps), Box::new(Regex::Eps)).nullable());
    }

    #[test]
    fn voidness() {
        assert!(Regex::Empty.is_void());
        assert!(!Regex::Eps.is_void());
        assert!(Regex::Cat(Box::new(s(1)), Box::new(Regex::Empty)).is_void());
        assert!(!Regex::alt(s(1), Regex::Empty).is_void());
    }

    #[test]
    fn alphabet_collection() {
        let re = Regex::cat(s(3), Regex::alt(s(1), Regex::star(s(3))));
        let al = re.alphabet();
        assert_eq!(al.len(), 2);
        assert_eq!(al.index_of(AccessId(3)), Some(0));
        assert_eq!(al.index_of(AccessId(1)), Some(1));
    }

    #[test]
    fn size_counts() {
        let re = Regex::cat_all([s(1), s(2), s(3)]);
        // Two Cat nodes + three symbols.
        assert_eq!(re.size(), 5);
    }

    #[test]
    fn display_forms() {
        let re = Regex::alt(s(1), Regex::star(s(2)));
        assert_eq!(re.to_string(), "(#1 ∪ (#2)*)");
    }
}
