//! Regex → SRAL program synthesis: the constructive content of
//! Theorem 3.1 (regular completeness).
//!
//! The theorem's induction is followed literally:
//!
//! * `{⟨a⟩}`   → the primitive access `a`;
//! * `m1 ∪ m2` → `if c then P1 else P2` for an opaque condition `c`;
//! * `m1 · m2` → `P1 ; P2`;
//! * `m*`      → `while c do P`;
//! * `m1 # m2` → `P1 || P2` (the parallel case of Definition 3.2).
//!
//! The conditions introduced for `if`/`while` are fresh opaque boolean
//! variables: the trace model deliberately ignores which branch is taken,
//! so any condition the synthesiser cannot statically resolve yields
//! exactly the union/star semantics required.

use stacl_sral::ast::name;
use stacl_sral::{Cond, Program};

use crate::regex::Regex;
use crate::symbol::AccessTable;

/// Errors from synthesis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SynthesisError {
    /// The empty trace model ∅ has no SRAL program: every program performs
    /// *some* trace (possibly ε), so `traces(P)` is never empty.
    EmptyModel,
    /// The regex mentions an access id not present in the table.
    UnknownAccess(crate::symbol::AccessId),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::EmptyModel => {
                write!(f, "the empty trace model has no SRAL program")
            }
            SynthesisError::UnknownAccess(id) => {
                write!(f, "access id {id} is not interned in the table")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Synthesize an SRAL program `P` with `traces(P)` equal to the model
/// denoted by `re`. Fails only on (sub)models that are semantically ∅.
pub fn synthesize(re: &Regex, table: &AccessTable) -> Result<Program, SynthesisError> {
    if re.is_void() {
        return Err(SynthesisError::EmptyModel);
    }
    let mut fresh = 0usize;
    go(re, table, &mut fresh)
}

fn fresh_cond(fresh: &mut usize) -> Cond {
    let c = Cond::Var(name(format!("c{}", *fresh)));
    *fresh += 1;
    c
}

fn go(re: &Regex, table: &AccessTable, fresh: &mut usize) -> Result<Program, SynthesisError> {
    match re {
        Regex::Empty => Err(SynthesisError::EmptyModel),
        Regex::Eps => Ok(Program::Skip),
        Regex::Sym(id) => {
            if id.index() >= table.len() {
                return Err(SynthesisError::UnknownAccess(*id));
            }
            Ok(Program::Access(table.resolve(*id).clone()))
        }
        Regex::Alt(a, b) => {
            // ∅ ∪ m = m: drop void operands instead of failing.
            match (a.is_void(), b.is_void()) {
                (true, true) => Err(SynthesisError::EmptyModel),
                (true, false) => go(b, table, fresh),
                (false, true) => go(a, table, fresh),
                (false, false) => {
                    let cond = fresh_cond(fresh);
                    let pa = go(a, table, fresh)?;
                    let pb = go(b, table, fresh)?;
                    Ok(Program::If {
                        cond,
                        then_branch: Box::new(pa),
                        else_branch: Box::new(pb),
                    })
                }
            }
        }
        Regex::Cat(a, b) => {
            let pa = go(a, table, fresh)?;
            let pb = go(b, table, fresh)?;
            Ok(pa.then(pb))
        }
        Regex::Star(a) => {
            if a.is_void() {
                // ∅* = ε.
                return Ok(Program::Skip);
            }
            let cond = fresh_cond(fresh);
            let body = go(a, table, fresh)?;
            Ok(Program::While {
                cond,
                body: Box::new(body),
            })
        }
        Regex::Shuffle(a, b) => {
            let pa = go(a, table, fresh)?;
            let pb = go(b, table, fresh)?;
            Ok(pa.par(pb))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{traces, AbstractionConfig};
    use crate::dfa::Dfa;
    use crate::symbol::AccessId;
    use stacl_sral::Access;

    fn table_with(n: u32) -> AccessTable {
        let mut t = AccessTable::new();
        for i in 0..n {
            t.intern(&Access::new(format!("op{i}"), "r", "s"));
        }
        t
    }

    fn sym(i: u32) -> Regex {
        Regex::Sym(AccessId(i))
    }

    /// The Theorem 3.1 statement as an executable check.
    fn roundtrip(re: &Regex, table: &AccessTable) {
        let p = synthesize(re, table).unwrap();
        let mut t2 = table.clone();
        let re2 = traces(&p, &mut t2, AbstractionConfig::default());
        assert!(
            Dfa::equivalent_regexes(re, &re2),
            "traces(synthesize({re})) = {re2} differs"
        );
    }

    #[test]
    fn singleton_base_case() {
        let t = table_with(1);
        roundtrip(&sym(0), &t);
        let p = synthesize(&sym(0), &t).unwrap();
        assert!(matches!(p, Program::Access(_)));
    }

    #[test]
    fn union_becomes_if() {
        let t = table_with(2);
        let re = Regex::alt(sym(0), sym(1));
        let p = synthesize(&re, &t).unwrap();
        assert!(matches!(p, Program::If { .. }));
        roundtrip(&re, &t);
    }

    #[test]
    fn concat_becomes_seq() {
        let t = table_with(2);
        let re = Regex::cat(sym(0), sym(1));
        roundtrip(&re, &t);
    }

    #[test]
    fn star_becomes_while() {
        let t = table_with(1);
        let re = Regex::star(sym(0));
        let p = synthesize(&re, &t).unwrap();
        assert!(matches!(p, Program::While { .. }));
        roundtrip(&re, &t);
    }

    #[test]
    fn shuffle_becomes_par() {
        let t = table_with(3);
        let re = Regex::shuffle(Regex::cat(sym(0), sym(1)), sym(2));
        let p = synthesize(&re, &t).unwrap();
        assert!(matches!(p, Program::Par(_, _)));
        roundtrip(&re, &t);
    }

    #[test]
    fn nested_model_roundtrips() {
        let t = table_with(4);
        let re = Regex::cat(
            Regex::star(Regex::alt(sym(0), Regex::cat(sym(1), sym(2)))),
            Regex::shuffle(sym(3), Regex::star(sym(0))),
        );
        roundtrip(&re, &t);
    }

    #[test]
    fn eps_becomes_skip() {
        let t = table_with(0);
        assert_eq!(synthesize(&Regex::Eps, &t).unwrap(), Program::Skip);
    }

    #[test]
    fn empty_model_fails() {
        let t = table_with(1);
        assert_eq!(
            synthesize(&Regex::Empty, &t),
            Err(SynthesisError::EmptyModel)
        );
        // Semantically-void compounds fail too.
        let void = Regex::Cat(Box::new(sym(0)), Box::new(Regex::Empty));
        assert_eq!(synthesize(&void, &t), Err(SynthesisError::EmptyModel));
    }

    #[test]
    fn void_alt_operand_is_dropped() {
        let t = table_with(1);
        let re = Regex::Alt(Box::new(sym(0)), Box::new(Regex::Empty));
        let p = synthesize(&re, &t).unwrap();
        assert!(matches!(p, Program::Access(_)));
    }

    #[test]
    fn star_of_void_is_skip() {
        let t = table_with(0);
        let re = Regex::Star(Box::new(Regex::Empty));
        assert_eq!(synthesize(&re, &t).unwrap(), Program::Skip);
    }

    #[test]
    fn unknown_access_rejected() {
        let t = table_with(1);
        assert_eq!(
            synthesize(&sym(9), &t),
            Err(SynthesisError::UnknownAccess(AccessId(9)))
        );
    }

    #[test]
    fn fresh_conditions_are_distinct() {
        let t = table_with(4);
        let re = Regex::alt(Regex::alt(sym(0), sym(1)), Regex::alt(sym(2), sym(3)));
        let p = synthesize(&re, &t).unwrap();
        let mut conds = Vec::new();
        fn collect(p: &Program, out: &mut Vec<String>) {
            if let Program::If {
                cond,
                then_branch,
                else_branch,
            } = p
            {
                out.push(cond.to_string());
                collect(then_branch, out);
                collect(else_branch, out);
            }
        }
        collect(&p, &mut conds);
        assert_eq!(conds.len(), 3);
        conds.sort();
        conds.dedup();
        assert_eq!(conds.len(), 3, "conditions must be fresh");
    }
}
