//! Interning of accesses into dense `u32` symbols.
//!
//! Automata over `(op, resource, server)` triples would chase pointers and
//! hash strings on every transition. Instead, accesses are interned once
//! into an [`AccessTable`], and all traces, regexes and automata operate on
//! [`AccessId`]s — plain `u32`s that index dense transition tables.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use stacl_sral::Access;

/// Global source of table-version stamps. Every *mutation* of any
/// [`AccessTable`] draws a fresh, process-unique stamp, so two tables
/// carry the same version only when one is an unmutated clone of the
/// other (or both are empty) — i.e. equal versions imply identical
/// id ↔ access mappings.
static NEXT_TABLE_VERSION: AtomicU64 = AtomicU64::new(1);

/// A dense identifier for an interned [`Access`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AccessId(pub u32);

impl AccessId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AccessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional interner between [`Access`]es and [`AccessId`]s.
///
/// The table only ever grows; ids are stable for the lifetime of the table,
/// so they can be stored in long-lived traces, proofs and automata.
#[derive(Clone, Default, Debug)]
pub struct AccessTable {
    by_access: HashMap<Access, AccessId>,
    by_id: Vec<Access>,
    /// Lineage stamp: 0 for a fresh empty table, otherwise the globally
    /// unique value drawn by the table's most recent new interning.
    /// Cloning copies the stamp (the clone has identical contents);
    /// equal stamps therefore guarantee identical id mappings, which is
    /// what incremental cursors check before trusting stored symbol
    /// indices against a caller-supplied table.
    version: u64,
}

impl AccessTable {
    /// An empty table.
    pub fn new() -> Self {
        AccessTable::default()
    }

    /// Intern `a`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, a: &Access) -> AccessId {
        if let Some(&id) = self.by_access.get(a) {
            return id;
        }
        let id = AccessId(
            u32::try_from(self.by_id.len()).expect("more than u32::MAX distinct accesses"),
        );
        self.by_access.insert(a.clone(), id);
        self.by_id.push(a.clone());
        self.version = NEXT_TABLE_VERSION.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// The table's lineage stamp (see the `version` field). Two tables
    /// with equal versions have identical contents; the converse does
    /// not hold (independently grown tables always differ).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Intern an access given its three components.
    pub fn intern_parts(
        &mut self,
        op: impl AsRef<str>,
        resource: impl AsRef<str>,
        server: impl AsRef<str>,
    ) -> AccessId {
        self.intern(&Access::new(op, resource, server))
    }

    /// Resolve an id back to its access. Panics on a foreign id.
    pub fn resolve(&self, id: AccessId) -> &Access {
        &self.by_id[id.index()]
    }

    /// The id of `a`, if it has been interned.
    pub fn id_of(&self, a: &Access) -> Option<AccessId> {
        self.by_access.get(a).copied()
    }

    /// Number of interned accesses.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(id, access)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AccessId, &Access)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, a)| (AccessId(i as u32), a))
    }
}

/// A *local* dense alphabet: the subset of interned accesses a particular
/// automaton ranges over, renumbered `0..len`.
///
/// Different programs/constraints mention different access subsets; using a
/// local alphabet keeps transition tables small. Automata built over
/// different alphabets are compared by first re-building them over the
/// union alphabet (see [`Alphabet::union`]).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Alphabet {
    ids: Vec<AccessId>,
    index: HashMap<AccessId, u32>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Build from an iterator of ids, deduplicating while preserving first
    /// occurrence order.
    pub fn from_ids(ids: impl IntoIterator<Item = AccessId>) -> Self {
        let mut al = Alphabet::new();
        for id in ids {
            al.insert(id);
        }
        al
    }

    /// Insert an id, returning its local index.
    pub fn insert(&mut self, id: AccessId) -> u32 {
        if let Some(&ix) = self.index.get(&id) {
            return ix;
        }
        let ix = self.ids.len() as u32;
        self.ids.push(id);
        self.index.insert(id, ix);
        ix
    }

    /// The local index of `id`, if present.
    pub fn index_of(&self, id: AccessId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// The global id at local index `ix`.
    pub fn id_at(&self, ix: u32) -> AccessId {
        self.ids[ix as usize]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterate over the global ids in local-index order.
    pub fn ids(&self) -> impl Iterator<Item = AccessId> + '_ {
        self.ids.iter().copied()
    }

    /// The union of two alphabets (left operand's order first).
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        let mut out = self.clone();
        for id in other.ids() {
            out.insert(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = AccessTable::new();
        let a = Access::new("read", "r1", "s1");
        let id1 = t.intern(&a);
        let id2 = t.intern(&a);
        assert_eq!(id1, id2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_accesses_get_distinct_ids() {
        let mut t = AccessTable::new();
        let i1 = t.intern_parts("read", "r1", "s1");
        let i2 = t.intern_parts("read", "r1", "s2");
        let i3 = t.intern_parts("write", "r1", "s1");
        assert_ne!(i1, i2);
        assert_ne!(i1, i3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut t = AccessTable::new();
        let a = Access::new("exec", "app", "s3");
        let id = t.intern(&a);
        assert_eq!(t.resolve(id), &a);
        assert_eq!(t.id_of(&a), Some(id));
        assert_eq!(t.id_of(&Access::new("x", "y", "z")), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = AccessTable::new();
        let i0 = t.intern_parts("a", "r", "s");
        let i1 = t.intern_parts("b", "r", "s");
        let pairs: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(pairs, vec![i0, i1]);
    }

    #[test]
    fn version_tracks_lineage() {
        let mut t = AccessTable::new();
        assert_eq!(t.version(), 0, "fresh empty tables stamp 0");
        t.intern_parts("read", "r1", "s1");
        let v1 = t.version();
        assert_ne!(v1, 0);
        // Re-interning an existing access does not change the contents
        // and must not change the stamp.
        t.intern_parts("read", "r1", "s1");
        assert_eq!(t.version(), v1);
        // A clone shares the stamp (identical contents) …
        let mut u = t.clone();
        assert_eq!(u.version(), v1);
        // … until either side diverges, which draws process-unique
        // stamps on both.
        u.intern_parts("write", "r1", "s1");
        t.intern_parts("exec", "r1", "s1");
        assert_ne!(u.version(), v1);
        assert_ne!(t.version(), v1);
        assert_ne!(t.version(), u.version());
    }

    #[test]
    fn independently_grown_tables_never_share_versions() {
        let mut a = AccessTable::new();
        let mut b = AccessTable::new();
        a.intern_parts("read", "r", "s");
        b.intern_parts("read", "r", "s");
        // Same contents, but no clone lineage: stamps differ, so cursors
        // built against one can never be replayed against the other.
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn alphabet_dedupes_and_orders() {
        let al = Alphabet::from_ids([AccessId(5), AccessId(3), AccessId(5)]);
        assert_eq!(al.len(), 2);
        assert_eq!(al.index_of(AccessId(5)), Some(0));
        assert_eq!(al.index_of(AccessId(3)), Some(1));
        assert_eq!(al.id_at(1), AccessId(3));
    }

    #[test]
    fn alphabet_union() {
        let a = Alphabet::from_ids([AccessId(1), AccessId(2)]);
        let b = Alphabet::from_ids([AccessId(2), AccessId(7)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.index_of(AccessId(7)), Some(2));
    }
}
