//! A Duration Calculus fragment with a decision procedure over
//! step-function interpretations.
//!
//! Theorem 4.1 of the paper rests on the decidability of Duration Calculus
//! over finitely-variable interpretations. This module makes that concrete
//! for the fragment the access-control model needs:
//!
//! ```text
//! S ::= atom | ¬S | S ∧ S | S ∨ S              -- state expressions
//! F ::= ∫S ⋈ c   (⋈ ∈ {<, ≤, =, ≥, >})          -- duration comparisons
//!     | ⌈S⌉                                     -- S holds throughout
//!     | ⌈⌉                                      -- point interval
//!     | F ⌢ F                                   -- chop
//!     | F ∧ F | F ∨ F | ¬F
//! ```
//!
//! Formulas are evaluated on a closed interval `[b, e]` against an
//! interpretation mapping atoms to [`StepFn`]s. For the *chop* operator the
//! decision procedure must search for a split point `m ∈ [b, e]`; with
//! piecewise-constant interpretations a finite set of candidate points
//! suffices — every change point in `[b,e]`, the endpoints, and (for
//! duration comparisons against constants) the points where an integral
//! crosses a threshold. We enumerate change points, endpoints, and the
//! threshold-crossing points of every `∫S ⋈ c` subformula, which is
//! complete for this fragment.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::step::StepFn;
use crate::time::TimePoint;

/// A state expression: a boolean combination of named state atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StateExpr {
    /// A named atomic state (resolved by the interpretation).
    Atom(String),
    /// Negation.
    Not(Box<StateExpr>),
    /// Conjunction.
    And(Box<StateExpr>, Box<StateExpr>),
    /// Disjunction.
    Or(Box<StateExpr>, Box<StateExpr>),
}

impl StateExpr {
    /// Shorthand for an atom.
    pub fn atom(name: impl Into<String>) -> Self {
        StateExpr::Atom(name.into())
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        StateExpr::Not(Box::new(self))
    }

    /// `self ∧ rhs`.
    pub fn and(self, rhs: StateExpr) -> Self {
        StateExpr::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: StateExpr) -> Self {
        StateExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// Resolve to a concrete step function under `interp`. Unknown atoms
    /// resolve to the constant 0 (absent state never holds).
    pub fn resolve(&self, interp: &Interpretation) -> StepFn {
        match self {
            StateExpr::Atom(name) => interp
                .atoms
                .get(name)
                .cloned()
                .unwrap_or_else(|| StepFn::constant(false)),
            StateExpr::Not(s) => s.resolve(interp).not(),
            StateExpr::And(a, b) => a.resolve(interp).and(&b.resolve(interp)),
            StateExpr::Or(a, b) => a.resolve(interp).or(&b.resolve(interp)),
        }
    }
}

/// Comparison operators for duration formulas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DurCmp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=` (up to 1e-9 absolute tolerance).
    Eq,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl DurCmp {
    fn apply(self, lhs: f64, rhs: f64) -> bool {
        const TOL: f64 = 1e-9;
        match self {
            DurCmp::Lt => lhs < rhs - TOL,
            DurCmp::Le => lhs <= rhs + TOL,
            DurCmp::Eq => (lhs - rhs).abs() <= TOL,
            DurCmp::Ge => lhs >= rhs - TOL,
            DurCmp::Gt => lhs > rhs + TOL,
        }
    }
}

/// A Duration Calculus formula.
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// `∫S ⋈ c` — the accumulated duration of `S` compares to `c`.
    Dur(StateExpr, DurCmp, f64),
    /// `⌈S⌉` — the interval is non-point and `S` holds throughout it.
    Everywhere(StateExpr),
    /// `⌈⌉` — the interval is a single point (`b = e`).
    Point,
    /// Chop: the interval splits into two adjacent parts satisfying the
    /// operands in order.
    Chop(Box<Formula>, Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ⌢ rhs` (chop).
    pub fn chop(self, rhs: Formula) -> Formula {
        Formula::Chop(Box::new(self), Box::new(rhs))
    }
}

/// An interpretation: state atoms to step functions.
#[derive(Clone, Default, Debug)]
pub struct Interpretation {
    atoms: HashMap<String, StepFn>,
}

impl Interpretation {
    /// The empty interpretation (all atoms constant 0).
    pub fn new() -> Self {
        Interpretation::default()
    }

    /// Bind an atom.
    pub fn bind(mut self, name: impl Into<String>, f: StepFn) -> Self {
        self.atoms.insert(name.into(), f);
        self
    }

    /// Bind an atom in place.
    pub fn set(&mut self, name: impl Into<String>, f: StepFn) {
        self.atoms.insert(name.into(), f);
    }
}

/// Decide `interp, [b, e] ⊨ formula`.
pub fn eval(formula: &Formula, interp: &Interpretation, b: TimePoint, e: TimePoint) -> bool {
    assert!(b <= e, "interval must be ordered");
    match formula {
        Formula::Dur(s, cmp, c) => {
            let f = s.resolve(interp);
            cmp.apply(f.integral(b, e).seconds(), *c)
        }
        Formula::Everywhere(s) => s.resolve(interp).holds_throughout(b, e),
        Formula::Point => b == e,
        Formula::And(f1, f2) => eval(f1, interp, b, e) && eval(f2, interp, b, e),
        Formula::Or(f1, f2) => eval(f1, interp, b, e) || eval(f2, interp, b, e),
        Formula::Not(f1) => !eval(f1, interp, b, e),
        Formula::Chop(f1, f2) => chop_points(formula, interp, b, e)
            .into_iter()
            .any(|m| eval(f1, interp, b, m) && eval(f2, interp, m, e)),
    }
}

/// Candidate chop points for `[b, e]`: the endpoints, every change point of
/// every atom mentioned anywhere under the chop, and every point where the
/// running integral of a `Dur` subformula's state expression reaches its
/// threshold. Complete for piecewise-constant interpretations: between two
/// consecutive candidates every `Dur`/`Everywhere` value is monotone or
/// constant in the split position, so a satisfying split can always be slid
/// to a candidate.
fn chop_points(
    formula: &Formula,
    interp: &Interpretation,
    b: TimePoint,
    e: TimePoint,
) -> Vec<TimePoint> {
    let mut points: BTreeSet<TimePoint> = BTreeSet::new();
    points.insert(b);
    points.insert(e);

    let mut states = Vec::new();
    let mut thresholds = Vec::new();
    collect(formula, &mut states, &mut thresholds);

    for s in &states {
        let f = s.resolve(interp);
        for &c in f.changes() {
            if c > b && c < e {
                points.insert(c);
            }
        }
    }
    // Threshold crossings: find t with ∫_b^t S = c (from either side of the
    // chop, so also ∫_t^e S = c i.e. ∫_b^t S = total - c).
    for (s, c) in &thresholds {
        let f = s.resolve(interp);
        let total = f.integral(b, e).seconds();
        for target in [*c, total - *c] {
            if let Some(t) = integral_inverse(&f, b, e, target) {
                points.insert(t);
            }
        }
    }
    points.into_iter().collect()
}

fn collect<'a>(
    f: &'a Formula,
    states: &mut Vec<&'a StateExpr>,
    thresholds: &mut Vec<(&'a StateExpr, f64)>,
) {
    match f {
        Formula::Dur(s, _, c) => {
            states.push(s);
            thresholds.push((s, *c));
        }
        Formula::Everywhere(s) => states.push(s),
        Formula::Point => {}
        Formula::Chop(a, b) | Formula::And(a, b) | Formula::Or(a, b) => {
            collect(a, states, thresholds);
            collect(b, states, thresholds);
        }
        Formula::Not(a) => collect(a, states, thresholds),
    }
}

/// The earliest `t ∈ [b, e]` with `∫_b^t f = target`, if it exists.
fn integral_inverse(f: &StepFn, b: TimePoint, e: TimePoint, target: f64) -> Option<TimePoint> {
    if target < 0.0 || target > f.integral(b, e).seconds() + 1e-12 {
        return None;
    }
    if target <= 1e-12 {
        // ∫_b^b f = 0: the earliest solution is b itself.
        return Some(b);
    }
    let mut acc = 0.0f64;
    let mut cur = b;
    let mut val = f.at(b);
    let start = f.changes().partition_point(|&c| c <= b);
    for &c in &f.changes()[start..] {
        let c = c.min(e);
        let seg = (c - cur).seconds();
        if val && acc + seg >= target {
            return Some(cur + crate::time::TimeDelta::new(target - acc));
        }
        if val {
            acc += seg;
        }
        cur = c;
        val = !val;
        if cur == e {
            break;
        }
    }
    if val {
        let seg = (e - cur).seconds();
        if acc + seg >= target - 1e-12 {
            return Some(cur + crate::time::TimeDelta::new((target - acc).min(seg)));
        }
    }
    if acc >= target - 1e-12 {
        Some(e)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    fn busy_interp() -> Interpretation {
        // busy on [1,3) ∪ [5,6).
        Interpretation::new().bind(
            "busy",
            StepFn::from_changes(false, vec![tp(1.0), tp(3.0), tp(5.0), tp(6.0)]),
        )
    }

    #[test]
    fn duration_comparisons() {
        let i = busy_interp();
        let s = StateExpr::atom("busy");
        assert!(eval(
            &Formula::Dur(s.clone(), DurCmp::Eq, 3.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
        assert!(eval(
            &Formula::Dur(s.clone(), DurCmp::Le, 3.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
        assert!(!eval(
            &Formula::Dur(s.clone(), DurCmp::Gt, 3.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
        assert!(eval(
            &Formula::Dur(s, DurCmp::Lt, 1.5),
            &i,
            tp(0.0),
            tp(2.0)
        ));
    }

    #[test]
    fn everywhere_and_point() {
        let i = busy_interp();
        let s = StateExpr::atom("busy");
        assert!(eval(&Formula::Everywhere(s.clone()), &i, tp(1.0), tp(3.0)));
        assert!(!eval(&Formula::Everywhere(s.clone()), &i, tp(0.5), tp(3.0)));
        assert!(eval(&Formula::Point, &i, tp(2.0), tp(2.0)));
        assert!(!eval(&Formula::Point, &i, tp(2.0), tp(3.0)));
        // ⌈S⌉ is false on point intervals by definition.
        assert!(!eval(&Formula::Everywhere(s), &i, tp(2.0), tp(2.0)));
    }

    #[test]
    fn state_boolean_ops() {
        let i = Interpretation::new()
            .bind("a", StepFn::pulse(tp(0.0), tp(4.0)))
            .bind("b", StepFn::pulse(tp(2.0), tp(6.0)));
        let both = StateExpr::atom("a").and(StateExpr::atom("b"));
        assert!(eval(
            &Formula::Dur(both, DurCmp::Eq, 2.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
        let either = StateExpr::atom("a").or(StateExpr::atom("b"));
        assert!(eval(
            &Formula::Dur(either, DurCmp::Eq, 6.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
        let neither = StateExpr::atom("a").or(StateExpr::atom("b")).not();
        assert!(eval(
            &Formula::Dur(neither, DurCmp::Eq, 4.0),
            &i,
            tp(0.0),
            tp(10.0)
        ));
    }

    #[test]
    fn unknown_atom_is_constant_false() {
        let i = Interpretation::new();
        assert!(eval(
            &Formula::Dur(StateExpr::atom("ghost"), DurCmp::Eq, 0.0),
            &i,
            tp(0.0),
            tp(5.0)
        ));
    }

    #[test]
    fn chop_splits_at_state_change() {
        let i = busy_interp();
        // [0,10] = [0,m] with busy nowhere ⌢ [m,10] with busy somewhere;
        // m = 1 works (busy starts at 1).
        let f = Formula::Dur(StateExpr::atom("busy"), DurCmp::Eq, 0.0).chop(Formula::Dur(
            StateExpr::atom("busy"),
            DurCmp::Eq,
            3.0,
        ));
        assert!(eval(&f, &i, tp(0.0), tp(10.0)));
    }

    #[test]
    fn chop_with_threshold_crossing_split() {
        let i = busy_interp();
        // Split such that each half carries exactly 1.5 of busy-time: the
        // split is at t = 2.5, mid-segment — found via integral inversion.
        let f = Formula::Dur(StateExpr::atom("busy"), DurCmp::Eq, 1.5).chop(Formula::Dur(
            StateExpr::atom("busy"),
            DurCmp::Eq,
            1.5,
        ));
        assert!(eval(&f, &i, tp(0.0), tp(10.0)));
    }

    #[test]
    fn chop_unsatisfiable() {
        let i = busy_interp();
        // No split can put 4.0 busy-units on the left: total is 3.
        let f = Formula::Dur(StateExpr::atom("busy"), DurCmp::Ge, 4.0).chop(Formula::Dur(
            StateExpr::atom("busy"),
            DurCmp::Ge,
            0.0,
        ));
        assert!(!eval(&f, &i, tp(0.0), tp(10.0)));
    }

    #[test]
    fn chop_point_neutrality() {
        // F ⌢ ⌈⌉ should hold whenever F holds (split at e).
        let i = busy_interp();
        let f = Formula::Dur(StateExpr::atom("busy"), DurCmp::Eq, 3.0).chop(Formula::Point);
        assert!(eval(&f, &i, tp(0.0), tp(10.0)));
    }

    #[test]
    fn nested_chop() {
        let i = busy_interp();
        // idle ⌢ busy-block ⌢ anything: [0,1) idle, [1,3) busy, rest.
        let idle = Formula::Everywhere(StateExpr::atom("busy").not());
        let busy = Formula::Everywhere(StateExpr::atom("busy"));
        let any = Formula::Dur(StateExpr::atom("busy"), DurCmp::Ge, 0.0);
        let f = idle.chop(busy.chop(any));
        assert!(eval(&f, &i, tp(0.0), tp(10.0)));
    }

    #[test]
    fn negation_of_chop() {
        let i = busy_interp();
        // ¬(true ⌢ ⌈busy⌉): no suffix interval is all-busy — false here
        // because the suffix [5,6] is all busy... choose interval [0,4]:
        // suffix [1,3] ⊆ [0,4] all busy exists, but chop needs suffix
        // ending at e=4 — [3,4] is idle, [2,4] mixed; the longest all-busy
        // suffix would need to end at 4: impossible. So the chop is false
        // and its negation true.
        let any = Formula::Dur(StateExpr::atom("busy"), DurCmp::Ge, 0.0);
        let f = any.chop(Formula::Everywhere(StateExpr::atom("busy"))).not();
        assert!(eval(&f, &i, tp(0.0), tp(4.0)));
    }

    #[test]
    fn integral_inverse_edges() {
        let f = StepFn::pulse(tp(1.0), tp(3.0));
        assert_eq!(integral_inverse(&f, tp(0.0), tp(5.0), 0.0), Some(tp(0.0)));
        assert_eq!(integral_inverse(&f, tp(0.0), tp(5.0), 1.0), Some(tp(2.0)));
        assert_eq!(integral_inverse(&f, tp(0.0), tp(5.0), 2.0), Some(tp(3.0)));
        assert_eq!(integral_inverse(&f, tp(0.0), tp(5.0), 2.5), None);
    }

    #[test]
    fn eq_41_shape_as_dc_formula() {
        // The paper's temporal constraint: over the object's lifetime the
        // valid-duration stays ≤ dur(perm) = 2.0.
        let valid = StepFn::pulse(tp(0.0), tp(2.0));
        let i = Interpretation::new().bind("valid", valid);
        let f = Formula::Dur(StateExpr::atom("valid"), DurCmp::Le, 2.0);
        assert!(eval(&f, &i, tp(0.0), tp(100.0)));
    }
}
