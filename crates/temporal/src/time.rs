//! Time newtypes: points on the continuous time line and deltas between
//! them.
//!
//! The paper's time model is ℝ with `<`; we represent it by finite `f64`s.
//! Constructors reject NaN/∞ so that ordering is total and integrals are
//! well-defined; the newtypes implement `Ord` on that guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the continuous time line (seconds, by convention).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct TimePoint(f64);

/// A (possibly negative) length of time.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct TimeDelta(f64);

impl TimePoint {
    /// The origin of the time line.
    pub const ZERO: TimePoint = TimePoint(0.0);

    /// Construct from seconds. Panics on NaN or infinity.
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "TimePoint must be finite: {seconds}");
        TimePoint(seconds)
    }

    /// The raw seconds value.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The maximum of two time points.
    pub fn max(self, other: TimePoint) -> TimePoint {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The minimum of two time points.
    pub fn min(self, other: TimePoint) -> TimePoint {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl TimeDelta {
    /// The zero delta.
    pub const ZERO: TimeDelta = TimeDelta(0.0);

    /// Construct from seconds. Panics on NaN or infinity.
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "TimeDelta must be finite: {seconds}");
        TimeDelta(seconds)
    }

    /// The raw seconds value.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// True for non-negative deltas.
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }
}

// `Eq`/`Ord` are sound because constructors exclude NaN.
impl Eq for TimePoint {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for TimePoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("TimePoint is always finite")
    }
}

impl Eq for TimeDelta {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for TimeDelta {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("TimeDelta is always finite")
    }
}

impl Add<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: TimeDelta) -> TimePoint {
        TimePoint::new(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimePoint {
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = TimeDelta;
    fn sub(self, rhs: TimePoint) -> TimeDelta {
        TimeDelta::new(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta::new(self.0 + rhs.0)
    }
}

impl Sub<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta::new(self.0 - rhs.0)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = TimePoint::new(2.0);
        let b = TimePoint::new(5.5);
        assert_eq!(b - a, TimeDelta::new(3.5));
        assert_eq!(a + TimeDelta::new(1.0), TimePoint::new(3.0));
        assert_eq!(
            TimeDelta::new(1.0) + TimeDelta::new(2.0),
            TimeDelta::new(3.0)
        );
    }

    #[test]
    fn ordering_total() {
        let mut v = [
            TimePoint::new(3.0),
            TimePoint::new(-1.0),
            TimePoint::new(0.0),
        ];
        v.sort();
        assert_eq!(v[0], TimePoint::new(-1.0));
        assert_eq!(v[2], TimePoint::new(3.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = TimePoint::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = TimeDelta::new(f64::INFINITY);
    }

    #[test]
    fn min_max() {
        let a = TimePoint::new(1.0);
        let b = TimePoint::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn negative_delta() {
        let d = TimePoint::new(1.0) - TimePoint::new(3.0);
        assert!(!d.is_non_negative());
        assert_eq!(d.seconds(), -2.0);
    }
}
