//! Piecewise-constant boolean functions of time — the paper's
//! `Time → {0, 1}` state functions (§4, after \[11\]).
//!
//! A [`StepFn`] is an initial value plus a sorted list of change points:
//! the function holds `initial` on `(-∞, c₀)` and flips at every change
//! point (values are right-continuous: at a change point the *new* value
//! holds). Boolean algebra is computed by a merge sweep over the change
//! points, and integrals (the paper's `∫ valid(perm, t) dt`) are exact sums
//! of segment lengths — no numeric quadrature anywhere.

use std::fmt;

use crate::time::{TimeDelta, TimePoint};

/// A piecewise-constant boolean function over the whole time line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepFn {
    /// Value on `(-∞, first change)`.
    initial: bool,
    /// Strictly-increasing change points; the value flips at each.
    changes: Vec<TimePoint>,
}

impl StepFn {
    /// The constant function.
    pub fn constant(value: bool) -> Self {
        StepFn {
            initial: value,
            changes: Vec::new(),
        }
    }

    /// 1 on `[from, to)`, 0 elsewhere. Empty/inverted intervals give the
    /// constant 0.
    pub fn pulse(from: TimePoint, to: TimePoint) -> Self {
        if from >= to {
            return StepFn::constant(false);
        }
        StepFn {
            initial: false,
            changes: vec![from, to],
        }
    }

    /// 1 on `[from, ∞)`, 0 before.
    pub fn from_onward(from: TimePoint) -> Self {
        StepFn {
            initial: false,
            changes: vec![from],
        }
    }

    /// Build from an explicit initial value and change points. Change
    /// points are sorted and deduplicated (an even number of repeats
    /// cancels; an odd number acts once).
    pub fn from_changes(initial: bool, mut changes: Vec<TimePoint>) -> Self {
        changes.sort();
        // Collapse equal change points in pairs (flip twice = no flip).
        let mut out: Vec<TimePoint> = Vec::with_capacity(changes.len());
        for c in changes {
            if out.last() == Some(&c) {
                out.pop();
            } else {
                out.push(c);
            }
        }
        StepFn {
            initial,
            changes: out,
        }
    }

    /// The union of half-open windows `[start, end)` as a step function —
    /// the lowering target for calendar-window (cron) attribute policies.
    /// Windows may overlap or abut in any order; a depth sweep over the
    /// endpoints emits a change point only where coverage crosses zero,
    /// so overlapping windows merge instead of cancelling (which is why
    /// this is not [`StepFn::from_changes`]). Empty/inverted windows are
    /// ignored.
    pub fn from_windows(windows: impl IntoIterator<Item = (TimePoint, TimePoint)>) -> Self {
        let mut events: Vec<(TimePoint, i32)> = Vec::new();
        for (start, end) in windows {
            if start < end {
                events.push((start, 1));
                events.push((end, -1));
            }
        }
        // Starts before ends at equal times, so abutting windows
        // ([1,2) ∪ [2,3)) never emit a spurious zero-width gap.
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1)));
        let mut changes = Vec::new();
        let mut depth = 0i32;
        for (t, delta) in events {
            let was_covered = depth > 0;
            depth += delta;
            let covered = depth > 0;
            if covered != was_covered {
                if changes.last() == Some(&t) {
                    changes.pop();
                } else {
                    changes.push(t);
                }
            }
        }
        StepFn {
            initial: false,
            changes,
        }
    }

    /// The value at time `t` (right-continuous).
    pub fn at(&self, t: TimePoint) -> bool {
        // Number of change points ≤ t.
        let flips = self.changes.partition_point(|&c| c <= t);
        self.initial ^ (flips % 2 == 1)
    }

    /// The change points.
    pub fn changes(&self) -> &[TimePoint] {
        &self.changes
    }

    /// The initial (t → -∞) value.
    pub fn initial(&self) -> bool {
        self.initial
    }

    /// Pointwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(&self) -> StepFn {
        StepFn {
            initial: !self.initial,
            changes: self.changes.clone(),
        }
    }

    /// Pointwise AND.
    pub fn and(&self, other: &StepFn) -> StepFn {
        self.merge(other, |a, b| a && b)
    }

    /// Pointwise OR.
    pub fn or(&self, other: &StepFn) -> StepFn {
        self.merge(other, |a, b| a || b)
    }

    /// Pointwise XOR.
    pub fn xor(&self, other: &StepFn) -> StepFn {
        self.merge(other, |a, b| a != b)
    }

    /// Generic pointwise combination by a sweep over both change lists.
    fn merge(&self, other: &StepFn, f: impl Fn(bool, bool) -> bool) -> StepFn {
        let mut changes = Vec::new();
        let mut va = self.initial;
        let mut vb = other.initial;
        let initial = f(va, vb);
        let mut last = initial;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.changes.len() || j < other.changes.len() {
            let ta = self.changes.get(i).copied();
            let tb = other.changes.get(j).copied();
            let t = match (ta, tb) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!(),
            };
            if ta == Some(t) {
                va = !va;
                i += 1;
            }
            if tb == Some(t) {
                vb = !vb;
                j += 1;
            }
            let v = f(va, vb);
            if v != last {
                changes.push(t);
                last = v;
            }
        }
        StepFn { initial, changes }
    }

    /// The exact integral `∫_b^e f(t) dt` — total length within `[b, e]`
    /// where the function is 1. Returns zero for inverted intervals.
    pub fn integral(&self, b: TimePoint, e: TimePoint) -> TimeDelta {
        if e <= b {
            return TimeDelta::ZERO;
        }
        let mut total = 0.0f64;
        let mut cur = b;
        let mut val = self.at(b);
        // Walk change points inside (b, e].
        let start = self.changes.partition_point(|&c| c <= b);
        for &c in &self.changes[start..] {
            if c >= e {
                break;
            }
            if val {
                total += (c - cur).seconds();
            }
            cur = c;
            val = !val;
        }
        if val {
            total += (e - cur).seconds();
        }
        TimeDelta::new(total)
    }

    /// The earliest `t ≥ from` with `f(t) = target`, if any change
    /// accomplishes it (`None` when the function never attains the value
    /// at or after `from`).
    pub fn next_time_with_value(&self, from: TimePoint, target: bool) -> Option<TimePoint> {
        if self.at(from) == target {
            return Some(from);
        }
        let start = self.changes.partition_point(|&c| c <= from);
        // Values alternate after each change; the very next change gives
        // the opposite of the current value, i.e. `target`.
        self.changes.get(start).copied()
    }

    /// True when the function is 1 everywhere on the *open* interval
    /// `(b, e)` — the Duration Calculus `⌈S⌉` on `[b,e]`.
    pub fn holds_throughout(&self, b: TimePoint, e: TimePoint) -> bool {
        if e <= b {
            return false; // point or inverted interval: ⌈S⌉ needs b < e.
        }
        // 1 a.e. on (b,e) for a step function means: value 1 at every
        // point of (b,e); equivalently the integral equals the length.
        (self.integral(b, e).seconds() - (e - b).seconds()).abs() < f64::EPSILON * 8.0
    }
}

impl fmt::Display for StepFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.initial { 1 } else { 0 })?;
        for c in &self.changes {
            write!(f, " ⇄{}", c.seconds())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn constant_everywhere() {
        let one = StepFn::constant(true);
        assert!(one.at(tp(-100.0)));
        assert!(one.at(tp(100.0)));
        assert_eq!(one.integral(tp(0.0), tp(10.0)), TimeDelta::new(10.0));
        assert_eq!(
            StepFn::constant(false).integral(tp(0.0), tp(10.0)),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn pulse_right_continuous() {
        let p = StepFn::pulse(tp(1.0), tp(3.0));
        assert!(!p.at(tp(0.999)));
        assert!(p.at(tp(1.0)), "value at the change point is the new value");
        assert!(p.at(tp(2.9)));
        assert!(!p.at(tp(3.0)));
        assert_eq!(p.integral(tp(0.0), tp(10.0)), TimeDelta::new(2.0));
    }

    #[test]
    fn degenerate_pulse_is_zero() {
        assert_eq!(StepFn::pulse(tp(2.0), tp(2.0)), StepFn::constant(false));
        assert_eq!(StepFn::pulse(tp(3.0), tp(2.0)), StepFn::constant(false));
    }

    #[test]
    fn from_changes_cancels_duplicates() {
        let f = StepFn::from_changes(false, vec![tp(1.0), tp(1.0), tp(2.0)]);
        assert_eq!(f, StepFn::from_onward(tp(2.0)));
        let g = StepFn::from_changes(false, vec![tp(1.0), tp(1.0), tp(1.0)]);
        assert_eq!(g, StepFn::from_onward(tp(1.0)));
    }

    #[test]
    fn from_windows_merges_overlaps_and_abutments() {
        // Overlapping windows merge into one pulse.
        let f = StepFn::from_windows([(tp(1.0), tp(4.0)), (tp(3.0), tp(6.0))]);
        assert_eq!(f, StepFn::pulse(tp(1.0), tp(6.0)));
        // Abutting windows fuse without a zero-width gap.
        let g = StepFn::from_windows([(tp(1.0), tp(2.0)), (tp(2.0), tp(3.0))]);
        assert_eq!(g, StepFn::pulse(tp(1.0), tp(3.0)));
        // Disjoint windows stay disjoint, whatever the input order.
        let h = StepFn::from_windows([(tp(4.0), tp(5.0)), (tp(0.0), tp(1.0))]);
        assert_eq!(
            h,
            StepFn::from_changes(false, vec![tp(0.0), tp(1.0), tp(4.0), tp(5.0)])
        );
        // Empty and inverted windows contribute nothing.
        let e = StepFn::from_windows([(tp(2.0), tp(2.0)), (tp(5.0), tp(1.0))]);
        assert_eq!(e, StepFn::constant(false));
        // Equals the OR-fold of the individual pulses.
        let windows = [(tp(0.0), tp(2.5)), (tp(2.0), tp(3.0)), (tp(7.0), tp(8.0))];
        let folded = windows
            .iter()
            .fold(StepFn::constant(false), |acc, &(s, e)| {
                acc.or(&StepFn::pulse(s, e))
            });
        assert_eq!(StepFn::from_windows(windows), folded);
    }

    #[test]
    fn boolean_algebra() {
        let a = StepFn::pulse(tp(0.0), tp(2.0));
        let b = StepFn::pulse(tp(1.0), tp(3.0));
        let both = a.and(&b);
        assert_eq!(both, StepFn::pulse(tp(1.0), tp(2.0)));
        let either = a.or(&b);
        assert_eq!(either, StepFn::pulse(tp(0.0), tp(3.0)));
        let exactly_one = a.xor(&b);
        assert!(exactly_one.at(tp(0.5)));
        assert!(!exactly_one.at(tp(1.5)));
        assert!(exactly_one.at(tp(2.5)));
        assert_eq!(exactly_one.integral(tp(-1.0), tp(4.0)), TimeDelta::new(2.0));
    }

    #[test]
    fn de_morgan() {
        let a = StepFn::pulse(tp(0.0), tp(2.0));
        let b = StepFn::pulse(tp(1.0), tp(3.0));
        let lhs = a.and(&b).not();
        let rhs = a.not().or(&b.not());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn integral_partial_overlap() {
        let p = StepFn::pulse(tp(1.0), tp(5.0));
        assert_eq!(p.integral(tp(2.0), tp(3.0)), TimeDelta::new(1.0));
        assert_eq!(p.integral(tp(0.0), tp(2.0)), TimeDelta::new(1.0));
        assert_eq!(p.integral(tp(4.0), tp(9.0)), TimeDelta::new(1.0));
        assert_eq!(p.integral(tp(6.0), tp(9.0)), TimeDelta::ZERO);
        assert_eq!(p.integral(tp(3.0), tp(3.0)), TimeDelta::ZERO);
        assert_eq!(p.integral(tp(5.0), tp(1.0)), TimeDelta::ZERO);
    }

    #[test]
    fn integral_of_many_segments() {
        // 1 on [0,1) ∪ [2,3) ∪ [4,5).
        let f = StepFn::from_changes(
            false,
            vec![tp(0.0), tp(1.0), tp(2.0), tp(3.0), tp(4.0), tp(5.0)],
        );
        assert_eq!(f.integral(tp(-1.0), tp(6.0)), TimeDelta::new(3.0));
        assert_eq!(f.integral(tp(0.5), tp(4.5)), TimeDelta::new(2.0));
    }

    #[test]
    fn next_time_with_value() {
        let p = StepFn::pulse(tp(2.0), tp(4.0));
        assert_eq!(p.next_time_with_value(tp(0.0), true), Some(tp(2.0)));
        assert_eq!(p.next_time_with_value(tp(2.5), true), Some(tp(2.5)));
        assert_eq!(p.next_time_with_value(tp(2.5), false), Some(tp(4.0)));
        assert_eq!(p.next_time_with_value(tp(5.0), true), None);
        assert_eq!(
            StepFn::constant(false).next_time_with_value(tp(0.0), true),
            None
        );
    }

    #[test]
    fn holds_throughout() {
        let p = StepFn::pulse(tp(1.0), tp(5.0));
        assert!(p.holds_throughout(tp(1.0), tp(5.0)));
        assert!(p.holds_throughout(tp(2.0), tp(3.0)));
        assert!(!p.holds_throughout(tp(0.5), tp(3.0)));
        assert!(
            !p.holds_throughout(tp(2.0), tp(2.0)),
            "points never hold ⌈S⌉"
        );
    }

    #[test]
    fn merge_removes_redundant_changes() {
        let a = StepFn::pulse(tp(0.0), tp(2.0));
        let b = StepFn::pulse(tp(0.0), tp(2.0));
        let merged = a.and(&b);
        assert_eq!(merged.changes().len(), 2);
        let with_const = a.or(&StepFn::constant(true));
        assert_eq!(with_const, StepFn::constant(true));
    }
}
