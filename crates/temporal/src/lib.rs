//! # stacl-temporal — continuous-time temporal constraints
//!
//! Section 4 of the paper replaces the discrete, interval-based timing of
//! TRBAC/GTRBAC with a *continuous* time model (isomorphic to ℝ) and
//! *durations* — intervals with no fixed endpoints — because mobile objects
//! arrive at servers at unpredictable times and distributed systems have no
//! global clock.
//!
//! Permission states are boolean-valued functions of time
//! (`valid_r : Permission × Time → {0,1}`), and the temporal constraint is
//! the Duration-Calculus condition of Eq. 4.1:
//!
//! ```text
//! valid(perm, t) = 1  ⟺  active(perm, t) = 1  ∧  ∫_{t_b}^{t} valid(perm, u) du ≤ dur(perm)
//! ```
//!
//! with two base-time schemes: `t_b` = arrival at the *current* server
//! (per-server budgets) or `t_b` = arrival at the *first* server
//! (whole-lifetime budgets).
//!
//! This crate provides:
//!
//! * [`time`] — `TimePoint` / `TimeDelta` newtypes over finite `f64`s;
//! * [`step`] — piecewise-constant boolean [`step::StepFn`]s with exact
//!   boolean algebra and exact integrals (no quadrature);
//! * [`dc`] — a Duration-Calculus fragment (`∫S ⋈ c`, `⌈S⌉`, point, chop,
//!   boolean connectives) with a decision procedure over step-function
//!   interpretations (Theorem 4.1's decidability, made executable);
//! * [`timeline`] — [`timeline::PermissionTimeline`]: activation records →
//!   the derived `valid` state function under a validity duration and a
//!   [`scheme::BaseTimeScheme`].
//!
//! ## Example
//!
//! ```
//! use stacl_temporal::time::TimePoint;
//! use stacl_temporal::timeline::PermissionTimeline;
//! use stacl_temporal::scheme::BaseTimeScheme;
//!
//! let mut tl = PermissionTimeline::new(5.0, BaseTimeScheme::WholeLifetime);
//! tl.arrive_at_server(TimePoint::new(0.0));
//! tl.activate(TimePoint::new(0.0));
//! // After 5 time units of validity the permission expires for good.
//! assert!(tl.is_valid_at(TimePoint::new(4.9)));
//! assert!(!tl.is_valid_at(TimePoint::new(5.1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dc;
pub mod scheme;
pub mod step;
pub mod time;
pub mod timeline;

pub use scheme::BaseTimeScheme;
pub use step::StepFn;
pub use time::{TimeDelta, TimePoint};
pub use timeline::{ClockRegression, PermissionTimeline, TimelineParts};
