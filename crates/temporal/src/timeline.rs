//! Permission validity timelines — the executable form of Eq. 4.1.
//!
//! A [`PermissionTimeline`] records, for one permission and one mobile
//! object, the server-arrival times and the activation/deactivation
//! events produced by the RBAC layer. From those it *derives* the
//! `valid(perm, ·)` state function: the permission is valid exactly while
//! it is active **and** the accumulated valid-time since the base time
//! `t_b` has not yet exceeded the permission's validity duration.
//!
//! The derivation is exact: active periods are consumed segment by
//! segment; when the accumulated budget hits `dur(perm)` mid-segment, the
//! validity cut-off lands exactly at the crossing point (the paper's
//! integral threshold). Under [`BaseTimeScheme::CurrentServer`] the budget
//! refills at every recorded server arrival; under
//! [`BaseTimeScheme::WholeLifetime`] it never does.

use std::cell::RefCell;

use crate::scheme::BaseTimeScheme;
use crate::step::StepFn;
use crate::time::{TimeDelta, TimePoint};

/// An out-of-order timeline event: per-server clock skew handed the
/// timeline a timestamp earlier than the latest event it has recorded.
/// The `try_*` recording methods return this instead of mutating, so the
/// decision layer can deny with a reason rather than panic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockRegression {
    /// The rejected event time.
    pub attempted: TimePoint,
    /// The latest event time already on the timeline.
    pub last: TimePoint,
}

impl std::fmt::Display for ClockRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} < {}", self.attempted, self.last)
    }
}

/// The raw recorded state of a [`PermissionTimeline`], exposed for
/// coalition custody handoff: when a mobile object migrates between
/// guard daemons, its timelines travel over the wire as plain data and
/// are revalidated on arrival. The derived validity memo is *not* part
/// of the state — the importing side rebuilds it lazily.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineParts {
    /// Validity duration in seconds; `None` = time-insensitive.
    pub budget: Option<f64>,
    /// The base-time scheme in force.
    pub scheme: BaseTimeScheme,
    /// Server arrival times, non-decreasing.
    pub arrivals: Vec<TimePoint>,
    /// Activation toggles, non-decreasing, alternating starting `true`.
    pub toggles: Vec<(TimePoint, bool)>,
    /// Activation state after the last toggle.
    pub active_now: bool,
}

/// The recorded history and derived validity of one permission.
#[derive(Clone, Debug)]
pub struct PermissionTimeline {
    /// Validity duration in seconds; `None` means time-insensitive
    /// (the paper's "infinite" duration).
    budget: Option<f64>,
    scheme: BaseTimeScheme,
    /// Server arrival times, strictly increasing.
    arrivals: Vec<TimePoint>,
    /// Activation toggles, strictly increasing; `true` = became active.
    toggles: Vec<(TimePoint, bool)>,
    /// Current activation state (after the last toggle).
    active_now: bool,
    /// Memo of the derived `valid(·)` function. Deriving it walks the full
    /// toggle history (and allocates), so steady-state validity queries —
    /// the guard hot path, where activations are idempotent no-ops —
    /// reuse the last derivation; any real mutation clears it.
    valid_cache: RefCell<Option<StepFn>>,
}

impl PermissionTimeline {
    /// A timeline with a finite validity duration (seconds).
    pub fn new(dur_seconds: f64, scheme: BaseTimeScheme) -> Self {
        assert!(
            dur_seconds.is_finite() && dur_seconds >= 0.0,
            "validity duration must be finite and non-negative; \
             use `unlimited` for time-insensitive permissions"
        );
        PermissionTimeline {
            budget: Some(dur_seconds),
            scheme,
            arrivals: Vec::new(),
            toggles: Vec::new(),
            active_now: false,
            valid_cache: RefCell::new(None),
        }
    }

    /// A timeline for a time-insensitive permission (infinite duration).
    pub fn unlimited(scheme: BaseTimeScheme) -> Self {
        PermissionTimeline {
            budget: None,
            scheme,
            arrivals: Vec::new(),
            toggles: Vec::new(),
            active_now: false,
            valid_cache: RefCell::new(None),
        }
    }

    /// The validity duration, if finite.
    pub fn duration(&self) -> Option<TimeDelta> {
        self.budget.map(TimeDelta::new)
    }

    /// The base-time scheme in force.
    pub fn scheme(&self) -> BaseTimeScheme {
        self.scheme
    }

    /// Export the raw recorded state for custody handoff. The validity
    /// memo is derived, so it does not travel.
    pub fn to_parts(&self) -> TimelineParts {
        TimelineParts {
            budget: self.budget,
            scheme: self.scheme,
            arrivals: self.arrivals.clone(),
            toggles: self.toggles.clone(),
            active_now: self.active_now,
        }
    }

    /// Rebuild a timeline from exported parts, revalidating every
    /// invariant the recording API maintains — parts arriving over a wire
    /// are untrusted. Errors instead of panicking on malformed input.
    pub fn from_parts(parts: TimelineParts) -> Result<Self, String> {
        if let Some(d) = parts.budget {
            if !(d.is_finite() && d >= 0.0) {
                return Err(format!("timeline budget must be finite and >= 0, got {d}"));
            }
        }
        for w in parts.arrivals.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "timeline arrivals out of order: {} precedes {}",
                    w[1], w[0]
                ));
            }
        }
        let mut expect_on = true;
        for (i, &(t, on)) in parts.toggles.iter().enumerate() {
            if !t.seconds().is_finite() {
                return Err(format!("timeline toggle {i} has non-finite time"));
            }
            if on != expect_on {
                return Err(format!(
                    "timeline toggles must alternate starting with an activation; \
                     toggle {i} is {on}"
                ));
            }
            if i > 0 && t < parts.toggles[i - 1].0 {
                return Err(format!(
                    "timeline toggles out of order: {} precedes {}",
                    t,
                    parts.toggles[i - 1].0
                ));
            }
            expect_on = !expect_on;
        }
        let tail_active = parts.toggles.last().map(|&(_, on)| on).unwrap_or(false);
        if parts.active_now != tail_active {
            return Err(format!(
                "timeline active_now ({}) disagrees with the last toggle ({})",
                parts.active_now, tail_active
            ));
        }
        if parts.arrivals.iter().any(|a| !a.seconds().is_finite()) {
            return Err("timeline arrival has non-finite time".to_string());
        }
        Ok(PermissionTimeline {
            budget: parts.budget,
            scheme: parts.scheme,
            arrivals: parts.arrivals,
            toggles: parts.toggles,
            active_now: parts.active_now,
            valid_cache: RefCell::new(None),
        })
    }

    fn last_time(&self) -> Option<TimePoint> {
        let a = self.arrivals.last().copied();
        let t = self.toggles.last().map(|&(t, _)| t);
        match (a, t) {
            (Some(a), Some(t)) => Some(a.max(t)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    fn check_monotone(&self, t: TimePoint) -> Result<(), ClockRegression> {
        match self.last_time() {
            Some(last) if t < last => Err(ClockRegression { attempted: t, last }),
            _ => Ok(()),
        }
    }

    /// Record arrival at a (new) server at time `t`. Under the
    /// `CurrentServer` scheme this resets the validity budget.
    ///
    /// Rejects (without mutating) when `t` precedes an already-recorded
    /// event — per-server clock skew can hand a newly visited server an
    /// earlier timestamp, and that must surface as a countable denial
    /// rather than a library panic.
    pub fn try_arrive_at_server(&mut self, t: TimePoint) -> Result<(), ClockRegression> {
        self.check_monotone(t)?;
        self.arrivals.push(t);
        self.valid_cache.get_mut().take();
        Ok(())
    }

    /// Panicking variant of [`PermissionTimeline::try_arrive_at_server`],
    /// for callers that have already established monotonicity.
    pub fn arrive_at_server(&mut self, t: TimePoint) {
        if let Err(e) = self.try_arrive_at_server(t) {
            panic!("timeline events must be recorded in time order ({e})");
        }
    }

    /// Record that the permission became active (role activated and
    /// spatial constraints satisfied) at `t`. Idempotent while active —
    /// and then a true no-op that keeps the validity memo warm.
    /// Rejects out-of-order timestamps like
    /// [`PermissionTimeline::try_arrive_at_server`].
    pub fn try_activate(&mut self, t: TimePoint) -> Result<(), ClockRegression> {
        self.check_monotone(t)?;
        if !self.active_now {
            self.toggles.push((t, true));
            self.active_now = true;
            self.valid_cache.get_mut().take();
        }
        Ok(())
    }

    /// Panicking variant of [`PermissionTimeline::try_activate`].
    pub fn activate(&mut self, t: TimePoint) {
        if let Err(e) = self.try_activate(t) {
            panic!("timeline events must be recorded in time order ({e})");
        }
    }

    /// Record that the permission went inactive at `t` (role released or
    /// session ended). Idempotent while inactive. Rejects out-of-order
    /// timestamps like [`PermissionTimeline::try_arrive_at_server`].
    pub fn try_deactivate(&mut self, t: TimePoint) -> Result<(), ClockRegression> {
        self.check_monotone(t)?;
        if self.active_now {
            self.toggles.push((t, false));
            self.active_now = false;
            self.valid_cache.get_mut().take();
        }
        Ok(())
    }

    /// Panicking variant of [`PermissionTimeline::try_deactivate`].
    pub fn deactivate(&mut self, t: TimePoint) {
        if let Err(e) = self.try_deactivate(t) {
            panic!("timeline events must be recorded in time order ({e})");
        }
    }

    /// The `active(perm, ·)` state function recorded so far. If the
    /// permission is still active, the last segment extends to +∞.
    pub fn active_fn(&self) -> StepFn {
        StepFn::from_changes(false, self.toggles.iter().map(|&(t, _)| t).collect())
    }

    /// The derived `valid(perm, ·)` state function of Eq. 4.1.
    pub fn valid_fn(&self) -> StepFn {
        self.with_valid(|f| f.clone())
    }

    /// Run `f` against the (memoized) valid-state function without
    /// cloning it. Queries through this path are allocation-free once the
    /// memo is warm.
    fn with_valid<R>(&self, f: impl FnOnce(&StepFn) -> R) -> R {
        let mut cache = self.valid_cache.borrow_mut();
        let fun = cache.get_or_insert_with(|| self.compute_valid_fn());
        f(fun)
    }

    /// Derive the valid-state function from the recorded history.
    fn compute_valid_fn(&self) -> StepFn {
        let Some(dur) = self.budget else {
            // Time-insensitive: valid ≡ active.
            return self.active_fn();
        };

        // Active segments as (start, Option<end>); None = unbounded.
        let mut segments: Vec<(TimePoint, Option<TimePoint>)> = Vec::new();
        let mut open: Option<TimePoint> = None;
        for &(t, on) in &self.toggles {
            if on {
                open = Some(t);
            } else if let Some(s) = open.take() {
                segments.push((s, Some(t)));
            }
        }
        if let Some(s) = open {
            segments.push((s, None));
        }

        // Epoch starts: the base times where the budget (re)fills.
        let epoch_starts: Vec<TimePoint> = match self.scheme {
            BaseTimeScheme::WholeLifetime => self
                .arrivals
                .first()
                .or(segments.first().map(|(s, _)| s))
                .into_iter()
                .copied()
                .collect(),
            BaseTimeScheme::CurrentServer => self.arrivals.clone(),
        };

        let mut changes: Vec<TimePoint> = Vec::new();
        // Index of the next epoch boundary not yet applied; boundary 0 (if
        // any) is the initial fill, already reflected in `remaining`.
        let mut epoch_idx = usize::from(!epoch_starts.is_empty());

        // Walk segments in order, slicing them at epoch boundaries.
        // `remaining` is the budget left in the current epoch.
        let mut remaining = dur;

        let advance_epochs = |t: TimePoint, epoch_idx: &mut usize, remaining: &mut f64| {
            while *epoch_idx < epoch_starts.len() && epoch_starts[*epoch_idx] <= t {
                *remaining = dur;
                *epoch_idx += 1;
            }
        };

        for (start, end) in segments {
            // Refill budget for every epoch boundary at or before `start`.
            advance_epochs(start, &mut epoch_idx, &mut remaining);
            let mut cursor = start;
            loop {
                // The next epoch boundary strictly inside this segment, if
                // any, bounds how far the current budget applies.
                let next_epoch = epoch_starts.get(epoch_idx).copied();
                let slice_end = match (end, next_epoch) {
                    (Some(e), Some(b)) if b < e => Some(b),
                    (_, Some(b)) if end.is_none() => Some(b),
                    (e, _) => e,
                };
                // Emit validity for [cursor, cut) where cut is limited by
                // the remaining budget.
                if remaining > 0.0 {
                    let valid_end = match slice_end {
                        Some(se) => {
                            let span = (se - cursor).seconds();
                            if span <= remaining {
                                remaining -= span;
                                Some(se)
                            } else {
                                let cut = cursor + TimeDelta::new(remaining);
                                remaining = 0.0;
                                Some(cut)
                            }
                        }
                        None => {
                            let cut = cursor + TimeDelta::new(remaining);
                            remaining = 0.0;
                            Some(cut)
                        }
                    };
                    match valid_end {
                        Some(ve) if ve > cursor => {
                            changes.push(cursor);
                            changes.push(ve);
                        }
                        None => changes.push(cursor),
                        _ => {}
                    }
                }
                match slice_end {
                    // Segment continues past an epoch boundary: refill and
                    // keep walking this segment.
                    Some(se) if Some(se) != end || (end.is_none()) => {
                        if epoch_starts.get(epoch_idx) == Some(&se) {
                            remaining = dur;
                            epoch_idx += 1;
                            cursor = se;
                            // An unbounded segment with no further epochs:
                            if end.is_none() && epoch_idx >= epoch_starts.len() {
                                if remaining > 0.0 {
                                    changes.push(cursor);
                                    changes.push(cursor + TimeDelta::new(remaining));
                                }
                                break;
                            }
                            continue;
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
        StepFn::from_changes(false, changes)
    }

    /// Is the permission valid at time `t` (Eq. 4.1)? Allocation-free
    /// while the validity memo is warm (i.e. between real mutations).
    pub fn is_valid_at(&self, t: TimePoint) -> bool {
        self.with_valid(|f| f.at(t))
    }

    /// Valid-time accumulated in the epoch containing `t` (the integral of
    /// Eq. 4.1 from the effective base time to `t`).
    pub fn used_at(&self, t: TimePoint) -> TimeDelta {
        let base = self.base_time_for(t);
        self.with_valid(|f| f.integral(base, t))
    }

    /// Remaining validity budget at `t`; `None` for unlimited permissions.
    pub fn remaining_at(&self, t: TimePoint) -> Option<TimeDelta> {
        let dur = self.budget?;
        let used = self.used_at(t).seconds();
        Some(TimeDelta::new((dur - used).max(0.0)))
    }

    /// When validity will next switch off, if the permission is currently
    /// valid at `t`.
    pub fn expiry_after(&self, t: TimePoint) -> Option<TimePoint> {
        self.with_valid(|f| {
            if !f.at(t) {
                return None;
            }
            f.next_time_with_value(t, false)
        })
    }

    /// The effective `t_b` for a query at time `t`.
    pub fn base_time_for(&self, t: TimePoint) -> TimePoint {
        match self.scheme {
            BaseTimeScheme::WholeLifetime => self
                .arrivals
                .first()
                .copied()
                .unwrap_or(TimePoint::ZERO)
                .min(t),
            BaseTimeScheme::CurrentServer => self
                .arrivals
                .iter()
                .rev()
                .find(|&&a| a <= t)
                .copied()
                .unwrap_or(TimePoint::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: f64) -> TimePoint {
        TimePoint::new(s)
    }

    #[test]
    fn unlimited_is_valid_while_active() {
        let mut tl = PermissionTimeline::unlimited(BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(1.0));
        tl.deactivate(tp(4.0));
        assert!(!tl.is_valid_at(tp(0.5)));
        assert!(tl.is_valid_at(tp(2.0)));
        assert!(!tl.is_valid_at(tp(4.5)));
        assert_eq!(tl.remaining_at(tp(2.0)), None);
    }

    #[test]
    fn budget_expires_mid_activation() {
        let mut tl = PermissionTimeline::new(5.0, BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        // Still active indefinitely: valid exactly on [0, 5).
        assert!(tl.is_valid_at(tp(4.9)));
        assert!(!tl.is_valid_at(tp(5.1)));
        assert_eq!(tl.expiry_after(tp(0.0)), Some(tp(5.0)));
        assert_eq!(tl.used_at(tp(3.0)), TimeDelta::new(3.0));
        assert_eq!(tl.remaining_at(tp(3.0)), Some(TimeDelta::new(2.0)));
        assert_eq!(tl.remaining_at(tp(9.0)), Some(TimeDelta::ZERO));
    }

    #[test]
    fn inactive_gaps_do_not_consume_budget() {
        let mut tl = PermissionTimeline::new(3.0, BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        tl.deactivate(tp(2.0)); // used 2.
        tl.activate(tp(10.0)); // gap of 8 consumes nothing.
                               // One unit of budget remains: valid on [10, 11).
        assert!(tl.is_valid_at(tp(10.5)));
        assert!(!tl.is_valid_at(tp(11.5)));
        assert_eq!(tl.expiry_after(tp(10.0)), Some(tp(11.0)));
    }

    #[test]
    fn whole_lifetime_budget_spans_servers() {
        let mut tl = PermissionTimeline::new(4.0, BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        tl.deactivate(tp(3.0)); // 3 used on s1.
        tl.arrive_at_server(tp(5.0)); // migration does NOT refill.
        tl.activate(tp(5.0));
        assert!(tl.is_valid_at(tp(5.5)));
        assert!(!tl.is_valid_at(tp(6.5)), "only 1 unit remained");
    }

    #[test]
    fn current_server_budget_refills_on_migration() {
        let mut tl = PermissionTimeline::new(4.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        tl.deactivate(tp(3.0)); // 3 of 4 used on s1.
        tl.arrive_at_server(tp(5.0)); // refill.
        tl.activate(tp(5.0));
        // Full 4 units available again on s2: valid on [5, 9).
        assert!(tl.is_valid_at(tp(8.9)));
        assert!(!tl.is_valid_at(tp(9.1)));
    }

    #[test]
    fn migration_mid_activation_refills_current_server_budget() {
        let mut tl = PermissionTimeline::new(2.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        // Budget exhausts at t=2; at t=3 the object migrates while the
        // permission stays active; budget refills, valid resumes on [3, 5).
        tl.arrive_at_server(tp(3.0));
        assert!(tl.is_valid_at(tp(1.0)));
        assert!(!tl.is_valid_at(tp(2.5)));
        assert!(tl.is_valid_at(tp(4.0)));
        assert!(!tl.is_valid_at(tp(5.5)));
    }

    #[test]
    fn used_at_resets_per_server() {
        let mut tl = PermissionTimeline::new(10.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        tl.deactivate(tp(2.0));
        tl.arrive_at_server(tp(5.0));
        tl.activate(tp(6.0));
        assert_eq!(tl.used_at(tp(7.0)), TimeDelta::new(1.0));
        assert_eq!(tl.base_time_for(tp(7.0)), tp(5.0));
        assert_eq!(tl.base_time_for(tp(2.0)), tp(0.0));
    }

    #[test]
    fn zero_duration_never_valid() {
        let mut tl = PermissionTimeline::new(0.0, BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        assert!(!tl.is_valid_at(tp(0.0)));
        assert!(!tl.is_valid_at(tp(1.0)));
    }

    #[test]
    fn activation_toggles_are_idempotent() {
        let mut tl = PermissionTimeline::unlimited(BaseTimeScheme::WholeLifetime);
        tl.activate(tp(1.0));
        tl.activate(tp(2.0)); // ignored.
        tl.deactivate(tp(3.0));
        tl.deactivate(tp(4.0)); // ignored.
        let f = tl.active_fn();
        assert_eq!(f.changes().len(), 2);
        assert!(f.at(tp(2.5)));
        assert!(!f.at(tp(3.5)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_panic() {
        let mut tl = PermissionTimeline::unlimited(BaseTimeScheme::WholeLifetime);
        tl.activate(tp(5.0));
        tl.deactivate(tp(1.0));
    }

    #[test]
    fn valid_fn_integral_never_exceeds_dur_per_epoch() {
        // Property-style check over a handful of scripted histories.
        let mut tl = PermissionTimeline::new(3.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.5));
        tl.deactivate(tp(2.0));
        tl.activate(tp(2.5));
        tl.arrive_at_server(tp(6.0));
        tl.deactivate(tp(7.0));
        tl.activate(tp(8.0));
        let v = tl.valid_fn();
        // Epoch 1: [0, 6): at most 3 valid units.
        assert!(v.integral(tp(0.0), tp(6.0)).seconds() <= 3.0 + 1e-9);
        // Epoch 2: [6, ∞): at most 3 valid units.
        assert!(v.integral(tp(6.0), tp(100.0)).seconds() <= 3.0 + 1e-9);
        // Valid only while active.
        let a = tl.active_fn();
        let conflict = v.and(&a.not());
        assert_eq!(conflict.integral(tp(0.0), tp(100.0)), TimeDelta::ZERO);
    }

    #[test]
    fn valid_memo_invalidates_on_mutation() {
        let mut tl = PermissionTimeline::new(5.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        assert!(tl.is_valid_at(tp(4.0))); // warms the memo
        assert!(!tl.is_valid_at(tp(6.0))); // memo hit
        tl.activate(tp(6.5)); // idempotent while active: memo stays warm
        assert!(!tl.is_valid_at(tp(6.9)));
        tl.arrive_at_server(tp(7.0)); // refill must invalidate the memo
        assert!(tl.is_valid_at(tp(8.0)));
        tl.deactivate(tp(9.0)); // so must a real toggle
        assert!(!tl.is_valid_at(tp(9.5)));
        tl.activate(tp(10.0));
        assert!(tl.is_valid_at(tp(10.5)));
    }

    #[test]
    fn parts_round_trip_preserves_validity() {
        let mut tl = PermissionTimeline::new(3.0, BaseTimeScheme::CurrentServer);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.5));
        tl.deactivate(tp(2.0));
        tl.arrive_at_server(tp(4.0));
        tl.activate(tp(5.0));
        assert!(tl.is_valid_at(tp(6.0))); // warms the memo before export
        let back = PermissionTimeline::from_parts(tl.to_parts()).unwrap();
        assert_eq!(back.to_parts(), tl.to_parts());
        for t in [0.0, 0.7, 1.9, 2.5, 4.5, 5.5, 6.0, 9.0, 50.0] {
            assert_eq!(back.is_valid_at(tp(t)), tl.is_valid_at(tp(t)), "t={t}");
        }
        // The import accepts further recording where the original would.
        let mut back = back;
        assert!(back.try_arrive_at_server(tp(7.0)).is_ok());
        assert!(back.try_activate(tp(3.0)).is_err());
    }

    #[test]
    fn from_parts_rejects_malformed_state() {
        let good = {
            let mut tl = PermissionTimeline::new(3.0, BaseTimeScheme::WholeLifetime);
            tl.arrive_at_server(tp(0.0));
            tl.activate(tp(1.0));
            tl.to_parts()
        };
        assert!(PermissionTimeline::from_parts(good.clone()).is_ok());

        let mut bad = good.clone();
        bad.budget = Some(f64::NAN);
        assert!(PermissionTimeline::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.arrivals = vec![tp(5.0), tp(1.0)];
        assert!(PermissionTimeline::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.toggles = vec![(tp(1.0), false)];
        bad.active_now = false;
        assert!(
            PermissionTimeline::from_parts(bad).is_err(),
            "first toggle must be an activation"
        );

        let mut bad = good.clone();
        bad.toggles = vec![(tp(1.0), true), (tp(0.5), false)];
        bad.active_now = false;
        assert!(PermissionTimeline::from_parts(bad).is_err());

        let mut bad = good;
        bad.active_now = false;
        assert!(
            PermissionTimeline::from_parts(bad).is_err(),
            "active_now must match the last toggle"
        );
    }

    #[test]
    fn deadline_example_editing_by_3am() {
        // The intro example: "the editing deadline for an issue of a daily
        // newspaper is by 3am" — an 'edit' permission with a validity
        // duration equal to the time until 3am, whole-lifetime scheme.
        // Suppose the editor starts at 21:00 (t=0) and 3am is t=6h=21600s.
        let mut tl = PermissionTimeline::new(21_600.0, BaseTimeScheme::WholeLifetime);
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        assert!(tl.is_valid_at(tp(21_599.0)));
        assert!(!tl.is_valid_at(tp(21_601.0)));
    }
}
