//! The two base-time schemes of §4.
//!
//! Eq. 4.1 integrates the `valid` state from a base time `t_b`. The paper
//! identifies two useful choices when a mobile object has visited servers
//! `s₁, …, sᵢ` in order:
//!
//! * `t_b = tᵢ` (arrival at the **current** server): the validity budget
//!   applies per server and refills on every migration;
//! * `t_b = t₁` (arrival at the **first** server): one budget for the
//!   object's entire life across all coalition servers.

/// Where the validity-duration integration restarts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BaseTimeScheme {
    /// `t_b` = arrival time at the current server: the budget resets on
    /// every migration (per-server control).
    CurrentServer,
    /// `t_b` = arrival time at the first server: a single budget for the
    /// whole execution (coalition-wide control).
    WholeLifetime,
}

impl BaseTimeScheme {
    /// Human-readable name used in policy files and reports.
    pub fn name(self) -> &'static str {
        match self {
            BaseTimeScheme::CurrentServer => "current-server",
            BaseTimeScheme::WholeLifetime => "whole-lifetime",
        }
    }

    /// Parse from the policy-file name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "current-server" => Some(BaseTimeScheme::CurrentServer),
            "whole-lifetime" => Some(BaseTimeScheme::WholeLifetime),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in [BaseTimeScheme::CurrentServer, BaseTimeScheme::WholeLifetime] {
            assert_eq!(BaseTimeScheme::from_name(s.name()), Some(s));
        }
        assert_eq!(BaseTimeScheme::from_name("bogus"), None);
    }
}
