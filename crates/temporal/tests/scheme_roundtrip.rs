//! The single-server round trip: when a mobile object never migrates,
//! the per-server (`t_b = tᵢ`) and whole-lifetime (`t_b = t₁`) base-time
//! schemes see the same single refill epoch, so validity must agree at
//! every time point. Driven as a seeded property over random
//! activation/deactivation schedules and query times.

use stacl_ids::prop::forall;
use stacl_temporal::{BaseTimeScheme, PermissionTimeline, TimePoint};

fn tp(s: f64) -> TimePoint {
    TimePoint::new(s)
}

#[test]
fn single_arrival_makes_schemes_identical() {
    forall(
        "single_arrival_makes_schemes_identical",
        0x7e01,
        256,
        |rng| {
            let dur = rng.gen_range(1i64..10) as f64;
            let arrival = rng.gen_range(0i64..3) as f64;
            let mut per_server = PermissionTimeline::new(dur, BaseTimeScheme::CurrentServer);
            let mut whole_life = PermissionTimeline::new(dur, BaseTimeScheme::WholeLifetime);
            per_server.arrive_at_server(tp(arrival));
            whole_life.arrive_at_server(tp(arrival));

            // A random monotone schedule of activations and deactivations,
            // applied identically to both timelines.
            let mut t = arrival;
            for _ in 0..rng.gen_range(1usize..6) {
                t += rng.gen_range(1i64..4) as f64;
                if rng.gen_bool(0.7) {
                    per_server.activate(tp(t));
                    whole_life.activate(tp(t));
                } else {
                    per_server.deactivate(tp(t));
                    whole_life.deactivate(tp(t));
                }
            }

            // Validity agrees everywhere, including boundary instants.
            let horizon = t + dur + 2.0;
            let mut q = arrival;
            while q <= horizon {
                assert_eq!(
                    per_server.is_valid_at(tp(q)),
                    whole_life.is_valid_at(tp(q)),
                    "dur={dur} arrival={arrival} q={q}"
                );
                q += 0.5;
            }
        },
    );
}

#[test]
fn unlimited_timelines_agree_trivially() {
    let mut a = PermissionTimeline::unlimited(BaseTimeScheme::CurrentServer);
    let mut b = PermissionTimeline::unlimited(BaseTimeScheme::WholeLifetime);
    for t in [0.0, 1.0, 5.0] {
        a.arrive_at_server(tp(t));
        b.arrive_at_server(tp(t));
    }
    a.activate(tp(6.0));
    b.activate(tp(6.0));
    for q in [6.0, 60.0, 600.0] {
        assert_eq!(a.is_valid_at(tp(q)), b.is_valid_at(tp(q)));
        assert!(a.is_valid_at(tp(q)));
    }
}

#[test]
fn second_arrival_breaks_the_equivalence() {
    // Sanity check that the property above is not vacuous: with a second
    // arrival the per-server scheme refills and the schemes diverge.
    let mut per_server = PermissionTimeline::new(3.0, BaseTimeScheme::CurrentServer);
    let mut whole_life = PermissionTimeline::new(3.0, BaseTimeScheme::WholeLifetime);
    for tl in [&mut per_server, &mut whole_life] {
        tl.arrive_at_server(tp(0.0));
        tl.activate(tp(0.0));
        tl.arrive_at_server(tp(5.0));
    }
    assert!(per_server.is_valid_at(tp(6.0)));
    assert!(!whole_life.is_valid_at(tp(6.0)));
}
