//! Property tests for the temporal layer: the step-function boolean
//! algebra, exact integrals, and the validity-timeline invariants of
//! Eq. 4.1 under arbitrary event scripts. Driven by the in-tree seeded
//! `stacl_ids::prop` runner.

use stacl_ids::prop::forall;
use stacl_ids::rng::SplitMix64;

use stacl_temporal::dc::{eval, DurCmp, Formula, Interpretation, StateExpr};
use stacl_temporal::{BaseTimeScheme, PermissionTimeline, StepFn, TimePoint};

fn tp(s: f64) -> TimePoint {
    TimePoint::new(s)
}

/// A step function with change points in [0, 100).
fn gen_stepfn(rng: &mut SplitMix64) -> StepFn {
    let init = rng.gen_bool(0.5);
    let n = rng.gen_range(0usize..12);
    StepFn::from_changes(
        init,
        (0..n)
            .map(|_| tp(rng.gen_range(0u32..1000) as f64 / 10.0))
            .collect(),
    )
}

fn probes() -> Vec<TimePoint> {
    (0..40).map(|i| tp(i as f64 * 2.63)).collect()
}

/// Pointwise boolean laws at many probe points.
#[test]
fn boolean_algebra_pointwise() {
    forall("boolean_algebra_pointwise", 0x7e01, 192, |rng| {
        let a = gen_stepfn(rng);
        let b = gen_stepfn(rng);
        for t in probes() {
            let (va, vb) = (a.at(t), b.at(t));
            assert_eq!(a.and(&b).at(t), va && vb);
            assert_eq!(a.or(&b).at(t), va || vb);
            assert_eq!(a.xor(&b).at(t), va != vb);
            assert_eq!(a.not().at(t), !va);
        }
    });
}

/// De Morgan and distributivity as structural equalities (the merge
/// sweep produces canonical change lists).
#[test]
fn de_morgan_structural() {
    forall("de_morgan_structural", 0x7e02, 192, |rng| {
        let a = gen_stepfn(rng);
        let b = gen_stepfn(rng);
        let c = gen_stepfn(rng);
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        assert_eq!(a.and(&b.or(&c)), a.and(&b).or(&a.and(&c)));
    });
}

/// Integral additivity: ∫_b^m + ∫_m^e = ∫_b^e for any midpoint.
#[test]
fn integral_additive() {
    forall("integral_additive", 0x7e03, 192, |rng| {
        let f = gen_stepfn(rng);
        let cut = rng.gen_range(0u32..1000);
        let (b, e) = (tp(0.0), tp(100.0));
        let m = tp(cut as f64 / 10.0);
        let whole = f.integral(b, e).seconds();
        let split = f.integral(b, m).seconds() + f.integral(m, e).seconds();
        assert!((whole - split).abs() < 1e-9);
    });
}

/// ∫(a ∨ b) = ∫a + ∫b − ∫(a ∧ b) (inclusion–exclusion).
#[test]
fn integral_inclusion_exclusion() {
    forall("integral_inclusion_exclusion", 0x7e04, 192, |rng| {
        let a = gen_stepfn(rng);
        let b = gen_stepfn(rng);
        let (lo, hi) = (tp(0.0), tp(100.0));
        let lhs = a.or(&b).integral(lo, hi).seconds();
        let rhs = a.integral(lo, hi).seconds() + b.integral(lo, hi).seconds()
            - a.and(&b).integral(lo, hi).seconds();
        assert!((lhs - rhs).abs() < 1e-9);
    });
}

/// ∫f + ∫¬f equals the interval length.
#[test]
fn integral_complement() {
    forall("integral_complement", 0x7e05, 192, |rng| {
        let f = gen_stepfn(rng);
        let (lo, hi) = (tp(0.0), tp(100.0));
        let total = f.integral(lo, hi).seconds() + f.not().integral(lo, hi).seconds();
        assert!((total - 100.0).abs() < 1e-9);
    });
}

/// `next_time_with_value` returns the earliest qualifying time.
#[test]
fn next_time_is_earliest() {
    forall("next_time_is_earliest", 0x7e06, 192, |rng| {
        let f = gen_stepfn(rng);
        let from = tp(rng.gen_range(0u32..1000) as f64 / 10.0);
        let target = rng.gen_bool(0.5);
        match f.next_time_with_value(from, target) {
            Some(t) => {
                assert!(t >= from);
                assert_eq!(f.at(t), target);
                // No earlier change point between from and t can qualify.
                if t > from {
                    assert_ne!(f.at(from), target);
                }
            }
            None => assert_ne!(f.at(tp(1e6)), target),
        }
    });
}

/// Duration-Calculus boolean closure: eval distributes over ∧/∨/¬.
#[test]
fn dc_boolean_closure() {
    forall("dc_boolean_closure", 0x7e07, 192, |rng| {
        let a = gen_stepfn(rng);
        let b = gen_stepfn(rng);
        let hi_raw = rng.gen_range(1u32..1000);
        let interp = Interpretation::new().bind("a", a).bind("b", b);
        let (lo, hi) = (tp(0.0), tp(hi_raw as f64 / 10.0));
        let fa = Formula::Dur(StateExpr::atom("a"), DurCmp::Ge, 1.0);
        let fb = Formula::Dur(StateExpr::atom("b"), DurCmp::Lt, 5.0);
        let (ra, rb) = (eval(&fa, &interp, lo, hi), eval(&fb, &interp, lo, hi));
        assert_eq!(eval(&fa.clone().and(fb.clone()), &interp, lo, hi), ra && rb);
        assert_eq!(eval(&fa.clone().or(fb.clone()), &interp, lo, hi), ra || rb);
        assert_eq!(eval(&fa.clone().not(), &interp, lo, hi), !ra);
    });
}

/// Chop soundness: `(∫a = x) ⌢ (∫a = total − x)` holds for any split
/// amount x within the total.
#[test]
fn dc_chop_split_amounts() {
    forall("dc_chop_split_amounts", 0x7e08, 192, |rng| {
        let a = gen_stepfn(rng);
        let frac = rng.gen_range(0.0f64..1.0);
        let interp = Interpretation::new().bind("a", a.clone());
        let (lo, hi) = (tp(0.0), tp(100.0));
        let total = a.integral(lo, hi).seconds();
        let x = total * frac;
        let f = Formula::Dur(StateExpr::atom("a"), DurCmp::Eq, x).chop(Formula::Dur(
            StateExpr::atom("a"),
            DurCmp::Eq,
            total - x,
        ));
        assert!(eval(&f, &interp, lo, hi), "split {x} of {total}");
    });
}

/// Eq. 4.1 invariants under random event scripts (richer variant of
/// the integration test): valid ⇒ active, per-epoch budget bound, and
/// the derived function is stable under re-derivation.
#[test]
fn timeline_invariants() {
    forall("timeline_invariants", 0x7e09, 192, |rng| {
        let dur = rng.gen_range(0.0f64..30.0);
        let per_server = rng.gen_bool(0.5);
        let scheme = if per_server {
            BaseTimeScheme::CurrentServer
        } else {
            BaseTimeScheme::WholeLifetime
        };
        let mut tl = PermissionTimeline::new(dur, scheme);
        tl.arrive_at_server(tp(0.0));
        let mut t = 0.0;
        let mut arrivals = vec![0.0];
        let mut active = false;
        let script_len = rng.gen_range(1usize..16);
        for _ in 0..script_len {
            t += rng.gen_range(0.1f64..4.0);
            match rng.gen_range(0u8..3) {
                0 => {
                    if active {
                        tl.deactivate(tp(t));
                    } else {
                        tl.activate(tp(t));
                    }
                    active = !active;
                }
                1 => {
                    tl.arrive_at_server(tp(t));
                    arrivals.push(t);
                }
                _ => {}
            }
        }
        let horizon = tp(t + dur + 5.0);
        let valid = tl.valid_fn();
        assert_eq!(&valid, &tl.valid_fn(), "derivation must be deterministic");
        // valid ⇒ active.
        let leak = valid.and(&tl.active_fn().not());
        assert!(leak.integral(tp(0.0), horizon).seconds() < 1e-9);
        // Per-epoch budget.
        let mut bounds = match scheme {
            BaseTimeScheme::WholeLifetime => vec![0.0],
            BaseTimeScheme::CurrentServer => arrivals,
        };
        bounds.push(horizon.seconds());
        for w in bounds.windows(2) {
            let used = valid.integral(tp(w[0]), tp(w[1])).seconds();
            assert!(
                used <= dur + 1e-6,
                "epoch [{},{}] used {used} > {dur}",
                w[0],
                w[1]
            );
        }
        // is_valid_at agrees with the derived function at probe points.
        for probe in probes() {
            assert_eq!(tl.is_valid_at(probe), valid.at(probe));
        }
    });
}
