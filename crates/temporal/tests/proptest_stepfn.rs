//! Property tests for the temporal layer: the step-function boolean
//! algebra, exact integrals, and the validity-timeline invariants of
//! Eq. 4.1 under arbitrary event scripts.

use proptest::prelude::*;

use stacl_temporal::dc::{eval, DurCmp, Formula, Interpretation, StateExpr};
use stacl_temporal::{BaseTimeScheme, PermissionTimeline, StepFn, TimePoint};

fn tp(s: f64) -> TimePoint {
    TimePoint::new(s)
}

/// A step function with change points in [0, 100).
fn arb_stepfn() -> impl Strategy<Value = StepFn> {
    (
        prop::bool::ANY,
        prop::collection::vec(0u32..1000, 0..12),
    )
        .prop_map(|(init, points)| {
            StepFn::from_changes(
                init,
                points.into_iter().map(|p| tp(p as f64 / 10.0)).collect(),
            )
        })
}

fn probes() -> Vec<TimePoint> {
    (0..40).map(|i| tp(i as f64 * 2.63)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pointwise boolean laws at many probe points.
    #[test]
    fn boolean_algebra_pointwise(a in arb_stepfn(), b in arb_stepfn()) {
        for t in probes() {
            let (va, vb) = (a.at(t), b.at(t));
            prop_assert_eq!(a.and(&b).at(t), va && vb);
            prop_assert_eq!(a.or(&b).at(t), va || vb);
            prop_assert_eq!(a.xor(&b).at(t), va != vb);
            prop_assert_eq!(a.not().at(t), !va);
        }
    }

    /// De Morgan and distributivity as structural equalities (the merge
    /// sweep produces canonical change lists).
    #[test]
    fn de_morgan_structural(a in arb_stepfn(), b in arb_stepfn(), c in arb_stepfn()) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        prop_assert_eq!(
            a.and(&b.or(&c)),
            a.and(&b).or(&a.and(&c))
        );
    }

    /// Integral additivity: ∫_b^m + ∫_m^e = ∫_b^e for any midpoint.
    #[test]
    fn integral_additive(f in arb_stepfn(), cut in 0u32..1000) {
        let (b, e) = (tp(0.0), tp(100.0));
        let m = tp(cut as f64 / 10.0);
        let whole = f.integral(b, e).seconds();
        let split = f.integral(b, m).seconds() + f.integral(m, e).seconds();
        prop_assert!((whole - split).abs() < 1e-9);
    }

    /// ∫(a ∨ b) = ∫a + ∫b − ∫(a ∧ b) (inclusion–exclusion).
    #[test]
    fn integral_inclusion_exclusion(a in arb_stepfn(), b in arb_stepfn()) {
        let (lo, hi) = (tp(0.0), tp(100.0));
        let lhs = a.or(&b).integral(lo, hi).seconds();
        let rhs = a.integral(lo, hi).seconds() + b.integral(lo, hi).seconds()
            - a.and(&b).integral(lo, hi).seconds();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// ∫f + ∫¬f equals the interval length.
    #[test]
    fn integral_complement(f in arb_stepfn()) {
        let (lo, hi) = (tp(0.0), tp(100.0));
        let total = f.integral(lo, hi).seconds() + f.not().integral(lo, hi).seconds();
        prop_assert!((total - 100.0).abs() < 1e-9);
    }

    /// `next_time_with_value` returns the earliest qualifying time.
    #[test]
    fn next_time_is_earliest(f in arb_stepfn(), from in 0u32..1000, target in prop::bool::ANY) {
        let from = tp(from as f64 / 10.0);
        match f.next_time_with_value(from, target) {
            Some(t) => {
                prop_assert!(t >= from);
                prop_assert_eq!(f.at(t), target);
                // No earlier change point between from and t can qualify.
                if t > from {
                    prop_assert_ne!(f.at(from), target);
                }
            }
            None => prop_assert_ne!(f.at(tp(1e6)), target),
        }
    }

    /// Duration-Calculus boolean closure: eval distributes over ∧/∨/¬.
    #[test]
    fn dc_boolean_closure(a in arb_stepfn(), b in arb_stepfn(), hi in 1u32..1000) {
        let interp = Interpretation::new().bind("a", a).bind("b", b);
        let (lo, hi) = (tp(0.0), tp(hi as f64 / 10.0));
        let fa = Formula::Dur(StateExpr::atom("a"), DurCmp::Ge, 1.0);
        let fb = Formula::Dur(StateExpr::atom("b"), DurCmp::Lt, 5.0);
        let (ra, rb) = (eval(&fa, &interp, lo, hi), eval(&fb, &interp, lo, hi));
        prop_assert_eq!(eval(&fa.clone().and(fb.clone()), &interp, lo, hi), ra && rb);
        prop_assert_eq!(eval(&fa.clone().or(fb.clone()), &interp, lo, hi), ra || rb);
        prop_assert_eq!(eval(&fa.clone().not(), &interp, lo, hi), !ra);
    }

    /// Chop soundness: `(∫a = x) ⌢ (∫a = total − x)` holds for any split
    /// amount x within the total.
    #[test]
    fn dc_chop_split_amounts(a in arb_stepfn(), frac in 0.0f64..1.0) {
        let interp = Interpretation::new().bind("a", a.clone());
        let (lo, hi) = (tp(0.0), tp(100.0));
        let total = a.integral(lo, hi).seconds();
        let x = total * frac;
        let f = Formula::Dur(StateExpr::atom("a"), DurCmp::Eq, x)
            .chop(Formula::Dur(StateExpr::atom("a"), DurCmp::Eq, total - x));
        prop_assert!(eval(&f, &interp, lo, hi), "split {x} of {total}");
    }

    /// Eq. 4.1 invariants under random event scripts (richer variant of
    /// the integration test): valid ⇒ active, per-epoch budget bound, and
    /// the derived function is stable under re-derivation.
    #[test]
    fn timeline_invariants(
        dur in 0.0f64..30.0,
        script in prop::collection::vec((0.1f64..4.0, 0u8..3), 1..16),
        per_server in prop::bool::ANY,
    ) {
        let scheme = if per_server {
            BaseTimeScheme::CurrentServer
        } else {
            BaseTimeScheme::WholeLifetime
        };
        let mut tl = PermissionTimeline::new(dur, scheme);
        tl.arrive_at_server(tp(0.0));
        let mut t = 0.0;
        let mut arrivals = vec![0.0];
        let mut active = false;
        for (dt, action) in script {
            t += dt;
            match action {
                0 => {
                    if active {
                        tl.deactivate(tp(t));
                    } else {
                        tl.activate(tp(t));
                    }
                    active = !active;
                }
                1 => {
                    tl.arrive_at_server(tp(t));
                    arrivals.push(t);
                }
                _ => {}
            }
        }
        let horizon = tp(t + dur + 5.0);
        let valid = tl.valid_fn();
        prop_assert_eq!(&valid, &tl.valid_fn(), "derivation must be deterministic");
        // valid ⇒ active.
        let leak = valid.and(&tl.active_fn().not());
        prop_assert!(leak.integral(tp(0.0), horizon).seconds() < 1e-9);
        // Per-epoch budget.
        let mut bounds = match scheme {
            BaseTimeScheme::WholeLifetime => vec![0.0],
            BaseTimeScheme::CurrentServer => arrivals,
        };
        bounds.push(horizon.seconds());
        for w in bounds.windows(2) {
            let used = valid.integral(tp(w[0]), tp(w[1])).seconds();
            prop_assert!(used <= dur + 1e-6, "epoch [{},{}] used {used} > {dur}", w[0], w[1]);
        }
        // is_valid_at agrees with the derived function at probe points.
        for probe in probes() {
            prop_assert_eq!(tl.is_valid_at(probe), valid.at(probe));
        }
    }
}
