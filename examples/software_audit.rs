//! The paper's §6 worked example: verifying the integrity of software
//! modules distributed over an enterprise coalition (Figure 1).
//!
//! An auditor dispatches a mobile code that roams the servers computing
//! digests of the modules. The SRAC spatial constraint enforces the
//! dependency order ("a module is verified as correct iff all of its
//! depended modules and itself are correct"); the validity duration on
//! the verify permission enforces the audit deadline. The run is repeated
//! with a tampered module to show detection and taint propagation.
//!
//! ```text
//! cargo run --example software_audit
//! ```

use stacl::integrity::{evaluate_audit, ModuleGraph};
use stacl::prelude::*;
use stacl::rbac::{AccessPattern, Permission, RbacModel};
use stacl::temporal::BaseTimeScheme;

/// Figure 1's digraph: A→B, A→C, A→D, B→D, C→E, spread over 3 servers.
fn figure1() -> ModuleGraph {
    let mut g = ModuleGraph::new();
    g.add_module("libD", "s1", b"content of libD".to_vec(), [])
        .unwrap();
    g.add_module("libE", "s2", b"content of libE".to_vec(), [])
        .unwrap();
    g.add_module(
        "libB",
        "s2",
        b"content of libB".to_vec(),
        vec!["libD".into()],
    )
    .unwrap();
    g.add_module(
        "libC",
        "s3",
        b"content of libC".to_vec(),
        vec!["libE".into()],
    )
    .unwrap();
    g.add_module(
        "appA",
        "s1",
        b"content of appA".to_vec(),
        vec!["libB".into(), "libC".into(), "libD".into()],
    )
    .unwrap();
    g
}

fn coalition_for(g: &ModuleGraph) -> CoalitionEnv {
    let mut env = CoalitionEnv::new();
    for m in g.modules() {
        env.add_resource(&m.server, &m.name, ["verify"]);
    }
    env
}

fn audit_guard(g: &ModuleGraph, deadline: f64) -> CoordinatedGuard {
    let mut model = RbacModel::new();
    model.add_user("auditor");
    model.add_role("integrity-auditor");
    // One permission: verify anything, but (a) in dependency order and
    // (b) within the deadline.
    model
        .add_permission(
            Permission::new("p-verify", AccessPattern::parse("verify:*:*").unwrap())
                .with_spatial(g.dependency_constraint())
                .with_validity(deadline, BaseTimeScheme::WholeLifetime),
        )
        .unwrap();
    model
        .assign_permission("integrity-auditor", "p-verify")
        .unwrap();
    model.assign_user("auditor", "integrity-auditor").unwrap();
    let guard = CoordinatedGuard::new(ExtendedRbac::new(model));
    guard.enroll("auditor", ["integrity-auditor"]);
    guard
}

fn run_audit(g: &ModuleGraph, deadline: f64) -> (RunReport, stacl::integrity::AuditReport) {
    let manifest = g.manifest();
    let mut sys = NapletSystem::new(coalition_for(g), Box::new(audit_guard(g, deadline)));
    let program = g.audit_program_sequential();
    sys.spawn(NapletSpec::new("auditor", "s1", program));
    let report = sys.run();
    let audit = evaluate_audit("auditor", sys.proofs(), g, &manifest);
    (report, audit)
}

fn main() {
    let g = figure1();
    println!(
        "module graph: {} modules on servers {:?}",
        g.len(),
        g.servers()
    );
    println!("dependency constraint: {}\n", g.dependency_constraint());
    println!("auditor program:\n  {}\n", g.audit_program_sequential());

    // ── Clean audit within a generous deadline. ──
    let (report, audit) = run_audit(&g, 1_000.0);
    println!(
        "clean audit: finished={} verified={:?}",
        report.finished, audit.verified
    );
    assert!(audit.all_verified());

    // ── Tampered module: detection and taint propagation. ──
    let mut tampered = figure1();
    let manifest = tampered.manifest();
    tampered.tamper("libD");
    let mut sys = NapletSystem::new(
        coalition_for(&tampered),
        Box::new(audit_guard(&tampered, 1_000.0)),
    );
    sys.spawn(NapletSpec::new(
        "auditor",
        "s1",
        tampered.audit_program_sequential(),
    ));
    sys.run();
    let audit = evaluate_audit("auditor", sys.proofs(), &tampered, &manifest);
    println!(
        "\ntampered audit: corrupted={:?} tainted={:?} verified={:?}",
        audit.corrupted, audit.tainted, audit.verified
    );
    assert!(audit.corrupted.contains("libD"));
    assert!(audit.tainted.contains("libB"), "libB depends on libD");
    assert!(audit.tainted.contains("appA"), "appA depends on libD");
    assert!(audit.verified.contains("libC"));
    assert!(audit.verified.contains("libE"));

    // ── Deadline too tight: the audit is cut off mid-route. ──
    // Costs: 5 verifications at 1s plus migrations at 5s; a 4-second
    // deadline admits only the first few verifications.
    let (report, audit) = run_audit(&g, 4.0);
    println!(
        "\ntight deadline: aborted={} unverified={:?}",
        report.aborted, audit.unverified
    );
    assert_eq!(report.aborted, 1, "the auditor is stopped at the deadline");
    assert!(!audit.unverified.is_empty());

    // ── Out-of-order audit attempt: denied by the spatial constraint. ──
    // Note Definition 3.6's `a1 ⊗ a2` is existential: an early appA
    // verification could be legitimised by a *second* one after the
    // dependencies. This auditor, however, declares only appA and libD —
    // no trace of that program puts libB/libC before appA, so the very
    // first access is denied.
    let mut sys = NapletSystem::new(coalition_for(&g), Box::new(audit_guard(&g, 1_000.0)));
    let a = g.module("appA").unwrap();
    let d = g.module("libD").unwrap();
    let bad = stacl::sral::builder::seq([
        stacl::sral::Program::Access(ModuleGraph::verify_access(a)),
        stacl::sral::Program::Access(ModuleGraph::verify_access(d)),
    ]);
    sys.spawn(NapletSpec::new("auditor", "s1", bad));
    let report = sys.run();
    println!(
        "\nout-of-order audit: aborted={} (first decision: {:?})",
        report.aborted,
        sys.log().snapshot().first().map(|d| d.kind)
    );
    assert_eq!(
        report.aborted, 1,
        "verifying appA before its deps is denied"
    );

    println!("\nsoftware_audit OK");
}
