//! Cooperating mobile objects — the §5.2 `ApplAgentProg` pattern: `k`
//! cloned naplets each sweep an equal share of the coalition's servers,
//! synchronise over channels/signals, and report results home.
//!
//! Also demonstrates that the trace model of the pattern-built program is
//! exactly what the symbolic checker reasons about: the interleaved
//! clones still satisfy the per-server ordering constraints.
//!
//! ```text
//! cargo run --example coalition_teamwork
//! ```

use stacl::naplet::pattern::appl_agent_prog;
use stacl::prelude::*;
use stacl::sral::builder::{access, recv, send, seq, signal, wait};
use stacl::sral::Expr;

const SERVERS: usize = 8;
const CLONES: usize = 4;

fn coalition() -> CoalitionEnv {
    let mut env = CoalitionEnv::new();
    for i in 0..SERVERS {
        env.add_resource(format!("s{i}"), "dataset", ["scan"]);
    }
    env.add_resource("home", "report", ["write"]);
    env
}

fn main() {
    // ── The parallel sweep pattern: 4 clones × 2 servers each. ──
    let servers: Vec<String> = (0..SERVERS).map(|i| format!("s{i}")).collect();
    let sweep = appl_agent_prog("scan", "dataset", servers.iter(), CLONES, None);
    let sweep_prog = sweep.to_program();
    println!(
        "ApplAgentProg: {} clones, {} accesses, program size {}",
        CLONES,
        sweep.len(),
        sweep_prog.size()
    );

    // The worker performs the parallel sweep, then reports home and
    // signals completion.
    let worker = seq([
        sweep_prog,
        access("write", "report", "home"),
        send("results", Expr::Int(SERVERS as i64)),
        signal("sweep-done"),
    ]);

    // A supervisor agent waits for the signal, then collects the count.
    let supervisor = seq([
        wait("sweep-done"),
        recv("results", "n"),
        access("write", "report", "home"),
    ]);

    let mut sys = NapletSystem::new(coalition(), Box::new(PermissiveGuard));
    sys.spawn(NapletSpec::new("worker", "s0", worker));
    sys.spawn(NapletSpec::new("supervisor", "home", supervisor));
    let report = sys.run();

    println!(
        "run: finished={} steps={} end_time={}",
        report.finished, report.steps, report.end_time
    );
    assert_eq!(report.finished, 2);

    // Every server was scanned exactly once.
    let scans = sys.proofs().count_matching(|p| &*p.access.op == "scan");
    assert_eq!(scans, SERVERS);

    // The supervisor's report comes after the worker's signal.
    let events = sys.monitor().events_for("supervisor");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::Blocked { on, .. } if on.contains("sweep-done"))),
        "the supervisor had to wait for the team"
    );

    // ── The same teamwork through the symbolic lens: the pattern's
    //    trace model satisfies "scan s0 before the home report". ──
    use stacl::srac::check::{check_program, Semantics};
    use stacl::srac::Constraint;
    let mut table = AccessTable::new();
    let c = Constraint::ordered(
        Access::new("scan", "dataset", "s0"),
        Access::new("write", "report", "home"),
    );
    let full = seq([
        appl_agent_prog("scan", "dataset", servers.iter(), CLONES, None).to_program(),
        access("write", "report", "home"),
    ]);
    let v = check_program(&full, &c, &mut table, Semantics::ForAll);
    assert!(
        v.holds,
        "every interleaving of the clones scans s0 before reporting"
    );
    println!(
        "symbolic check over {} program-automaton states: ordering holds on every interleaving",
        v.program_states
    );

    println!("\ncoalition_teamwork OK");
}
