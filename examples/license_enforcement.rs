//! The paper's motivating example (§1): *"if a mobile device accesses a
//! resource r (e.g. a licensed software package or its trial version) on
//! site s1 for too many times during a certain time period, it is not
//! allowed to access the resource on site s2 forever."*
//!
//! The coordinated model denies the s2 access because the SRAC
//! cardinality constraint counts execution proofs from *all* coalition
//! sites. The same scenario is replayed against the plain-RBAC and
//! local-history baselines, which both wrongly grant it.
//!
//! ```text
//! cargo run --example license_enforcement
//! ```

use stacl::prelude::*;
use stacl::rbac::policy::parse_policy;
use stacl::srac::Selector;
use stacl::sral::builder::{access, seq};
use stacl::sral::Program;

const CAP: usize = 5;

fn topology() -> CoalitionEnv {
    let mut env = CoalitionEnv::new();
    env.add_resource("s1", "rsw", ["exec"]);
    env.add_resource("s2", "rsw", ["exec"]);
    env
}

/// The device's behaviour: CAP executions on s1, then one attempt on s2.
fn overuse_program() -> Program {
    let mut parts: Vec<Program> = (0..CAP).map(|_| access("exec", "rsw", "s1")).collect();
    parts.push(access("exec", "rsw", "s2"));
    seq(parts)
}

fn coordinated_guard() -> CoordinatedGuard {
    let model = parse_policy(&format!(
        r#"
        user device
        role licensee
        permission p-rsw grants=exec:rsw:* spatial="count(0, {CAP}, resource=rsw)"
        grant licensee p-rsw
        assign device licensee
        "#
    ))
    .expect("policy parses");
    // Reactive enforcement: the denial lands on the access that crosses
    // the cap (the s2 attempt), matching the paper's narrative. The
    // preventive default would refuse the over-committing program at its
    // very first access instead.
    let g = CoordinatedGuard::new(ExtendedRbac::new(model)).with_mode(EnforcementMode::Reactive);
    g.enroll("device", ["licensee"]);
    g
}

fn run(label: &str, guard: Box<dyn SecurityGuard>) -> (usize, usize) {
    let mut sys = NapletSystem::new(topology(), guard);
    sys.spawn(NapletSpec::new("device", "s1", overuse_program()).with_on_deny(OnDeny::Skip));
    sys.run();
    let granted = sys.log().granted_count();
    let denied = sys.log().denied_count();
    println!("{label:<22} granted={granted} denied={denied}");
    for d in sys.log().snapshot() {
        if !d.kind.is_granted() {
            println!("    denied: {} — {:?}", d.access, d.kind);
        }
    }
    (granted, denied)
}

fn main() {
    println!(
        "scenario: {CAP} executions of the restricted software on s1, then one attempt on s2\n"
    );

    // The coordinated model: the 6th access (on s2!) is denied.
    let (granted, denied) = run("coordinated (paper)", Box::new(coordinated_guard()));
    assert_eq!(granted, CAP);
    assert_eq!(denied, 1);

    // Plain RBAC: cannot express the history constraint; grants all 6.
    let model = parse_policy(
        r#"
        user device
        role licensee
        permission p-rsw grants=exec:rsw:*
        grant licensee p-rsw
        assign device licensee
        "#,
    )
    .unwrap();
    let mut plain = PlainRbacGuard::new(model);
    plain.enroll("device", ["licensee"]);
    let (granted, denied) = run("plain RBAC", Box::new(plain));
    assert_eq!(granted, CAP + 1, "plain RBAC misses the violation");
    assert_eq!(denied, 0);

    // Local-history control with the same cap: each site counts only its
    // own history, so the s2 access sails through.
    let local = LocalHistoryGuard::single(Selector::any().with_resources(["rsw"]), CAP);
    let (granted, denied) = run("local history", Box::new(local));
    assert_eq!(granted, CAP + 1, "local history is blind across sites");
    assert_eq!(denied, 0);

    println!(
        "\nonly the coordinated model enforces the cross-site cap \
         (the paper's motivating requirement)"
    );
}
