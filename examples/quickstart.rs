//! Quickstart: one mobile object, three coalition servers, a coordinated
//! policy with both a spatial and a temporal constraint.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stacl::prelude::*;
use stacl::rbac::policy::parse_policy;
use stacl::sral::parser::parse_program;

fn main() {
    // ── 1. The coalition topology: three servers sharing resources. ──
    let mut env = CoalitionEnv::new();
    for s in ["s1", "s2", "s3"] {
        env.add_resource(s, "db", ["read", "write"]);
        env.add_resource(s, "rsw", ["exec"]);
    }

    // ── 2. The policy (the Naplet prototype's policy-file analogue). ──
    // The `worker` role may read/write the db anywhere and execute the
    // restricted software at most 2 times coalition-wide; everything is
    // valid for 100 virtual seconds of activation.
    let model = parse_policy(
        r#"
        user  fieldbot
        role  worker
        permission p-db  grants=*:db:*  validity=100 scheme=whole-lifetime
        permission p-rsw grants=exec:rsw:* spatial="count(0, 2, resource=rsw)"
        grant worker p-db
        grant worker p-rsw
        assign fieldbot worker
        "#,
    )
    .expect("policy parses");
    let guard = CoordinatedGuard::new(ExtendedRbac::new(model));
    guard.enroll("fieldbot", ["worker"]);

    // ── 3. The mobile object's program, in SRAL concrete syntax. ──
    let program = parse_program(
        "read db @ s1 ; \
         exec rsw @ s1 ; \
         write db @ s2 ; \
         exec rsw @ s2 ; \
         read db @ s3",
    )
    .expect("program parses");

    println!("SRAL program:\n  {program}\n");

    // ── 4. Run the agent. Note: the program stays within the rsw cap
    //       (2 execs), so every access is granted. ──
    let mut sys = NapletSystem::new(env, Box::new(guard));
    sys.spawn(NapletSpec::new("fieldbot", "s1", program));
    let report = sys.run();

    println!(
        "run: finished={} aborted={} steps={} virtual end time={}",
        report.finished, report.aborted, report.steps, report.end_time
    );
    println!("\naccess decisions:");
    for d in sys.log().snapshot() {
        println!(
            "  [{}] {:<22} {:?}",
            d.time.seconds(),
            d.access.to_string(),
            d.kind
        );
    }
    println!("\nexecution proofs (Pr_x):");
    for p in sys.proofs().snapshot() {
        println!("  #{} {} at {}", p.seq, p.access, p.time);
    }
    println!(
        "\nroute of fieldbot: {:?}",
        sys.monitor()
            .route_of("fieldbot")
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
    );

    assert_eq!(report.finished, 1, "the compliant program completes");
    assert_eq!(sys.proofs().len(), 5);
    println!("\nquickstart OK");
}
