//! The paper's second motivating example (§1): *"the editing deadline for
//! an issue of a daily newspaper is by 3am."*
//!
//! The `edit` permission carries a validity duration equal to the time
//! remaining until 3am under the whole-lifetime base-time scheme: once
//! the editor's permission activates (9pm here), the duration integral of
//! Eq. 4.1 runs down and edits after the deadline are denied — on *any*
//! coalition server the editor migrates to.
//!
//! The per-server scheme is shown for contrast: migrating to another desk
//! refills the budget, which is exactly why the whole-lifetime scheme is
//! the right one for a deadline.
//!
//! ```text
//! cargo run --example newspaper_deadline
//! ```

use stacl::prelude::*;
use stacl::rbac::policy::parse_policy;
use stacl::sral::builder::{access, seq};

/// Virtual seconds from activation (9pm) to the 3am deadline.
const UNTIL_3AM: f64 = 6.0 * 3600.0;

fn newsroom() -> CoalitionEnv {
    let mut env = CoalitionEnv::new();
    env.add_resource("desk-a", "issue", ["edit"]);
    env.add_resource("desk-b", "issue", ["edit"]);
    env
}

fn guard(scheme: &str) -> CoordinatedGuard {
    let model = parse_policy(&format!(
        r#"
        user editor
        role nightdesk
        permission p-edit grants=edit:issue:* validity={UNTIL_3AM} scheme={scheme}
        grant nightdesk p-edit
        assign editor nightdesk
        "#
    ))
    .expect("policy parses");
    let g = CoordinatedGuard::new(ExtendedRbac::new(model));
    g.enroll("editor", ["nightdesk"]);
    g
}

/// Edit sessions: long stretches on desk-a, then a migration to desk-b
/// *after* the deadline would have passed.
fn night_of_edits() -> stacl::sral::Program {
    seq([
        access("edit", "issue", "desk-a"), // 9pm, granted
        access("edit", "issue", "desk-a"), // still before 3am
        access("edit", "issue", "desk-b"), // after 3am: the scheme decides
    ])
}

fn run(scheme: &str) -> (usize, usize) {
    // Make each granted access consume 3 hours of virtual time so that
    // the third access falls past the 6-hour deadline.
    let config = SystemConfig {
        access_cost: 3.0 * 3600.0,
        migration_cost: 600.0,
        step_cost: 0.0,
        max_steps: 10_000,
    };
    let mut sys = NapletSystem::new(newsroom(), Box::new(guard(scheme))).with_config(config);
    sys.spawn(NapletSpec::new("editor", "desk-a", night_of_edits()).with_on_deny(OnDeny::Skip));
    sys.run();
    println!("scheme={scheme:<16} decisions:");
    for d in sys.log().snapshot() {
        println!(
            "  t={:>7}s {:<22} {}",
            d.time.seconds(),
            d.access.to_string(),
            if d.kind.is_granted() {
                "granted"
            } else {
                "DENIED"
            }
        );
    }
    (sys.log().granted_count(), sys.log().denied_count())
}

fn main() {
    println!("deadline: {UNTIL_3AM} virtual seconds of editing after 9pm activation\n");

    // Whole-lifetime: the deadline follows the editor across desks.
    let (granted, denied) = run("whole-lifetime");
    assert_eq!(granted, 2, "two edits fit before 3am");
    assert_eq!(denied, 1, "the post-deadline edit is denied even on desk-b");

    println!();

    // Per-server: migrating to desk-b refills the budget — no deadline.
    let (granted, denied) = run("current-server");
    assert_eq!(granted, 3, "per-server budgets refill on migration");
    assert_eq!(denied, 0);

    println!(
        "\nthe whole-lifetime base-time scheme (t_b = arrival at the first \
         server) is what expresses a coalition-wide deadline"
    );
}
